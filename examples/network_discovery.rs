//! Network discovery (Figures 6 and 9 of the paper): run the default
//! workload and compare the *unknown* road network with the motion
//! paths SinglePath discovers — the hot paths redraw the map.
//!
//! Run with: `cargo run --release -p hotpath-sim --example network_discovery`

use hotpath_sim::experiment::figure9;
use hotpath_sim::report::{network_map, paths_map};
use hotpath_sim::simulation::SimulationParams;

fn main() {
    let mut params = SimulationParams::quick(800, 2008);
    params.duration = 200;
    println!(
        "running {} objects for {} ts on a hidden road network ...\n",
        params.n, params.duration
    );
    let (paths, res) = figure9(params);

    println!("== the real network (never shown to the algorithms) ==");
    let net_map = network_map(&res.network, 72, 24);
    print!("{}", net_map.render());

    println!("\n== the network as discovered by SinglePath (Fig. 9) ==");
    let discovered = paths_map(res.network.bounds(), &paths, 72, 24);
    print!("{}", discovered.render());

    println!(
        "\n{} hot motion paths redraw {:.0}% of the map the network inks ({:.0}%)",
        paths.len(),
        discovered.coverage() * 100.0,
        net_map.coverage() * 100.0,
    );
    println!(
        "filter economy: {} reports from {} measurements ({:.1}% suppressed)",
        res.summary.uplink_msgs,
        res.summary.measurements,
        100.0 * (1.0 - res.summary.report_ratio)
    );
}
