//! Emergency evacuation monitoring (the paper's second motivating
//! scenario, Section 1).
//!
//! A fire breaks out; residents flee along similar routes. Authorities
//! watch the hot motion paths emerge in real time and direct assistance
//! (ambulances, fire engines) along the popular escape corridors.
//!
//! Run with: `cargo run --release -p hotpath-sim --example evacuation`

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::network::{generate, NetworkParams};
use hotpath_netsim::scenarios::evacuation;
use hotpath_sim::report::paths_map;

fn main() {
    let net = generate(NetworkParams::tiny(13));
    let danger = net.bounds().centroid();
    println!("!! fire reported near {danger:?} — tracking evacuation\n");

    let n = 500;
    let mut crowd = evacuation(&net, n, danger, 13);
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(40)
        .with_epoch(5)
        .with_k(8);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, crowd.seed_timepoint(&net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    let mut last_report = Vec::new();
    for t in 1..=200u64 {
        let now = Timestamp(t);
        crowd.tick(&net, now, &mut batch);
        for m in &batch {
            if let Some(state) = clients[m.object.0 as usize].observe(m.observed) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
            // Situation report every 50 ts.
            if t % 50 == 0 {
                println!(
                    "t={t:3}  {} active hot paths, hottest escape flow:",
                    coordinator.index_size()
                );
                for hp in coordinator.top_n(3) {
                    let fleeing = hp.path.end().dist_l2(&danger) > hp.path.start().dist_l2(&danger);
                    println!(
                        "        hotness {:3}  {:6.0} m  {}",
                        hp.hotness,
                        hp.path.length(),
                        if fleeing { "AWAY from fire" } else { "toward fire (!)" },
                    );
                }
                last_report =
                    coordinator.hot_paths().iter().map(|h| (h.path.seg, h.hotness)).collect();
            }
        }
    }

    println!("\n== escape-route map (denser glyph = hotter flow) ==");
    let map = paths_map(net.bounds(), &last_report, 72, 24);
    print!("{}", map.render());
    println!(
        ">> direct ambulances along the top corridors; {} routes live in the last {} ts",
        last_report.len(),
        config.window.len
    );
}
