//! Rush-hour dynamics: the sliding window at work.
//!
//! Morning: commuters stream toward the city center. Evening: the flow
//! reverses. Because hotness only counts crossings inside the last `W`
//! time units, the top-k paths *flip direction* as the day turns — old
//! inbound paths expire from the window and outbound ones take over.
//!
//! Run with: `cargo run --release -p hotpath-sim --example commuter_rush`

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::Point;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::{ChoicePolicy, Population, PopulationParams};
use hotpath_netsim::network::{generate, NetworkParams};

/// Fraction of top-k paths pointing toward `target`.
fn inbound_share(coordinator: &Coordinator, target: Point) -> f64 {
    let top = coordinator.top_k();
    if top.is_empty() {
        return 0.0;
    }
    let inbound = top
        .iter()
        .filter(|hp| hp.path.end().dist_l2(&target) < hp.path.start().dist_l2(&target))
        .count();
    inbound as f64 / top.len() as f64
}

fn main() {
    let net = generate(NetworkParams::tiny(23));
    let center = net.bounds().centroid();
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(60)
        .with_epoch(10)
        .with_k(10);

    let n = 400;
    let make_pop = |policy, seed| {
        Population::new(
            &net,
            PopulationParams { policy, agility: 0.5, ..PopulationParams::paper_defaults(n, seed) },
        )
    };

    // Morning shift: everyone heads downtown.
    let mut pop = make_pop(ChoicePolicy::Toward(center), 23);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, pop.seed_timepoint(&net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    let half_day = 150u64;
    println!("== morning rush: crowd converging on downtown ==");
    for t in 1..=2 * half_day {
        let now = Timestamp(t);
        if t == half_day + 1 {
            // The day turns: same people, same positions, reversed
            // intent — only the link-choice policy flips, and the
            // clients' filters keep their chains going.
            println!("\n== evening rush: flow reverses ==");
            pop.set_policy(ChoicePolicy::Away(center));
        }
        pop.tick(&net, now, &mut batch);
        for m in &batch {
            if let Some(state) = clients[m.object.0 as usize].observe(m.observed) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
            if t % 50 == 0 {
                println!(
                    "t={t:3}: {:4} hot paths, {:3.0}% of top-10 inbound, top score {:7.1}",
                    coordinator.index_size(),
                    100.0 * inbound_share(&coordinator, center),
                    coordinator.top_k_score(),
                );
            }
        }
    }
    println!(
        "\nthe window (W = {} ts) forgot the morning: direction share above tracked the flow",
        config.window.len
    );
}
