//! Tracking with uncertain measurements (Section 4.1 of the paper).
//!
//! A GPS-grade device (sigma ~ 1 m) and a cell-triangulation device
//! (sigma ~ 4 m) follow the same road. The (eps, delta) filter solves a
//! tolerance interval per measurement: noisier devices get smaller safe
//! areas and report more often, and hopeless measurements are rejected.
//!
//! Run with: `cargo run --release -p hotpath-sim --example uncertain_tracking`

use hotpath_core::geometry::Point;
use hotpath_core::geometry::TimePoint;
use hotpath_core::raytrace::UncertainRayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::uncertainty::{half_width_exact, FallbackPolicy, ToleranceTable2D};
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::GaussianNoise;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (eps, delta) = (10.0, 0.05);
    println!(
        "tolerance: eps = {eps} m with confidence 1 - delta = {:.0}%\n",
        (1.0 - delta) * 100.0
    );

    println!("== tolerance interval half-width vs device noise ==");
    println!("{:>10}  {:>12}", "sigma (m)", "half-width");
    for sigma in [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0] {
        match half_width_exact(eps, delta, sigma) {
            Some(w) => println!("{sigma:>10.1}  {w:>12.2}"),
            None => println!("{sigma:>10.1}  {:>12}", "unsolvable"),
        }
    }
    println!("(noisier sensors leave less room before a report is forced)\n");

    // Two devices walk the same straight road with a mild wiggle.
    let table = ToleranceTable2D::build(eps, delta, 8.0, 256, FallbackPolicy::Reject);
    let mut rng = SmallRng::seed_from_u64(99);
    let devices = [("GPS PDA", 1.0), ("cell phone", 4.0)];
    for (name, sigma) in devices {
        let noise = GaussianNoise::new(sigma);
        let mut filter = UncertainRayTraceFilter::new(
            ObjectId(0),
            TimePoint::new(Point::new(0.0, 0.0), Timestamp(0)),
            table.clone(),
        );
        let mut reports = 0u32;
        for t in 1..=400u64 {
            let truth = Point::new(8.0 * t as f64, ((t as f64) * 0.15).sin() * 3.0);
            let g = noise.measure(truth, &mut rng);
            if let Some(state) = filter.observe_gaussian(g, Timestamp(t)) {
                reports += 1;
                // Resume immediately from the FSA centroid (stand-in for
                // the coordinator round-trip).
                let _ = filter.receive_endpoint(TimePoint::new(state.fsa.centroid(), state.te));
            }
        }
        let s = filter.stats();
        println!(
            "{name:>10}: sigma {sigma:.1} m -> {reports:3} reports / {} measurements ({} dropped as too noisy)",
            s.observed, s.dropped
        );
    }
    println!("\nthe filter adapts: the same road costs the noisy device more uplink");
}
