//! Targeted advertising around a sporting event (the paper's first
//! motivating scenario, Section 1).
//!
//! A crowd converges on a venue; the mobile carrier's coordinator
//! maintains the hot inbound routes and picks the best "advertising
//! corridor" — the hottest path flowing toward the venue — where a
//! partnered store's promotions would reach the most passers-by.
//!
//! Run with: `cargo run --release -p hotpath-sim --example targeted_advertising`

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::network::{generate, NetworkParams};
use hotpath_netsim::scenarios::{nearest_node, sporting_event};

fn main() {
    let net = generate(NetworkParams::tiny(7));
    let venue = nearest_node(&net, net.bounds().centroid());
    let venue_pos = net.node(venue).pos;
    println!("venue at {venue_pos:?} — kickoff soon, crowd en route\n");

    let n = 400;
    let mut crowd = sporting_event(&net, n, venue, 7);
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(60)
        .with_epoch(10)
        .with_k(5);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, crowd.seed_timepoint(&net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    for t in 1..=300u64 {
        let now = Timestamp(t);
        crowd.tick(&net, now, &mut batch);
        for m in &batch {
            if let Some(state) = clients[m.object.0 as usize].observe(m.observed) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
        }
    }

    println!("== hottest approach corridors (last {} ts) ==", config.window.len);
    let top = coordinator.top_k();
    for (i, hp) in top.iter().enumerate() {
        let to_venue_before = hp.path.start().dist_l2(&venue_pos);
        let to_venue_after = hp.path.end().dist_l2(&venue_pos);
        let inbound = if to_venue_after < to_venue_before { "inbound" } else { "outbound" };
        println!(
            "{}. hotness {:3}  length {:6.1} m  {}  ({:.0} m from venue)",
            i + 1,
            hp.hotness,
            hp.path.length(),
            inbound,
            to_venue_after,
        );
    }

    // The ad spot: the hottest inbound corridor ending closest to the
    // venue — subscribers crossing it are minutes from the gates.
    let ad_spot = top
        .iter()
        .filter(|hp| hp.path.end().dist_l2(&venue_pos) < hp.path.start().dist_l2(&venue_pos))
        .min_by(|a, b| {
            a.path.end().dist_l2(&venue_pos).total_cmp(&b.path.end().dist_l2(&venue_pos))
        });
    match ad_spot {
        Some(hp) => println!(
            "\n>> place the promotion along {} (hotness {}, ends {:.0} m from the venue)",
            hp.path.id,
            hp.hotness,
            hp.path.end().dist_l2(&venue_pos)
        ),
        None => println!("\n>> no inbound corridor in the top-k yet; widen the window"),
    }
}
