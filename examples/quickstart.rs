//! Quickstart: discover hot motion paths over a small synthetic city.
//!
//! Run with: `cargo run --release -p hotpath-sim --example quickstart`

use hotpath_sim::simulation::{run, SimulationParams};

fn main() {
    // 500 objects on a small road network, paper-default tolerances:
    // eps = 10 m, window W = 50 ts, epoch = 10 ts, k = 10.
    let params = SimulationParams::quick(500, 42);
    println!(
        "simulating {} objects for {} timestamps (eps = {} m, W = {} ts) ...",
        params.n, params.duration, params.eps, params.window
    );

    let res = run(params);

    println!();
    println!("== communication =====================================");
    println!("measurements taken : {}", res.summary.measurements);
    println!("states uploaded    : {}", res.summary.uplink_msgs);
    println!(
        "filter suppression : {:.1}% of measurements never left the device",
        100.0 * (1.0 - res.summary.report_ratio)
    );

    println!();
    println!("== coordinator =======================================");
    println!("motion paths stored: {}", res.coordinator.index_size());
    println!("mean epoch time    : {:.3} ms", res.summary.mean_time_ms);
    let p = res.coordinator.processing_stats();
    println!(
        "case mix           : {} reused paths, {} reused vertices, {} new vertices",
        p.case1, p.case2, p.case3
    );

    println!();
    println!("== top-10 hottest motion paths =======================");
    for (rank, hp) in res.coordinator.top_k().iter().enumerate() {
        println!(
            "{:2}. {}  hotness {:3}  length {:6.1} m  score {:8.1}  {:?} -> {:?}",
            rank + 1,
            hp.path.id,
            hp.hotness,
            hp.path.length(),
            hp.score,
            hp.path.start(),
            hp.path.end(),
        );
    }
}
