//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace's benches use — benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `iter` / `iter_batched`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with the same names
//! and signatures as criterion 0.5, so the real crate can be swapped back
//! in without touching bench sources.
//!
//! Measurement is deliberately simple: each sample times a fixed batch of
//! iterations with [`std::time::Instant`] and the harness reports the
//! median, minimum, and maximum per-iteration time. There is no outlier
//! analysis or HTML report.
//!
//! One extension beyond upstream: when the `CRITERION_CAPTURE`
//! environment variable names a file, every benchmark appends a JSON
//! line `{"id":"<group/function/param>","median_ns":<float>}` to it.
//! The workspace's `bench_gate` binary drives `cargo bench` with this
//! set to capture checked-in `BENCH_*.json` baselines and to gate CI on
//! perf regressions.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver, one per `criterion_group!` target list.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20, filter: None, list_only: false }
    }
}

impl Criterion {
    /// Applies command-line arguments (`cargo bench -- <filter>`,
    /// `--list`); unrecognized flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => self.list_only = true,
                "--bench" | "--test" | "--profile-time" => {
                    // Consume flags cargo forwards; `--profile-time` and
                    // `--bench` take no value in the forms cargo emits, but
                    // skip a value for `--profile-time` if one follows.
                    if arg == "--profile-time" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.default_sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    /// Prints the closing summary (no-op in the vendored harness).
    pub fn final_summary(&mut self) {}

    fn should_run(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: function.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function, parameter: None }
    }
}

/// Units of work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost across iterations.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Many iterations per setup (cheap inputs).
    SmallInput,
    /// Few iterations per setup (expensive inputs).
    LargeInput,
    /// One iteration per setup.
    PerIteration,
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().render());
        self.run_one(&full_id, |b| f(b));
        self
    }

    /// Benchmarks a closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into().render());
        self.run_one(&full_id, |b| f(b, input));
        self
    }

    fn run_one(&mut self, full_id: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.criterion.should_run(full_id) {
            return;
        }
        if self.criterion.list_only {
            println!("{full_id}: benchmark");
            return;
        }
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let mut bencher = Bencher { samples, per_iter: Vec::with_capacity(samples) };
        f(&mut bencher);
        bencher.report(full_id, self.throughput);
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to get a
    /// readable wall-clock measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for ~2ms of work per sample, at least 1 iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.per_iter.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.per_iter.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.per_iter.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.per_iter.clear();
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.per_iter.push(start.elapsed());
        }
    }

    fn report(&mut self, full_id: &str, throughput: Option<Throughput>) {
        if self.per_iter.is_empty() {
            println!("{full_id}: no measurements");
            return;
        }
        self.per_iter.sort_unstable();
        let median = self.per_iter[self.per_iter.len() / 2];
        let lo = self.per_iter[0];
        let hi = self.per_iter[self.per_iter.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / median.as_nanos() as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / median.as_nanos() as f64 * 1e9 / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "{full_id}: time [{lo:?} {median:?} {hi:?}] (median of {} samples){rate}",
            self.per_iter.len()
        );
        capture(full_id, median);
    }
}

/// Appends the measurement to the `CRITERION_CAPTURE` file when set.
fn capture(full_id: &str, median: Duration) {
    let Ok(path) = std::env::var("CRITERION_CAPTURE") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    // Ids are interpolated into JSON verbatim; strip the two characters
    // that would corrupt it (no escape support in the gate's parser).
    let id: String = full_id.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect();
    let line = format!("{{\"id\":\"{id}\",\"median_ns\":{}}}\n", median.as_nanos());
    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(line.as_bytes()) {
                eprintln!("criterion: capture write to {path} failed: {e}");
            }
        }
        Err(e) => eprintln!("criterion: cannot open capture file {path}: {e}"),
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("vendored");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput);
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).render(), "10");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
