//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate implements the exact API subset the workspace uses —
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom::shuffle`] — with the same
//! module layout and trait names as rand 0.8, so swapping the real crate
//! back in is a one-line manifest change.
//!
//! Generation is backed by xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, matching the construction rand's own `SmallRng` uses on
//! 64-bit targets. Streams are deterministic per seed but are *not*
//! guaranteed to be bit-identical to upstream rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that samples values from ranges and distributions.
///
/// Mirrors `rand::Rng`: blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A random generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts 64 random bits into a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give the full mantissa precision of an f64.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix64(&mut state);
            }
            // xoshiro requires a non-zero state; SplitMix64 output of four
            // consecutive words is never all-zero, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range types a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating-point rounding can land exactly on `end`; clamp back
        // inside the half-open interval.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start.max(self.end - (self.end - self.start) * f32::EPSILON)
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Lemire-style: reject the short tail of the final partial block.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        // Spans over u64::MAX only arise from full-width i128 casts of
        // 64-bit ranges, which `impl_int_sample_range` never produces
        // beyond u64::MAX + 1 (full u64 inclusive range).
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&v), "{v} out of range");
            let w = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&w), "{w} out of range");
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..6 sampled: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..4);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }
}
