//! Deterministic test-case runner.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Fixed default RNG seed: all property runs are reproducible unless a
/// config overrides [`ProptestConfig::rng_seed`].
pub const DEFAULT_RNG_SEED: u64 = 0xEDB7_2008_5EED;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected cases (`prop_assume!` failures) tolerated
    /// before the run aborts.
    pub max_global_rejects: u32,
    /// Seed for the case-generation RNG. Fixed by default so that tier-1
    /// runs are deterministic.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536, rng_seed: DEFAULT_RNG_SEED }
    }
}

impl ProptestConfig {
    /// Returns the default config with `cases` successful cases required.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Outcome of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Executes test cases against a strategy until the configured number of
/// cases passes, a case fails, or too many cases are rejected.
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

impl TestRunner {
    /// Builds a runner seeded from the config.
    pub fn new(config: ProptestConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.rng_seed);
        TestRunner { config, rng }
    }

    /// Runs the test closure over generated inputs.
    ///
    /// Returns `Err(message)` describing the first failing case, including
    /// the generated input, the case index, and the seed to reproduce.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        test: impl Fn(S::Value) -> TestCaseResult,
    ) -> Result<(), String> {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many rejected cases ({rejected}) after {passed} passes; \
                             weaken prop_assume! or widen the strategies"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "test case #{index} failed: {message}\n\
                         input: {shown}\n\
                         (rng_seed = {seed:#x}, no shrinking in vendored proptest)",
                        index = passed + rejected,
                        seed = self.config.rng_seed,
                    ));
                }
            }
        }
        Ok(())
    }
}
