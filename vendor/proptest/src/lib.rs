//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace's property suites use: the
//! [`proptest!`] macro, range and tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`], `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! and [`test_runner::ProptestConfig`]. Module paths and names mirror
//! proptest 1.x so the real crate can be swapped back in without source
//! changes.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic.** Every run draws from a fixed-seed RNG
//!   ([`ProptestConfig::rng_seed`], default [`DEFAULT_RNG_SEED`]); there is
//!   no environment-dependent entropy, so CI failures always reproduce.
//! * **No shrinking.** A failing case reports the generated input and the
//!   case number instead of a minimized counterexample.
//!
//! [`ProptestConfig::rng_seed`]: test_runner::ProptestConfig::rng_seed
//! [`DEFAULT_RNG_SEED`]: test_runner::DEFAULT_RNG_SEED

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// Convenient glob-import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assume;
    pub use crate::proptest;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
}

/// Defines property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(<expr>)]` inner attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies with
/// `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let outcome = runner.run(
                &($($strat,)+),
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
            if let Err(message) = outcome {
                panic!("{}", message);
            }
        }
    )*};
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`: {}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current test case (it counts as neither pass nor fail)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}
