//! Strategies for collections.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
