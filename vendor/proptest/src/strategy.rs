//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps draws from the runner's RNG to
//! values. Unlike upstream proptest there is no value tree / shrinking:
//! `generate` produces the final value directly.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// Source of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Returns a strategy producing `fun(v)` for every `v` this strategy
    /// produces.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, fun }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.fun)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategies also generate through shared references, so the runner can
/// borrow a caller-owned strategy tuple.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}
