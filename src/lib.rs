//! # hotpath
//!
//! Thin facade over the hot-motion-path workspace ("On-Line Discovery of
//! Hot Motion Paths", Sacharidis et al., EDBT 2008). It re-exports the
//! member crates so the root-level integration tests and examples have a
//! single owning package, and so downstream users can depend on one crate.

#![warn(missing_docs)]

pub use hotpath_baseline as baseline;
pub use hotpath_core as core;
pub use hotpath_netsim as netsim;
pub use hotpath_sim as sim;

/// Re-export of the core prelude for one-line imports.
pub mod prelude {
    pub use hotpath_core::prelude::*;
}
