//! # hotpath
//!
//! Thin facade over the hot-motion-path workspace ("On-Line Discovery of
//! Hot Motion Paths", Sacharidis et al., EDBT 2008). It re-exports the
//! member crates so the root-level integration tests and examples have a
//! single owning package, and so downstream users can depend on one crate.
//!
//! Most programs only need [`prelude`]: it curates the supported public
//! surface — configuration, the engine backends, lock-free snapshot
//! reads, the serving front door, the scenario registry, and the
//! simulation drivers — so `use hotpath::prelude::*;` is enough to
//! build, drive, and read a coordinator end to end:
//!
//! ```
//! use hotpath::prelude::*;
//!
//! let config = Config::builder().epoch(10).window(100).build().expect("valid");
//! let mut engine = EngineKind::Sync.build(Coordinator::new(config));
//! let cell = SnapshotCell::new();
//! engine.attach_cell(cell.clone());
//! let mut reader = cell.register();
//! engine.process_epoch(Timestamp(10));
//! assert_eq!(reader.read().epoch, 1);
//! # engine.finish();
//! ```

#![warn(missing_docs)]

pub use hotpath_baseline as baseline;
pub use hotpath_core as core;
pub use hotpath_netsim as netsim;
pub use hotpath_serve as serve;
pub use hotpath_sim as sim;

/// The curated public surface: everything a downstream program needs to
/// configure an engine, drive epochs, read snapshots lock-free, serve
/// them out of process, and run the scenario/simulation harnesses —
/// without reaching into individual member crates.
pub mod prelude {
    // Configuration and typed parsing.
    pub use hotpath_core::config::{
        Admission, AdmissionPolicy, Config, ConfigBuilder, ConfigError, ParseError, Tolerance,
    };
    // The engine surface: backends, trait, and the published view.
    pub use hotpath_core::coordinator::{Coordinator, EndpointResponse, HotPath, HotSnapshot};
    pub use hotpath_core::engine::{Engine, EngineKind, PipelinedEngine, SyncEngine};
    // Lock-free snapshot reads.
    pub use hotpath_core::snapshot::{SnapshotCell, SnapshotGuard, SnapshotHandle};
    // Checkpoint/restore.
    pub use hotpath_core::checkpoint::{Checkpoint, CheckpointError};
    // The client-side state vocabulary.
    pub use hotpath_core::geometry::{Point, Rect, Segment};
    pub use hotpath_core::motion_path::{MotionPath, PathId};
    pub use hotpath_core::raytrace::{ClientState, RayTraceFilter};
    pub use hotpath_core::time::{EpochClock, SlidingWindow, Timestamp};
    pub use hotpath_core::uncertainty::FallbackPolicy;
    pub use hotpath_core::ObjectId;
    // The serving front door and its load generator.
    pub use hotpath_serve::server::{Hotpathd, ServerHandle, ServerMsg, ServerStatsView};
    pub use hotpath_serve::swarm::{run_swarm, verify_swarm, SwarmParams, SwarmReport};
    pub use hotpath_serve::wire::{serve_unix, SnapshotWire, UnixClient, UnixServer};
    // The scenario registry and run drivers.
    pub use hotpath_netsim::scenario::{ScenarioParams, REGISTRY};
    pub use hotpath_sim::engine_loop::CheckpointPolicy;
    pub use hotpath_sim::options::RunOptions;
    pub use hotpath_sim::scenario_run::{run_named, ScenarioRunParams};
    pub use hotpath_sim::simulation::{run, SimulationParams};
}
