//! The covering-set guarantee, end to end: the chain of motion paths the
//! coordinator assigns to one object is connected in space and time and
//! every element fits the object's *measured* trajectory within eps.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, Segment, TimePoint, Trajectory};
use hotpath_core::motion_path::{fits_trajectory, CoveringChain};
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::{TimeInterval, Timestamp};
use hotpath_core::ObjectId;

/// Drives one object through the full stack and returns (measured
/// trajectory, chain of (segment, interval) selected by SinglePath).
fn drive(
    eps: f64,
    epoch: u64,
    positions: impl Iterator<Item = Point>,
) -> (Trajectory, Vec<(Segment, TimeInterval)>) {
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(eps))
        .with_window(10_000)
        .with_epoch(epoch);
    let mut coordinator = Coordinator::new(config);
    let seed = TimePoint::new(Point::new(0.0, 0.0), Timestamp(0));
    let mut client = RayTraceFilter::new(ObjectId(0), seed, eps);

    let mut traj = Trajectory::new();
    traj.push(seed);
    let mut pending: Option<(Point, Timestamp)> = None; // (start, ts) of open state
    let mut chain = Vec::new();

    for (i, p) in positions.enumerate() {
        let t = Timestamp(i as u64 + 1);
        traj.push(TimePoint::new(p, t));
        if let Some(state) = client.observe(TimePoint::new(p, t)) {
            pending = Some((state.start, state.ts));
            coordinator.submit(state);
        }
        if config.epochs.is_epoch(t) {
            for resp in coordinator.process_epoch(t) {
                let (start, ts) = pending.take().expect("response without a report");
                chain.push((
                    Segment::new(start, resp.endpoint.p),
                    TimeInterval::new(ts, resp.endpoint.t),
                ));
                if let Some(next) = client.receive_endpoint(resp.endpoint) {
                    pending = Some((next.start, next.ts));
                    coordinator.submit(next);
                }
            }
        }
    }
    (traj, chain)
}

/// A path with two sharp turns, forcing at least two reports.
fn zigzag() -> impl Iterator<Item = Point> {
    let east = (1..=30u64).map(|i| Point::new(10.0 * i as f64, 0.0));
    let north = (1..=30u64).map(|i| Point::new(300.0, 10.0 * i as f64));
    let west = (1..=30u64).map(|i| Point::new(300.0 - 10.0 * i as f64, 300.0));
    east.chain(north).chain(west)
}

#[test]
fn chain_is_connected_in_space_and_time() {
    let (_traj, chain) = drive(5.0, 10, zigzag());
    assert!(chain.len() >= 2, "zigzag produced only {} chain elements", chain.len());
    let mut covering = CoveringChain::new();
    for (seg, iv) in &chain {
        covering.push(*seg, *iv).expect("chain must connect");
    }
}

#[test]
fn every_chain_element_fits_the_measured_trajectory() {
    let eps = 5.0;
    let (traj, chain) = drive(eps, 10, zigzag());
    assert!(!chain.is_empty());
    for (i, (seg, iv)) in chain.iter().enumerate() {
        assert!(
            fits_trajectory(seg, *iv, &traj, eps),
            "chain element {i} ({seg:?} over {iv:?}) violates eps={eps}"
        );
    }
}

#[test]
fn tighter_tolerance_means_more_chain_elements() {
    // A meandering path: tolerance eps = 2 splits inside the curves
    // that eps = 20 absorbs whole.
    let wavy = || {
        (1..=120u64).map(|i| {
            let x = 10.0 * i as f64;
            let y = 15.0 * (i as f64 * 0.35).sin();
            Point::new(x, y)
        })
    };
    let (_t1, loose) = drive(20.0, 10, wavy());
    let (_t2, tight) = drive(2.0, 10, wavy());
    assert!(tight.len() > loose.len(), "tight {} !> loose {}", tight.len(), loose.len());
}

#[test]
fn single_straight_run_produces_at_most_one_element() {
    let straight = (1..=50u64).map(|i| Point::new(10.0 * i as f64, 0.0));
    let (_traj, chain) = drive(5.0, 10, straight);
    // Straight motion never violates, so nothing is ever reported.
    assert!(chain.is_empty(), "straight motion reported: {chain:?}");
}
