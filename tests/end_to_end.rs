//! End-to-end integration: the full RayTrace -> coordinator ->
//! SinglePath -> top-k pipeline over the synthetic road workload.

use hotpath_sim::simulation::{run, SimulationParams};

#[test]
fn full_pipeline_discovers_and_maintains_paths() {
    let res = run(SimulationParams::quick(300, 101));
    assert!(res.coordinator.index_size() > 0, "no paths discovered");
    assert!(res.summary.mean_score > 0.0);
    // Index internal consistency after a full run.
    res.coordinator.check_consistency().unwrap();
    // Every hot path is indexed and every hotness is positive.
    for hp in res.coordinator.hot_paths().iter() {
        assert!(hp.hotness >= 1);
        assert!(res.coordinator.path(hp.path.id).is_some());
    }
}

#[test]
fn communication_accounting_is_consistent() {
    let res = run(SimulationParams::quick(200, 102));
    let comm = res.coordinator.comm_stats();
    // Every uplink message came from a client report.
    assert_eq!(comm.uplink_msgs, res.filter_stats.reports);
    // Bytes are message-count multiples of the fixed payloads.
    assert_eq!(comm.uplink_bytes, comm.uplink_msgs * 72);
    // The coordinator answered every state it processed.
    let p = res.coordinator.processing_stats();
    assert_eq!(p.states_processed, comm.downlink_msgs);
    // Filtering actually compresses the stream.
    assert!(
        res.filter_stats.absorbed > res.filter_stats.reports,
        "filter absorbed {} vs reported {}",
        res.filter_stats.absorbed,
        res.filter_stats.reports
    );
}

#[test]
fn case_mix_covers_all_three_cases_at_scale() {
    let res = run(SimulationParams::quick(400, 103));
    let p = res.coordinator.processing_stats();
    assert!(p.case3 > 0, "no new vertices ever minted");
    assert!(p.case1 + p.case2 > 0, "no reuse at all: case1={} case2={}", p.case1, p.case2);
}

#[test]
fn top_k_is_sorted_and_bounded() {
    let res = run(SimulationParams::quick(250, 104));
    let top = res.coordinator.top_k();
    assert!(top.len() <= 10);
    for pair in top.windows(2) {
        assert!(
            pair[0].hotness > pair[1].hotness
                || (pair[0].hotness == pair[1].hotness
                    && pair[0].path.length() >= pair[1].path.length()),
            "top-k ordering broken"
        );
    }
    // Score equals the average of member scores.
    if !top.is_empty() {
        let avg = top.iter().map(|h| h.score).sum::<f64>() / top.len() as f64;
        assert!((res.coordinator.top_k_score() - avg).abs() < 1e-9);
    }
}

#[test]
fn seeds_change_outcomes_but_structure_holds() {
    let a = run(SimulationParams::quick(150, 105));
    let b = run(SimulationParams::quick(150, 106));
    // Different seeds explore different roads...
    assert_ne!(a.summary.uplink_msgs, b.summary.uplink_msgs);
    // ...but the qualitative shape holds for both.
    for r in [&a, &b] {
        assert!(r.coordinator.index_size() > 0);
        assert!(r.summary.report_ratio < 0.8, "filter barely compressing");
    }
}
