//! Engine-backend parity: [`PipelinedEngine`] must be observationally
//! identical to [`SyncEngine`] — bit for bit — whatever the workload.
//! A proptest drives both backends through the same randomized
//! multi-epoch workload across seeds, shard counts {1, 4}, and
//! mid-epoch submit interleavings (single `submit` vs `submit_batch`,
//! uneven tick loads, interleaved `advance_time`), comparing every
//! response, every published snapshot, and the final coordinator.

use hotpath_core::config::Config;
use hotpath_core::coordinator::Coordinator;
use hotpath_core::engine::EngineKind;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use proptest::prelude::*;

/// One epoch's observable outcome: the responses (order included) and
/// the published snapshot's content.
#[derive(PartialEq, Debug)]
struct EpochTrace {
    responses: Vec<(u64, u64, u64, u64)>,
    snapshot_epoch: u64,
    snapshot_ts: u64,
    top: Vec<(u64, u32, u64)>,
    hot_count: usize,
    index_size: usize,
    comm: (u64, u64, u64, u64),
}

/// Everything a run exposes: per-epoch traces plus the final
/// coordinator's top paths, comm counters, and case tallies.
#[derive(PartialEq, Debug)]
struct RunTrace {
    epochs: Vec<EpochTrace>,
    final_top: Vec<(u64, u32, u64)>,
    final_comm: (u64, u64, u64, u64),
    cases: (u64, u64, u64),
    pending: usize,
}

/// Drives one backend through the workload `(seed, batched)` — `batched`
/// decides per tick whether states go in one `submit_batch` call or a
/// `submit` loop (the interleaving axis) — and returns the full trace.
fn drive(kind: EngineKind, shards: usize, seed: u64, batched: &[bool]) -> RunTrace {
    let config = Config::paper_defaults().with_epoch(10).with_window(60).with_shards(shards);
    let mut engine = kind.build(Coordinator::new(config));
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rand = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s >> 33
    };
    let mut epochs = Vec::new();
    let mut tick_no = 0usize;
    for epoch in 1..=6u64 {
        for tick in 1..=10u64 {
            let now = Timestamp((epoch - 1) * 10 + tick);
            let n = (rand() % 7) as usize; // 0..=6 states; some ticks silent
            let mk = |i: usize, a: u64, b: u64| {
                let corridor = a % 8;
                let x = (corridor * 450) as f64;
                let y = ((b % 4) * 350) as f64;
                let end = Point::new(x + 40.0 + (a % 3) as f64 * 4.0, y + (b % 25) as f64);
                ClientState {
                    object: ObjectId(i as u64),
                    start: Point::new(x, y),
                    ts: Timestamp(now.raw().saturating_sub(5)),
                    fsa: Rect::new(end - Point::new(2.5, 2.5), end + Point::new(2.5, 2.5)),
                    te: Timestamp(now.raw()),
                }
            };
            let use_batch = batched.get(tick_no % batched.len().max(1)).copied().unwrap_or(false);
            tick_no += 1;
            if use_batch {
                let states: Vec<ClientState> =
                    (0..n).map(|i| (i, rand(), rand())).map(|(i, a, b)| mk(i, a, b)).collect();
                engine.submit_batch(&mut states.into_iter());
            } else {
                for i in 0..n {
                    let (a, b) = (rand(), rand());
                    engine.submit(mk(i, a, b));
                }
            }
            engine.advance_time(now);
            if tick == 10 {
                let responses: Vec<(u64, u64, u64, u64)> = engine
                    .process_epoch(now)
                    .iter()
                    .map(|r| {
                        (
                            r.object.0,
                            r.endpoint.p.x.to_bits(),
                            r.endpoint.p.y.to_bits(),
                            r.endpoint.t.raw(),
                        )
                    })
                    .collect();
                let snap = engine.snapshot();
                epochs.push(EpochTrace {
                    responses,
                    snapshot_epoch: snap.epoch,
                    snapshot_ts: snap.timestamp.raw(),
                    top: snap
                        .top_k
                        .iter()
                        .map(|h| (h.path.id.0, h.hotness, h.score.to_bits()))
                        .collect(),
                    hot_count: snap.hot_count,
                    index_size: snap.index_size,
                    comm: (
                        snap.comm.uplink_msgs,
                        snap.comm.uplink_bytes,
                        snap.comm.downlink_msgs,
                        snap.comm.downlink_bytes,
                    ),
                });
            }
        }
    }
    // A mid-epoch tail: some states stay pending at teardown and must
    // reach the final coordinator identically.
    for i in 0..(rand() % 4) {
        let (a, b) = (rand(), rand());
        let end = Point::new((a % 8 * 450) as f64 + 40.0, (b % 4 * 350) as f64);
        engine.submit(ClientState {
            object: ObjectId(i),
            start: Point::new((a % 8 * 450) as f64, (b % 4 * 350) as f64),
            ts: Timestamp(60),
            fsa: Rect::new(end - Point::new(2.5, 2.5), end + Point::new(2.5, 2.5)),
            te: Timestamp(61),
        });
    }
    let coordinator = engine.finish();
    coordinator.check_consistency().expect("inconsistent coordinator after run");
    let comm = coordinator.comm_stats();
    let p = coordinator.processing_stats();
    RunTrace {
        epochs,
        final_top: coordinator
            .top_n(20)
            .iter()
            .map(|h| (h.path.id.0, h.hotness, h.score.to_bits()))
            .collect(),
        final_comm: (comm.uplink_msgs, comm.uplink_bytes, comm.downlink_msgs, comm.downlink_bytes),
        cases: (p.case1, p.case2, p.case3),
        pending: coordinator.pending_len(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance pin: across random seeds, shard counts {1, 4},
    /// and random submit interleavings, the pipelined engine's
    /// responses, per-epoch snapshots (top-k, comm), and final
    /// coordinator match the sync engine's exactly.
    #[test]
    fn pipelined_engine_matches_sync_bit_for_bit(
        seed in 0u64..100_000,
        sharded in 0u8..2,
        batched_bits in prop::collection::vec(0u8..2, 1..12),
    ) {
        let shards = if sharded == 1 { 4 } else { 1 };
        let batched: Vec<bool> = batched_bits.iter().map(|&b| b == 1).collect();
        let sync = drive(EngineKind::Sync, shards, seed, &batched);
        let pipelined = drive(EngineKind::Pipelined, shards, seed, &batched);
        prop_assert_eq!(sync, pipelined, "engines diverged (seed {}, shards {})", seed, shards);
    }
}

/// A deterministic smoke of the same harness (fast signal when the
/// proptest shrinks are noisy).
#[test]
fn engine_parity_smoke() {
    for shards in [1usize, 4] {
        let batched = [true, false, false, true];
        let sync = drive(EngineKind::Sync, shards, 42, &batched);
        let pipelined = drive(EngineKind::Pipelined, shards, 42, &batched);
        assert!(!sync.epochs.is_empty());
        assert!(sync.epochs.iter().any(|e| !e.responses.is_empty()));
        assert_eq!(sync, pipelined, "engines diverged at {shards} shards");
    }
}
