//! Smoke test: every example must build and run to completion.
//!
//! Examples are the repo's executable documentation; without this gate
//! they rot silently because `cargo test` compiles them but never runs
//! them. All six finish in well under a second each, so running them
//! sequentially inside one test keeps the suite fast and avoids build
//! lock contention from parallel nested cargo invocations.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "commuter_rush",
    "evacuation",
    "network_discovery",
    "quickstart",
    "targeted_advertising",
    "uncertain_tracking",
];

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for name in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
