//! SinglePath vs the DP competitor on identical streams: the
//! directional facts behind Figures 7 and 8 at test scale.

use hotpath_sim::simulation::{run, SimulationParams};

#[test]
fn both_methods_track_the_same_stream() {
    let res = run(SimulationParams::quick(300, 201));
    let dp = res.dp.as_ref().expect("dp enabled");
    assert!(res.coordinator.index_size() > 0);
    assert!(dp.index_size() > 0);
    // DP issues exactly one range query per discovered segment.
    assert!(dp.range_queries() > 0);
}

#[test]
fn dp_achieves_reuse_via_mbb_matching() {
    // With enough objects traveling far enough to cross several roads,
    // DP must bump segments past hotness 1 (its reuse rule is more
    // permissive than SinglePath's covering-set discipline).
    let mut params = SimulationParams::quick(400, 202);
    params.agility = 0.5;
    params.duration = 300;
    let res = run(params);
    let dp = res.dp.as_ref().unwrap();
    let max_dp_hot = dp.hot_segments().iter().map(|h| h.hotness).max().unwrap_or(0);
    assert!(max_dp_hot >= 2, "DP never reused a segment (max hotness {max_dp_hot})");
    // The paper's two directional facts (Sections 6, 6.2): DP stores
    // fewer segments, and its relaxed hotness upper-bounds SinglePath's.
    assert!(
        dp.index_size() < res.coordinator.index_size(),
        "DP index {} should undercut SinglePath {}",
        dp.index_size(),
        res.coordinator.index_size()
    );
    let max_sp_hot = res.coordinator.hot_paths().iter().map(|h| h.hotness).max().unwrap_or(0);
    assert!(
        max_dp_hot >= max_sp_hot,
        "DP hotness {max_dp_hot} should upper-bound SinglePath {max_sp_hot}"
    );
}

#[test]
fn scores_are_comparable_metrics() {
    let res = run(SimulationParams::quick(300, 203));
    let dp = res.dp.as_ref().unwrap();
    let sp_score = res.coordinator.top_k_score();
    let dp_score = dp.top_n_score(10);
    // Both metrics are positive and within a sane factor of each other
    // (the paper's panels plot them on one axis).
    assert!(sp_score > 0.0);
    assert!(dp_score > 0.0);
    assert!(
        sp_score / dp_score < 100.0 && dp_score / sp_score < 100.0,
        "scores incomparable: sp={sp_score} dp={dp_score}"
    );
}

#[test]
fn more_objects_grow_both_indexes() {
    let small = run(SimulationParams::quick(100, 204));
    let large = run(SimulationParams::quick(400, 204));
    assert!(
        large.summary.mean_index_size > small.summary.mean_index_size,
        "SinglePath index did not grow with N"
    );
    assert!(
        large.summary.mean_dp_index_size > small.summary.mean_dp_index_size,
        "DP index did not grow with N"
    );
}

#[test]
fn larger_tolerance_shrinks_the_singlepath_index() {
    let mut tight = SimulationParams::quick(250, 205);
    tight.eps = 2.0;
    let mut loose = SimulationParams::quick(250, 205);
    loose.eps = 20.0;
    let tight_res = run(tight);
    let loose_res = run(loose);
    assert!(
        loose_res.summary.mean_index_size < tight_res.summary.mean_index_size,
        "eps=20 index {} !< eps=2 index {}",
        loose_res.summary.mean_index_size,
        tight_res.summary.mean_index_size
    );
}
