//! Integration coverage for the netsim motivating scenarios
//! (`sporting_event`, `evacuation` — Section 1 of the paper), asserting
//! that the sharded coordinator reports exactly what the sequential one
//! does over a full run: same top-k (ids, geometry, hotness, score),
//! same per-epoch index sizes, same communication counters. The second
//! half pins the registered `Scenario` subsystem the same way: the two
//! event-driven workloads (`rush_hour_surge`, `evacuation_reroute`,
//! composite `surge_dropout`) are bit-for-bit identical sequential vs
//! 4-shard, the `pipelined` engine backend matches the `sync` reference
//! for every registered scenario, and a proptest holds every registered
//! generator to seed-determinism.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::Population;
use hotpath_netsim::network::{generate, NetworkParams, RoadNetwork};
use hotpath_netsim::scenarios::{
    evacuation, nearest_node, sensor_dropout, sporting_event, DropoutWindow,
};

/// One top-k row: `(id, start, end, hotness, score bits)`.
type TopKRow = (u64, (f64, f64), (f64, f64), u32, u64);

/// Everything observable a run produces.
#[derive(PartialEq, Debug)]
struct RunTrace {
    /// `(index size, top-k score bits)` at every epoch boundary.
    per_epoch: Vec<(usize, u64)>,
    /// Final top-10.
    top_k: Vec<TopKRow>,
    /// Final uplink/downlink message counts.
    comm: (u64, u64),
}

/// Drives a scenario population through a coordinator, exactly as the
/// examples do: RayTrace filters client-side, epoch batches server-side.
fn drive(net: &RoadNetwork, mut crowd: Population, n: usize, shards: usize) -> RunTrace {
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(40)
        .with_epoch(5)
        .with_k(10)
        .with_shards(shards);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, crowd.seed_timepoint(net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    let mut per_epoch = Vec::new();
    for t in 1..=150u64 {
        let now = Timestamp(t);
        crowd.tick(net, now, &mut batch);
        for m in &batch {
            if let Some(state) = clients[m.object.0 as usize].observe(m.observed) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
            per_epoch.push((coordinator.index_size(), coordinator.top_k_score().to_bits()));
        }
    }

    coordinator.check_consistency().expect("sharded state inconsistent");
    let top_k = coordinator
        .top_k()
        .iter()
        .map(|h| {
            (
                h.path.id.0,
                (h.path.start().x, h.path.start().y),
                (h.path.end().x, h.path.end().y),
                h.hotness,
                h.score.to_bits(),
            )
        })
        .collect();
    let comm = coordinator.comm_stats();
    RunTrace { per_epoch, top_k, comm: (comm.uplink_msgs, comm.downlink_msgs) }
}

#[test]
fn sporting_event_sharded_matches_sequential() {
    let net = generate(NetworkParams::tiny(21));
    let venue = nearest_node(&net, net.bounds().centroid());
    let n = 300;
    let sequential = drive(&net, sporting_event(&net, n, venue, 22), n, 1);
    assert!(!sequential.top_k.is_empty(), "scenario discovered no hot paths");
    assert!(sequential.per_epoch.iter().any(|&(size, _)| size > 0));
    for shards in [2, 4] {
        let sharded = drive(&net, sporting_event(&net, n, venue, 22), n, shards);
        assert_eq!(sequential, sharded, "divergence at {shards} shards");
    }
}

#[test]
fn evacuation_sharded_matches_sequential() {
    let net = generate(NetworkParams::tiny(23));
    let danger = net.bounds().centroid();
    let n = 300;
    let sequential = drive(&net, evacuation(&net, n, danger, 24), n, 1);
    assert!(!sequential.top_k.is_empty(), "scenario discovered no hot paths");
    for shards in [2, 4] {
        let sharded = drive(&net, evacuation(&net, n, danger, 24), n, shards);
        assert_eq!(sequential, sharded, "divergence at {shards} shards");
    }
}

#[test]
fn scenario_crowds_produce_meaningful_top_k() {
    // The untested scenarios must actually exercise the pipeline: the
    // sporting-event crowd converges, so its hottest corridors should
    // out-heat the typical path.
    let net = generate(NetworkParams::tiny(25));
    let venue = nearest_node(&net, net.bounds().centroid());
    let n = 300;
    let trace = drive(&net, sporting_event(&net, n, venue, 26), n, 2);
    let hottest = trace.top_k.first().map(|&(_, _, _, h, _)| h).unwrap_or(0);
    assert!(hottest >= 3, "no corridor heated up (hottest = {hottest})");
}

/// Drives the sensor-dropout scenario: measurements from dark sensors
/// are discarded before they reach the client filters, and the
/// surviving states go in through `submit_batch` (the pre-routed bulk
/// ingest path). Returns `(top-1 id at outage start, top-k ids at
/// outage end, final trace)`.
fn drive_dropout(
    net: &RoadNetwork,
    mut crowd: Population,
    window: DropoutWindow,
    n: usize,
    shards: usize,
) -> (u64, Vec<u64>, RunTrace) {
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(60)
        .with_epoch(5)
        .with_k(10)
        .with_shards(shards);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, crowd.seed_timepoint(net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    let mut per_epoch = Vec::new();
    let mut top_at_start = None;
    let mut top_ids_at_end = Vec::new();
    for t in 1..=150u64 {
        let now = Timestamp(t);
        crowd.tick(net, now, &mut batch);
        coordinator.submit_batch(batch.iter().filter_map(|m| {
            if window.drops(m.object, now) {
                return None; // the sensor is dark: nothing observed
            }
            clients[m.object.0 as usize].observe(m.observed)
        }));
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            let responses = coordinator.process_epoch(now);
            coordinator.submit_batch(responses.iter().filter_map(|resp| {
                clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
            }));
            per_epoch.push((coordinator.index_size(), coordinator.top_k_score().to_bits()));
            if top_at_start.is_none() && now >= window.from {
                top_at_start = coordinator.top_k().first().map(|h| h.path.id.0);
            }
            if now >= window.until && top_ids_at_end.is_empty() {
                top_ids_at_end = coordinator.top_k().iter().map(|h| h.path.id.0).collect();
            }
        }
    }

    coordinator.check_consistency().expect("sharded state inconsistent");
    let top_k = coordinator
        .top_k()
        .iter()
        .map(|h| {
            (
                h.path.id.0,
                (h.path.start().x, h.path.start().y),
                (h.path.end().x, h.path.end().y),
                h.hotness,
                h.score.to_bits(),
            )
        })
        .collect();
    let comm = coordinator.comm_stats();
    let trace = RunTrace { per_epoch, top_k, comm: (comm.uplink_msgs, comm.downlink_msgs) };
    (top_at_start.expect("no epoch inside the outage"), top_ids_at_end, trace)
}

#[test]
fn sensor_dropout_top_k_stays_stable_and_sharded_matches_sequential() {
    let net = generate(NetworkParams::tiny(27));
    let venue = nearest_node(&net, net.bounds().centroid());
    let n = 300;
    // Let corridors heat up for ~80 ticks, then silence every other
    // sensor for 25 ticks — shorter than the 60-tick hotness window, so
    // pre-outage crossings keep the hot set alive throughout.
    let (crowd, window) = sensor_dropout(&net, n, venue, 28, Timestamp(80), Timestamp(105), 2);
    let (top_start, top_end_ids, sequential) = drive_dropout(&net, crowd, window, n, 1);

    // Stability across the outage: the pre-outage hottest corridor is
    // still in the top-k when sensors come back, and the score never
    // collapses to zero during the dark window.
    assert!(!sequential.top_k.is_empty(), "scenario discovered no hot paths");
    assert!(
        top_end_ids.contains(&top_start),
        "pre-outage top path {top_start} fell out of the post-outage top-k {top_end_ids:?}"
    );
    let epoch_of = |t: u64| (t / 5) as usize - 1; // epoch boundaries at 5, 10, ...
    for e in epoch_of(window.from.raw())..=epoch_of(window.until.raw()) {
        let (_, score_bits) = sequential.per_epoch[e];
        assert!(
            f64::from_bits(score_bits) > 0.0,
            "top-k score collapsed during outage (epoch {e})"
        );
    }

    // And the whole run is bit-for-bit identical sharded vs sequential.
    let shards = 4;
    let (crowd, window) = sensor_dropout(&net, n, venue, 28, Timestamp(80), Timestamp(105), 2);
    let (s_start, s_end_ids, sharded) = drive_dropout(&net, crowd, window, n, shards);
    assert_eq!(sequential, sharded, "divergence at {shards} shards");
    assert_eq!(top_start, s_start);
    assert_eq!(top_end_ids, s_end_ids);
}

// ---------------------------------------------------------------------
// Scenario-subsystem parity: the registered workloads through the
// shared driver (hotpath-sim::scenario_run).
// ---------------------------------------------------------------------

use hotpath_core::engine::EngineKind;
use hotpath_netsim::scenario::{build, ScenarioParams, REGISTRY};
use hotpath_sim::scenario_run::{run_named, ScenarioRunParams, ScenarioRunResult};
use proptest::prelude::*;

/// One epoch of a driver trace: `(index size, score bits, top-k ids)`.
type EpochRow = (usize, u64, Vec<u64>);

/// The full observable trace of a driver run, geometry included.
fn full_trace(res: &ScenarioRunResult) -> (Vec<EpochRow>, Vec<TopKRow>, (u64, u64)) {
    let per_epoch = res
        .outcome
        .per_epoch
        .iter()
        .map(|e| (e.index_size, e.top_k_score.to_bits(), e.top_ids.clone()))
        .collect();
    let top_k = res
        .coordinator
        .top_k()
        .iter()
        .map(|h| {
            (
                h.path.id.0,
                (h.path.start().x, h.path.start().y),
                (h.path.end().x, h.path.end().y),
                h.hotness,
                h.score.to_bits(),
            )
        })
        .collect();
    let comm = res.coordinator.comm_stats();
    (per_epoch, top_k, (comm.uplink_msgs, comm.downlink_msgs))
}

/// Pins one registered scenario bit-for-bit sequential vs `shards`.
fn pin_scenario_parity(name: &str, seed: u64, shards: usize) {
    let scale = ScenarioParams { n: 300, ..ScenarioParams::quick(seed) };
    let run = |shards: usize| {
        let params = ScenarioRunParams::default().with_shards(shards);
        run_named(name, &scale, &params).expect("registered scenario")
    };
    let sequential = run(1);
    sequential.invariants.as_ref().unwrap_or_else(|e| panic!("{name} invariants: {e}"));
    assert!(!sequential.outcome.final_top_k.is_empty(), "{name} discovered no hot paths");
    let sharded = run(shards);
    sharded.coordinator.check_consistency().expect("sharded state inconsistent");
    assert_eq!(
        full_trace(&sequential),
        full_trace(&sharded),
        "{name}: divergence at {shards} shards"
    );
}

#[test]
fn rush_hour_surge_sharded_matches_sequential() {
    pin_scenario_parity("rush_hour_surge", 31, 4);
}

#[test]
fn evacuation_reroute_sharded_matches_sequential() {
    pin_scenario_parity("evacuation_reroute", 33, 4);
}

#[test]
fn surge_dropout_composite_sharded_matches_sequential() {
    pin_scenario_parity("surge_dropout", 35, 4);
}

#[test]
fn flash_crowd_sharded_matches_sequential() {
    pin_scenario_parity("flash_crowd", 37, 4);
}

/// The `phase_b_workers` knob is invisible in results: a flash-crowd
/// run — the workload built to skew Phase-B load — is bit-for-bit
/// identical at every requested worker count, alone and combined with
/// sharding. On multi-core machines this drives the real parallel
/// eval; on a single-core box the coordinator clamps the knob to 1 and
/// the run must STILL match, which is exactly the degrade-to-sequential
/// contract. (The forced-parallel pin that bypasses the clamp lives in
/// hotpath-core's props suite.)
#[test]
fn flash_crowd_identical_at_every_phase_b_worker_count() {
    let scale = ScenarioParams { n: 300, ..ScenarioParams::quick(39) };
    let run = |workers: usize, shards: usize| {
        let params = ScenarioRunParams::default().with_shards(shards).with_phase_b_workers(workers);
        run_named("flash_crowd", &scale, &params).expect("registered scenario")
    };
    let reference = run(1, 1);
    reference.invariants.as_ref().unwrap_or_else(|e| panic!("flash_crowd invariants: {e}"));
    assert!(!reference.outcome.final_top_k.is_empty(), "flash_crowd discovered no hot paths");
    for workers in [2usize, 8] {
        for shards in [1usize, 4] {
            let observed = run(workers, shards);
            observed.invariants.as_ref().unwrap_or_else(|e| panic!("flash_crowd invariants: {e}"));
            observed.coordinator.check_consistency().expect("sharded state inconsistent");
            assert_eq!(
                full_trace(&reference),
                full_trace(&observed),
                "flash_crowd diverged at {workers} workers / {shards} shards"
            );
        }
    }
}

/// The engine-backend acceptance pin: for EVERY registered scenario,
/// a 4-shard `pipelined` run is bit-for-bit identical to the
/// sequential `sync` reference — per-epoch series (index size, score
/// bits, top-k ids), final top-k geometry, and communication counters.
#[test]
fn pipelined_engine_matches_sync_for_every_registered_scenario() {
    for (i, spec) in REGISTRY.iter().enumerate() {
        let scale = ScenarioParams { n: 300, ..ScenarioParams::quick(61 + i as u64) };
        let reference = run_named(spec.name, &scale, &ScenarioRunParams::default())
            .expect("registered scenario");
        assert!(
            !reference.outcome.final_top_k.is_empty(),
            "{}: reference discovered no hot paths",
            spec.name
        );
        let pipelined = run_named(
            spec.name,
            &scale,
            &ScenarioRunParams::default().with_engine(EngineKind::Pipelined).with_shards(4),
        )
        .expect("registered scenario");
        pipelined.coordinator.check_consistency().expect("pipelined state inconsistent");
        assert_eq!(
            full_trace(&reference),
            full_trace(&pipelined),
            "{}: pipelined/4-shard diverged from sync/sequential",
            spec.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every registered scenario generator is a pure function of its
    /// seed: two builds at the same `(seed, n)` produce identical
    /// measurement streams, event schedules included.
    #[test]
    fn scenario_generators_are_deterministic_per_seed(
        seed in 0u64..10_000,
        n in 20usize..120,
        which in 0usize..REGISTRY.len(),
    ) {
        let spec = &REGISTRY[which];
        let scale = ScenarioParams { n, ..ScenarioParams::quick(seed) };
        let stream = || {
            let mut scenario = build(spec.name, &scale).expect("registered");
            let mut out = Vec::new();
            let mut all = Vec::new();
            for t in 1..=60u64 {
                scenario.tick(Timestamp(t), &mut out);
                all.extend(out.iter().map(|m| {
                    (m.object.0, m.observed.p.x.to_bits(), m.observed.p.y.to_bits(), m.observed.t)
                }));
            }
            all
        };
        prop_assert_eq!(stream(), stream());
    }
}
