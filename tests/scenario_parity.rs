//! Integration coverage for the netsim motivating scenarios
//! (`sporting_event`, `evacuation` — Section 1 of the paper), asserting
//! that the sharded coordinator reports exactly what the sequential one
//! does over a full run: same top-k (ids, geometry, hotness, score),
//! same per-epoch index sizes, same communication counters.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::Population;
use hotpath_netsim::network::{generate, NetworkParams, RoadNetwork};
use hotpath_netsim::scenarios::{evacuation, nearest_node, sporting_event};

/// One top-k row: `(id, start, end, hotness, score bits)`.
type TopKRow = (u64, (f64, f64), (f64, f64), u32, u64);

/// Everything observable a run produces.
#[derive(PartialEq, Debug)]
struct RunTrace {
    /// `(index size, top-k score bits)` at every epoch boundary.
    per_epoch: Vec<(usize, u64)>,
    /// Final top-10.
    top_k: Vec<TopKRow>,
    /// Final uplink/downlink message counts.
    comm: (u64, u64),
}

/// Drives a scenario population through a coordinator, exactly as the
/// examples do: RayTrace filters client-side, epoch batches server-side.
fn drive(net: &RoadNetwork, mut crowd: Population, n: usize, shards: usize) -> RunTrace {
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(40)
        .with_epoch(5)
        .with_k(10)
        .with_shards(shards);
    let mut coordinator = Coordinator::new(config);
    let mut clients: Vec<RayTraceFilter> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            RayTraceFilter::new(obj, crowd.seed_timepoint(net, obj, Timestamp(0)), 10.0)
        })
        .collect();

    let mut batch = Vec::new();
    let mut per_epoch = Vec::new();
    for t in 1..=150u64 {
        let now = Timestamp(t);
        crowd.tick(net, now, &mut batch);
        for m in &batch {
            if let Some(state) = clients[m.object.0 as usize].observe(m.observed) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
            per_epoch.push((coordinator.index_size(), coordinator.top_k_score().to_bits()));
        }
    }

    coordinator.check_consistency().expect("sharded state inconsistent");
    let top_k = coordinator
        .top_k()
        .iter()
        .map(|h| {
            (
                h.path.id.0,
                (h.path.start().x, h.path.start().y),
                (h.path.end().x, h.path.end().y),
                h.hotness,
                h.score.to_bits(),
            )
        })
        .collect();
    let comm = coordinator.comm_stats();
    RunTrace { per_epoch, top_k, comm: (comm.uplink_msgs, comm.downlink_msgs) }
}

#[test]
fn sporting_event_sharded_matches_sequential() {
    let net = generate(NetworkParams::tiny(21));
    let venue = nearest_node(&net, net.bounds().centroid());
    let n = 300;
    let sequential = drive(&net, sporting_event(&net, n, venue, 22), n, 1);
    assert!(!sequential.top_k.is_empty(), "scenario discovered no hot paths");
    assert!(sequential.per_epoch.iter().any(|&(size, _)| size > 0));
    for shards in [2, 4] {
        let sharded = drive(&net, sporting_event(&net, n, venue, 22), n, shards);
        assert_eq!(sequential, sharded, "divergence at {shards} shards");
    }
}

#[test]
fn evacuation_sharded_matches_sequential() {
    let net = generate(NetworkParams::tiny(23));
    let danger = net.bounds().centroid();
    let n = 300;
    let sequential = drive(&net, evacuation(&net, n, danger, 24), n, 1);
    assert!(!sequential.top_k.is_empty(), "scenario discovered no hot paths");
    for shards in [2, 4] {
        let sharded = drive(&net, evacuation(&net, n, danger, 24), n, shards);
        assert_eq!(sequential, sharded, "divergence at {shards} shards");
    }
}

#[test]
fn scenario_crowds_produce_meaningful_top_k() {
    // The untested scenarios must actually exercise the pipeline: the
    // sporting-event crowd converges, so its hottest corridors should
    // out-heat the typical path.
    let net = generate(NetworkParams::tiny(25));
    let venue = nearest_node(&net, net.bounds().centroid());
    let n = 300;
    let trace = drive(&net, sporting_event(&net, n, venue, 26), n, 2);
    let hottest = trace.top_k.first().map(|&(_, _, _, h, _)| h).unwrap_or(0);
    assert!(hottest >= 3, "no corridor heated up (hottest = {hottest})");
}
