//! The (eps, delta) uncertainty model end to end: Gaussian measurements
//! through the uncertain RayTrace filter into the coordinator.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::raytrace::UncertainRayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::uncertainty::{FallbackPolicy, ToleranceTable2D};
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::GaussianNoise;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_uncertain(sigma: f64, seed: u64) -> (u64, usize) {
    let (eps, delta) = (10.0, 0.05);
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::uncertain(eps, delta))
        .with_window(200)
        .with_epoch(10);
    let table = ToleranceTable2D::build(eps, delta, 8.0, 128, FallbackPolicy::Reject);
    let mut coordinator = Coordinator::new(config);
    let mut rng = SmallRng::seed_from_u64(seed);
    let noise = GaussianNoise::new(sigma);

    let n = 20usize;
    let mut clients: Vec<UncertainRayTraceFilter> = (0..n)
        .map(|i| {
            UncertainRayTraceFilter::new(
                ObjectId(i as u64),
                TimePoint::new(Point::new(0.0, i as f64 * 100.0), Timestamp(0)),
                table.clone(),
            )
        })
        .collect();

    for t in 1..=200u64 {
        let now = Timestamp(t);
        for (i, client) in clients.iter_mut().enumerate() {
            // All objects ride parallel east-west roads with a kink.
            let x = 8.0 * t as f64;
            let y = i as f64 * 100.0 + if t > 100 { (t - 100) as f64 * 4.0 } else { 0.0 };
            let g = noise.measure(Point::new(x, y), &mut rng);
            if let Some(state) = client.observe_gaussian(g, now) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
        }
    }
    let reports: u64 = clients.iter().map(|c| c.stats().reports).sum();
    (reports, coordinator.index_size())
}

#[test]
fn uncertain_pipeline_discovers_paths() {
    let (reports, index) = run_uncertain(1.0, 301);
    assert!(reports > 0, "no reports at all");
    assert!(index > 0, "no paths discovered under uncertainty");
}

#[test]
fn noisier_sensors_report_more() {
    let (clean, _) = run_uncertain(0.5, 302);
    let (noisy, _) = run_uncertain(3.5, 302);
    assert!(
        noisy > clean,
        "noisy sensors should report more: sigma=3.5 -> {noisy}, sigma=0.5 -> {clean}"
    );
}

#[test]
fn hopeless_noise_rejects_measurements_not_paths() {
    // sigma near eps: many measurements unsolvable, but the pipeline
    // must not panic and the solvable remainder still flows.
    let (_reports, _index) = run_uncertain(4.9, 303);
}
