//! The (eps, delta) uncertainty model end to end: Gaussian measurements
//! through the uncertain RayTrace filter into the coordinator — under
//! every [`FallbackPolicy`] variant, not just `Reject`.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::raytrace::UncertainRayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::uncertainty::{FallbackPolicy, ToleranceTable2D};
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::GaussianNoise;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_uncertain(sigma: f64, seed: u64) -> (u64, usize) {
    run_uncertain_with(sigma, seed, FallbackPolicy::Reject).0
}

/// Runs the pipeline under `fallback`; returns `((reports, index size),
/// dropped measurements)`.
fn run_uncertain_with(sigma: f64, seed: u64, fallback: FallbackPolicy) -> ((u64, usize), u64) {
    let (eps, delta) = (10.0, 0.05);
    let config = Config::paper_defaults()
        .with_tolerance(Tolerance::uncertain(eps, delta))
        .with_window(200)
        .with_epoch(10);
    let table = ToleranceTable2D::build(eps, delta, 8.0, 128, fallback);
    let mut coordinator = Coordinator::new(config);
    let mut rng = SmallRng::seed_from_u64(seed);
    let noise = GaussianNoise::new(sigma);

    let n = 20usize;
    let mut clients: Vec<UncertainRayTraceFilter> = (0..n)
        .map(|i| {
            UncertainRayTraceFilter::new(
                ObjectId(i as u64),
                TimePoint::new(Point::new(0.0, i as f64 * 100.0), Timestamp(0)),
                table.clone(),
            )
        })
        .collect();

    for t in 1..=200u64 {
        let now = Timestamp(t);
        for (i, client) in clients.iter_mut().enumerate() {
            // All objects ride parallel east-west roads with a kink.
            let x = 8.0 * t as f64;
            let y = i as f64 * 100.0 + if t > 100 { (t - 100) as f64 * 4.0 } else { 0.0 };
            let g = noise.measure(Point::new(x, y), &mut rng);
            if let Some(state) = client.observe_gaussian(g, now) {
                coordinator.submit(state);
            }
        }
        coordinator.advance_time(now);
        if config.epochs.is_epoch(now) {
            for resp in coordinator.process_epoch(now) {
                if let Some(state) = clients[resp.object.0 as usize].receive_endpoint(resp.endpoint)
                {
                    coordinator.submit(state);
                }
            }
        }
    }
    let reports: u64 = clients.iter().map(|c| c.stats().reports).sum();
    let dropped: u64 = clients.iter().map(|c| c.stats().dropped).sum();
    ((reports, coordinator.index_size()), dropped)
}

#[test]
fn uncertain_pipeline_discovers_paths() {
    let (reports, index) = run_uncertain(1.0, 301);
    assert!(reports > 0, "no reports at all");
    assert!(index > 0, "no paths discovered under uncertainty");
}

#[test]
fn noisier_sensors_report_more() {
    let (clean, _) = run_uncertain(0.5, 302);
    let (noisy, _) = run_uncertain(3.5, 302);
    assert!(
        noisy > clean,
        "noisy sensors should report more: sigma=3.5 -> {noisy}, sigma=0.5 -> {clean}"
    );
}

#[test]
fn hopeless_noise_rejects_measurements_not_paths() {
    // sigma near eps: many measurements unsolvable, but the pipeline
    // must not panic and the solvable remainder still flows.
    let (_reports, _index) = run_uncertain(4.9, 303);
}

#[test]
fn minimal_area_matches_reject_while_everything_is_solvable() {
    // Well inside the solvable range the fallback never fires, so the
    // two policies are byte-identical end to end.
    let (reject, dropped_r) = run_uncertain_with(1.5, 304, FallbackPolicy::Reject);
    let (minimal, dropped_m) = run_uncertain_with(1.5, 304, FallbackPolicy::MinimalArea(0.5));
    assert_eq!(reject, minimal);
    assert_eq!(dropped_r, 0);
    assert_eq!(dropped_m, 0);
}

#[test]
fn minimal_area_keeps_hopeless_sensors_in_the_pipeline() {
    // sigma = 6 > eps/1.96: Equation 2 has no solution anywhere, so
    // Reject starves the coordinator completely...
    let ((reject_reports, reject_index), reject_dropped) =
        run_uncertain_with(6.0, 305, FallbackPolicy::Reject);
    assert_eq!(reject_reports, 0, "reject should starve under hopeless noise");
    assert_eq!(reject_index, 0);
    assert!(reject_dropped > 0);
    // ...while MinimalArea degrades gracefully: nothing is dropped, the
    // stream keeps flowing, and paths are still discovered.
    let ((minimal_reports, minimal_index), minimal_dropped) =
        run_uncertain_with(6.0, 305, FallbackPolicy::MinimalArea(0.5));
    assert_eq!(minimal_dropped, 0, "minimal-area must never drop");
    assert!(minimal_reports > 0, "minimal-area must keep reporting");
    assert!(minimal_index > 0, "minimal-area must still discover paths");
}

#[test]
fn minimal_area_width_is_capped_by_the_solvable_edge() {
    // A configured fallback width wider than the narrowest solvable
    // interval must be capped there, keeping width monotone in sigma
    // (the dead-arm fix: previously the raw width leaked through and a
    // hopeless measurement could get a *wider* box than a barely
    // solvable one).
    use hotpath_core::uncertainty::ToleranceTable;
    let table = ToleranceTable::build(10.0, 0.05, 8.0, 128, FallbackPolicy::MinimalArea(50.0));
    // The table's own solvable floor: the narrowest width the Reject
    // variant ever hands out over a fine sigma scan.
    let reject = ToleranceTable::build(10.0, 0.05, 8.0, 128, FallbackPolicy::Reject);
    let solvable_floor =
        (0..800).filter_map(|i| reject.half_width(i as f64 * 0.01)).fold(f64::INFINITY, f64::min);
    let fallback_width = table.half_width(7.5).expect("fallback fires");
    assert!(
        fallback_width <= solvable_floor + 1e-9,
        "fallback width {fallback_width} exceeds the solvable floor {solvable_floor}"
    );
    // And the combined width function never increases with sigma.
    let mut prev = f64::INFINITY;
    for i in 0..800 {
        let w = table.half_width(i as f64 * 0.01).expect("minimal-area always yields");
        assert!(w <= prev + 1e-9, "width not monotone at sigma={}", i as f64 * 0.01);
        prev = w;
    }
}
