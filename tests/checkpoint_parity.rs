//! Restart-parity acceptance for checkpoint/restore: for every
//! registered scenario, on both engine backends and at 1 and 4 shards,
//! a run that checkpoints at its mid-run epoch, tears the engine down,
//! and restores from the image bytes must equal the uninterrupted run
//! bit for bit — per-epoch snapshot series, final top-k geometry, and
//! communication counters — and the restored coordinator must pass
//! `check_consistency`. A proptest then drives a raw engine with random
//! checkpoint epochs and submit interleavings (states split across the
//! checkpoint boundary) and requires the same equality on responses and
//! snapshots.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::engine::{Engine, EngineKind};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::scenario::{ScenarioParams, REGISTRY};
use hotpath_sim::scenario_run::{check_restart_parity, ScenarioRunParams};
use proptest::prelude::*;

/// Runs the full scenario × shards restart matrix for one engine kind.
fn restart_matrix(engine: EngineKind) {
    for (i, spec) in REGISTRY.iter().enumerate() {
        let scale = ScenarioParams { n: 300, ..ScenarioParams::quick(41 + i as u64) };
        for shards in [1usize, 4] {
            let params = ScenarioRunParams::default().with_shards(shards).with_engine(engine);
            check_restart_parity(spec.name, &scale, &params)
                .unwrap_or_else(|e| panic!("{engine}/{shards} shards: {e}"));
        }
    }
}

#[test]
fn every_scenario_survives_a_mid_run_restart_sync() {
    restart_matrix(EngineKind::Sync);
}

#[test]
fn every_scenario_survives_a_mid_run_restart_pipelined() {
    restart_matrix(EngineKind::Pipelined);
}

// ---------------------------------------------------------------------
// Random checkpoint epochs and submit interleavings on a raw engine.
// ---------------------------------------------------------------------

fn cfg(shards: usize) -> Config {
    Config::paper_defaults()
        .with_tolerance(Tolerance::crisp(10.0))
        .with_window(40)
        .with_epoch(10)
        .with_k(8)
        .with_shards(shards)
}

/// A deterministic per-epoch batch: 12 states on a coarse lattice so
/// corridors repeat across epochs and heat up.
fn workload(epoch: u64, seed: u64) -> Vec<ClientState> {
    let mut out = Vec::new();
    let mut s = epoch.wrapping_mul(1799).wrapping_add(seed | 1);
    for i in 0..12u64 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = s >> 33;
        let x = ((r % 6) * 500) as f64;
        let y = ((r % 3) * 300) as f64;
        let end = Point::new(x + 50.0, y);
        out.push(ClientState {
            object: ObjectId(i),
            start: Point::new(x, y),
            ts: Timestamp(epoch * 10 - 9),
            fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
            te: Timestamp(epoch * 10 - 1),
        });
    }
    out
}

/// One epoch's observable output: responses, snapshot epoch, score
/// bits, index size, uplink messages.
type EpochRow = (Vec<(u64, u64)>, u64, u64, usize, u64);

fn run_epoch(engine: &mut Box<dyn Engine>, epoch: u64, seed: u64) -> EpochRow {
    let mut states = workload(epoch, seed).into_iter();
    engine.submit_batch(&mut states);
    let responses: Vec<(u64, u64)> = engine
        .process_epoch(Timestamp(epoch * 10))
        .iter()
        .map(|r| (r.object.0, r.endpoint.t.raw()))
        .collect();
    let snap = engine.snapshot();
    (responses, snap.epoch, snap.top_k_score.to_bits(), snap.index_size, snap.comm.uplink_msgs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint at a random epoch with a random slice of the next
    /// batch already submitted (it must travel inside the image's
    /// pending section), restore into a dirtied fresh engine, and the
    /// continuation must equal the uninterrupted run bit for bit.
    #[test]
    fn random_checkpoint_epochs_and_interleavings_restore_bit_for_bit(
        seed in 0u64..10_000,
        shards_ix in 0usize..3,
        kind_ix in 0usize..2,
        ck_epoch in 1u64..6,
        split in 0usize..=12,
    ) {
        let shards = [1usize, 2, 4][shards_ix];
        let kind = [EngineKind::Sync, EngineKind::Pipelined][kind_ix];
        let total = 6u64;

        // Uninterrupted reference.
        let mut base = kind.build(Coordinator::new(cfg(shards)));
        let base_log: Vec<EpochRow> =
            (1..=total).map(|e| run_epoch(&mut base, e, seed)).collect();
        base.finish().check_consistency().expect("reference inconsistent");

        // Interrupted run: play up to `ck_epoch`, pre-submit `split`
        // states of the next batch, checkpoint, and destroy the engine.
        let mut first = kind.build(Coordinator::new(cfg(shards)));
        let head: Vec<EpochRow> =
            (1..=ck_epoch).map(|e| run_epoch(&mut first, e, seed)).collect();
        let next = workload(ck_epoch + 1, seed);
        let mut early = next[..split].iter().copied();
        first.submit_batch(&mut early);
        let image = first.checkpoint();
        prop_assert_eq!(image.epoch(), ck_epoch);
        drop(first);

        // Fresh process-equivalent engine, dirtied so a leaky restore
        // would show, then restored from the image bytes.
        let mut second = kind.build(Coordinator::new(cfg(shards)));
        let _ = run_epoch(&mut second, 17, seed ^ 0x5eed);
        second.restore(&image).expect("restore failed");
        prop_assert_eq!(second.pending_len(), split);

        // Continue: the rest of the split batch, then the tail epochs.
        let mut late = next[split..].iter().copied();
        second.submit_batch(&mut late);
        let boundary = {
            let responses: Vec<(u64, u64)> = second
                .process_epoch(Timestamp((ck_epoch + 1) * 10))
                .iter()
                .map(|r| (r.object.0, r.endpoint.t.raw()))
                .collect();
            let snap = second.snapshot();
            (responses, snap.epoch, snap.top_k_score.to_bits(), snap.index_size,
             snap.comm.uplink_msgs)
        };
        let mut log = head;
        log.push(boundary);
        log.extend((ck_epoch + 2..=total).map(|e| run_epoch(&mut second, e, seed)));
        prop_assert_eq!(&log, &base_log, "divergence after restart at epoch {}", ck_epoch);
        second.finish().check_consistency().expect("restored run inconsistent");
    }
}
