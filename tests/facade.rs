//! The curated-facade acceptance: everything a downstream program needs
//! for the submit -> epoch -> lock-free-read lifecycle must be
//! reachable through `hotpath::prelude` alone — no `hotpath_core::...`
//! paths, no reaching into member crates.

use hotpath::prelude::*;

fn traversal(obj: u64, te: u64) -> ClientState {
    let end = Point::new(50.0, 0.0);
    ClientState {
        object: ObjectId(obj),
        start: Point::new(0.0, 0.0),
        ts: Timestamp(te.saturating_sub(8)),
        fsa: Rect::new(Point::new(end.x - 2.0, end.y - 2.0), Point::new(end.x + 2.0, end.y + 2.0)),
        te: Timestamp(te),
    }
}

/// The raw-engine lifecycle through the prelude: validated config,
/// either backend, a snapshot cell, and lock-free reads.
#[test]
fn prelude_drives_submit_epoch_and_snapshot_read() {
    for kind in [EngineKind::Sync, EngineKind::Pipelined] {
        let config = Config::builder()
            .epoch(10)
            .window(10_000)
            .k(10)
            .build()
            .expect("builder invariants hold");
        let mut engine = kind.build(Coordinator::new(config));
        let cell = SnapshotCell::new();
        engine.attach_cell(cell.clone());
        let mut reader: SnapshotHandle = cell.register();
        assert_eq!(reader.epoch(), 0, "{kind}: epoch-0 image pre-published");

        for epoch in 1..=3u64 {
            engine.submit(traversal(epoch, epoch * 10 - 1));
            engine.advance_time(Timestamp(epoch * 10));
            let responses: Vec<EndpointResponse> = engine.process_epoch(Timestamp(epoch * 10));
            assert_eq!(responses.len(), 1, "{kind}: one client answered per epoch");
        }
        let last: std::sync::Arc<HotSnapshot> = engine.snapshot();
        assert_eq!(last.epoch, 3, "{kind}");

        // The lock-free read path agrees with the engine's own view.
        let guard: SnapshotGuard<'_> = reader.read();
        assert_eq!(guard.epoch, 3, "{kind}");
        assert_eq!(guard.top_k.len(), 1, "{kind}");
        let hot: &HotPath = &guard.top_k[0];
        assert_eq!(hot.hotness, 3, "{kind}: three traversals of one corridor");
        assert!(hot.score > 0.0, "{kind}");
        drop(guard);
        engine.finish();
    }
}

/// The serving lifecycle through the prelude: `hotpathd` front door,
/// reader handles, and the deterministic swarm with engine parity.
#[test]
fn prelude_serves_and_verifies_the_swarm() {
    let config = Config::builder().epoch(10).window(100).build().expect("valid");
    let handle: ServerHandle = Hotpathd::spawn(EngineKind::Sync.build(Coordinator::new(config)));
    let mut reader = handle.reader();
    handle.submit(traversal(1, 9));
    handle.advance(Timestamp(10));
    let snap = handle.shutdown();
    assert_eq!(snap.epoch, 1);
    assert_eq!(reader.epoch(), 1);

    let params = SwarmParams::quick()
        .with_writers(6)
        .with_readers(1)
        .with_ticks(40)
        .with_run(RunOptions::default());
    let (sync, pipelined) = verify_swarm(&params).expect("engine parity through the facade");
    assert_eq!(sync.fingerprint, pipelined.fingerprint);
    let view: ServerStatsView = ServerStatsView { submitted: 0, epochs: 0, responses: 0 };
    assert_eq!(view.epochs, 0);
}

/// Typed parsing is part of the curated surface.
#[test]
fn prelude_parses_cli_tags_with_typed_errors() {
    assert_eq!("pipelined".parse::<EngineKind>().unwrap(), EngineKind::Pipelined);
    assert_eq!("shed-oldest".parse::<AdmissionPolicy>().unwrap(), AdmissionPolicy::ShedOldest);
    assert!(
        matches!("minimal:0.5".parse::<FallbackPolicy>(), Ok(FallbackPolicy::MinimalArea(w)) if w == 0.5)
    );
    let err: ParseError = "warp".parse::<EngineKind>().unwrap_err();
    assert_eq!(err.to_string(), "invalid engine \"warp\": expected sync | pipelined");
    let config_err: ConfigError =
        Config::builder().epoch(50).window(10).build().expect_err("epoch > window");
    assert!(config_err.to_string().contains("epoch"));
}
