//! Failure injection: delayed, withheld, and misdelivered coordinator
//! responses; out-of-order streams. The paper assumes "a response from
//! the coordinator comes in a timely manner" — these tests pin down
//! what the implementation does when that assumption bends or breaks.

use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

fn tp(x: f64, y: f64, t: u64) -> TimePoint {
    TimePoint::new(Point::new(x, y), Timestamp(t))
}

/// Trips the filter at t+1 (east then a hard jump back).
fn trip(f: &mut RayTraceFilter, t0: u64) -> hotpath_core::raytrace::ClientState {
    assert!(f.observe(tp(10.0, 0.0, t0)).is_none());
    f.observe(tp(-1000.0, 0.0, t0 + 1)).expect("violation")
}

#[test]
fn delayed_response_buffers_and_recovers() {
    let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
    let state = trip(&mut f, 1);
    // The coordinator is slow: many epochs pass while the object keeps
    // measuring. Everything buffers; nothing is lost, nothing reported.
    for t in 3..=50u64 {
        assert!(f.observe(tp(-1000.0 - (t - 2) as f64, 0.0, t)).is_none());
        assert!(f.is_waiting());
    }
    // violator + 48 late points
    assert_eq!(f.buffered_len(), 49);
    // The first response arrives; the backlog replays. The violator
    // seeds the new FSA, but the apex->violator jump implies an extreme
    // velocity the remaining backlog cannot sustain: the filter
    // immediately re-reports from the buffered history — chained to the
    // endpoint it just received.
    let endpoint = TimePoint::new(state.fsa.centroid(), state.te);
    let next = f.receive_endpoint(endpoint).expect("backlog re-violates");
    assert_eq!(next.start, endpoint.p);
    assert_eq!(next.ts, endpoint.t);
    assert!(f.is_waiting());
    // The second response lands; from there the steady -1 m/ts drift in
    // the backlog fits a single SSA and the filter fully recovers.
    let endpoint2 = TimePoint::new(next.fsa.centroid(), next.te);
    assert!(f.receive_endpoint(endpoint2).is_none());
    assert!(!f.is_waiting());
    assert_eq!(f.buffered_len(), 0);
    // The chain resumes exactly at the second endpoint.
    let s2 = f.observe(tp(1e6, 1e6, 51)).expect("forced violation");
    assert_eq!(s2.start, endpoint2.p);
    assert_eq!(s2.ts, endpoint2.t);
}

#[test]
fn response_withheld_forever_never_reports_again() {
    // An object whose response is lost keeps buffering: communication
    // stays silent (no report storm), memory grows linearly with the
    // outage — the documented trade of the buffering design.
    let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
    let _ = trip(&mut f, 1);
    let reports_before = f.stats().reports;
    for t in 3..=300u64 {
        assert!(f.observe(tp((t % 7) as f64, (t % 11) as f64, t)).is_none());
    }
    assert_eq!(f.stats().reports, reports_before, "no reports while waiting");
    assert_eq!(f.buffered_len(), 299);
}

#[test]
#[should_panic(expected = "non-waiting")]
fn misdelivered_response_is_rejected_in_debug() {
    // Delivering an endpoint to a filter that never reported is a
    // protocol violation; debug builds refuse it loudly.
    let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
    let _ = f.observe(tp(1.0, 0.0, 1));
    let _ = f.receive_endpoint(tp(0.0, 0.0, 1));
}

#[test]
#[should_panic(expected = "not after SSA end")]
fn out_of_order_measurement_is_rejected_in_debug() {
    let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
    let _ = f.observe(tp(1.0, 0.0, 5));
    let _ = f.observe(tp(2.0, 0.0, 3)); // travels back in time
}

#[test]
fn recovery_after_long_outage_still_validates_chains() {
    use hotpath_core::geometry::{Segment, Trajectory};
    use hotpath_core::motion_path::fits_trajectory;
    use hotpath_core::time::TimeInterval;

    let eps = 3.0;
    let seed = tp(0.0, 0.0, 0);
    let mut f = RayTraceFilter::new(ObjectId(0), seed, eps);
    let mut traj = Trajectory::new();
    traj.push(seed);
    // Eastbound, then a turn the coordinator only hears about 20 ts
    // later; then northbound.
    let mut states = Vec::new();
    let mut endpoints = Vec::new();
    for t in 1..=60u64 {
        let p = if t <= 20 {
            Point::new(10.0 * t as f64, 0.0)
        } else {
            Point::new(200.0, 10.0 * (t - 20) as f64)
        };
        traj.push(TimePoint::new(p, Timestamp(t)));
        if let Some(s) = f.observe(TimePoint::new(p, Timestamp(t))) {
            states.push(s);
        }
        // Outage: the response to the first report arrives only at t = 45.
        if t == 45 {
            let pending: Vec<_> = std::mem::take(&mut states);
            for s in pending {
                let e = TimePoint::new(s.fsa.centroid(), s.te);
                endpoints.push((s, e));
                if let Some(next) = f.receive_endpoint(e) {
                    states.push(next);
                }
            }
        }
    }
    // Whatever happened, every (state, chosen endpoint) pair fits the
    // real trajectory — buffering preserves correctness, not just
    // liveness.
    assert!(!endpoints.is_empty());
    for (s, e) in &endpoints {
        let seg = Segment::new(s.start, e.p);
        let iv = TimeInterval::new(s.ts, s.te);
        assert!(
            fits_trajectory(&seg, iv, &traj, eps),
            "outage-delayed chain element does not fit: {s:?}"
        );
    }
}
