//! Sliding-window semantics across the whole coordinator stack:
//! crossings expire exactly at `te + W` and dead paths leave the index.

use hotpath_core::config::Config;
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

fn state(obj: u64, sx: f64, ex: f64, ts: u64, te: u64) -> ClientState {
    let e = Point::new(ex, 0.0);
    ClientState {
        object: ObjectId(obj),
        start: Point::new(sx, 0.0),
        ts: Timestamp(ts),
        fsa: Rect::new(e - Point::new(1.0, 1.0), e + Point::new(1.0, 1.0)),
        te: Timestamp(te),
    }
}

#[test]
fn crossing_expires_exactly_at_te_plus_w() {
    let cfg = Config::paper_defaults().with_window(50).with_epoch(10);
    let mut c = Coordinator::new(cfg);
    c.submit(state(1, 0.0, 30.0, 0, 7));
    let _ = c.process_epoch(Timestamp(10));
    assert_eq!(c.index_size(), 1);
    // Alive through te + W - 1 = 56.
    c.advance_time(Timestamp(56));
    assert_eq!(c.index_size(), 1);
    // Dead at te + W = 57.
    c.advance_time(Timestamp(57));
    assert_eq!(c.index_size(), 0);
    c.check_consistency().unwrap();
}

#[test]
fn refreshed_paths_survive_expiry_of_old_crossings() {
    let cfg = Config::paper_defaults().with_window(50).with_epoch(10);
    let mut c = Coordinator::new(cfg);
    // Crossing at te=5, re-crossed at te=45 by another object.
    c.submit(state(1, 0.0, 30.0, 0, 5));
    let _ = c.process_epoch(Timestamp(10));
    c.submit(state(2, 0.0, 30.0, 30, 45));
    let _ = c.process_epoch(Timestamp(50));
    let id = c.top_k()[0].path.id;
    assert_eq!(c.hotness_of(id), 2);
    // First crossing expires at 55; the path stays with hotness 1.
    c.advance_time(Timestamp(60));
    assert_eq!(c.hotness_of(id), 1);
    assert_eq!(c.index_size(), 1);
    // Second expires at 95.
    c.advance_time(Timestamp(95));
    assert_eq!(c.index_size(), 0);
}

#[test]
fn score_tracks_window_contents() {
    let cfg = Config::paper_defaults().with_window(50).with_epoch(10).with_k(10);
    let mut c = Coordinator::new(cfg);
    for obj in 0..4u64 {
        c.submit(state(obj, 0.0, 100.0, 0, 8));
    }
    let _ = c.process_epoch(Timestamp(10));
    // One path, hotness 4, length ~100: score ~400.
    let s1 = c.top_k_score();
    assert!(s1 > 300.0, "score {s1}");
    c.advance_time(Timestamp(58));
    assert_eq!(c.top_k_score(), 0.0);
}

#[test]
fn expired_path_id_is_never_reused() {
    let cfg = Config::paper_defaults().with_window(20).with_epoch(10);
    let mut c = Coordinator::new(cfg);
    c.submit(state(1, 0.0, 30.0, 0, 5));
    let _ = c.process_epoch(Timestamp(10));
    let first = c.top_k()[0].path.id;
    c.advance_time(Timestamp(100)); // expire everything
    c.submit(state(1, 0.0, 30.0, 100, 105));
    let _ = c.process_epoch(Timestamp(110));
    let second = c.top_k()[0].path.id;
    assert_ne!(first, second, "path ids must be fresh after expiry");
}
