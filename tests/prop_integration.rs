//! Property-based integration tests: the core guarantees must hold for
//! arbitrary motion, not just the scripted scenarios.

use hotpath_core::geometry::{Point, Rect, Segment, TimePoint, Trajectory};
use hotpath_core::motion_path::fits_trajectory;
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::strategy::FsaSet;
use hotpath_core::time::{TimeInterval, Timestamp};
use hotpath_core::ObjectId;
use proptest::prelude::*;

/// Random bounded step sequences: arbitrary (jumpy) motion.
fn steps(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-40.0..40.0f64, -40.0..40.0f64), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RayTrace guarantee: every reported state admits a motion path
    /// from its start to ANY point of the FSA that fits the measured
    /// trajectory within eps over [ts, te].
    #[test]
    fn raytrace_states_always_fit(deltas in steps(60), eps in 2.0..20.0f64) {
        let seed = TimePoint::new(Point::new(0.0, 0.0), Timestamp(0));
        let mut filter = RayTraceFilter::new(ObjectId(0), seed, eps);
        let mut traj = Trajectory::new();
        traj.push(seed);
        let mut pos = Point::new(0.0, 0.0);
        let mut states = Vec::new();
        for (i, (dx, dy)) in deltas.iter().enumerate() {
            pos = Point::new(pos.x + dx, pos.y + dy);
            let t = Timestamp(i as u64 + 1);
            traj.push(TimePoint::new(pos, t));
            if let Some(state) = filter.observe(TimePoint::new(pos, t)) {
                states.push(state);
                // Resume from the FSA centroid, like the coordinator
                // would (any FSA point is legal).
                let endpoint = TimePoint::new(state.fsa.centroid(), state.te);
                if let Some(next) = filter.receive_endpoint(endpoint) {
                    states.push(next);
                    // A second violation straight from the buffer: the
                    // next endpoint comes at the following epoch; emulate
                    // immediately for the test.
                    let ep2 = TimePoint::new(next.fsa.centroid(), next.te);
                    let _ = filter.receive_endpoint(ep2);
                }
            }
        }
        for state in &states {
            let iv = TimeInterval::new(state.ts, state.te);
            // Check the centroid and all four corners of the FSA.
            let mut endpoints = vec![state.fsa.centroid()];
            endpoints.extend(state.fsa.corners());
            for e in endpoints {
                let seg = Segment::new(state.start, e);
                prop_assert!(
                    fits_trajectory(&seg, iv, &traj, eps),
                    "state {state:?} endpoint {e:?} does not fit"
                );
            }
        }
    }

    /// FSA stabbing depth equals a brute-force containment count.
    #[test]
    fn stab_count_matches_brute_force(
        rects in prop::collection::vec((0.0..200.0f64, 0.0..200.0f64, 1.0..50.0f64, 1.0..50.0f64), 1..40),
        px in -10.0..210.0f64,
        py in -10.0..210.0f64,
    ) {
        let rects: Vec<Rect> = rects
            .into_iter()
            .map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
            .collect();
        let set = FsaSet::build(rects.clone(), 25.0);
        let p = Point::new(px, py);
        let brute = rects.iter().filter(|r| r.contains(&p)).count();
        prop_assert_eq!(set.stab_count(&p), brute);
    }

    /// The max-depth region's depth is achievable and maximal among
    /// sampled points of the clip.
    #[test]
    fn max_depth_region_is_sound(
        rects in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64, 5.0..40.0f64, 5.0..40.0f64), 1..25),
    ) {
        let rects: Vec<Rect> = rects
            .into_iter()
            .map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
            .collect();
        let clip = Rect::new(Point::new(0.0, 0.0), Point::new(150.0, 150.0));
        let set = FsaSet::build(rects.clone(), 20.0);
        let (region, depth) = set.max_depth_region(&clip).expect("rects exist");
        // Achievable: the centroid really is covered `depth` times.
        prop_assert_eq!(set.stab_count(&region.centroid()), depth);
        // Maximal: no rect corner (the only candidate extrema) exceeds it.
        for r in &rects {
            for c in r.corners() {
                if clip.contains(&c) {
                    prop_assert!(set.stab_count(&c) <= depth);
                }
            }
        }
    }

    /// Filter compression only improves as motion straightens.
    #[test]
    fn straighter_motion_reports_less(noise_scale in 0.0..1.0f64) {
        let eps = 5.0;
        let run_with = |scale: f64| -> u64 {
            let seed = TimePoint::new(Point::new(0.0, 0.0), Timestamp(0));
            let mut f = RayTraceFilter::new(ObjectId(0), seed, eps);
            for t in 1..=100u64 {
                let y = (t as f64 * 1.7).sin() * 30.0 * scale;
                let tp = TimePoint::new(Point::new(10.0 * t as f64, y), Timestamp(t));
                if let Some(s) = f.observe(tp) {
                    let _ = f.receive_endpoint(TimePoint::new(s.fsa.centroid(), s.te));
                }
            }
            f.stats().reports
        };
        let wavy = run_with(noise_scale);
        let straight = run_with(0.0);
        prop_assert!(straight <= wavy, "straight {straight} > wavy {wavy}");
    }
}
