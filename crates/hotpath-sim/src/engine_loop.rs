//! The shared epoch loop: every driver in this crate — the figure
//! simulation and the scenario runner — is the same tick/epoch cadence
//! around an [`Engine`], differing only in where measurements come from
//! and how client filters observe them. This module owns that cadence
//! once, parameterized by an [`EpochDriver`] and the engine backend
//! (`sync` or `pipelined`), so the two drivers cannot drift apart and
//! both inherit snapshot-based reads: per-epoch metrics come from the
//! engine's published [`HotSnapshot`], never from live coordinator
//! state.

use crate::metrics::EpochMetrics;
use hotpath_core::coordinator::{EndpointResponse, HotSnapshot};
use hotpath_core::engine::Engine;
use hotpath_core::raytrace::ClientState;
use hotpath_core::stats::CommStats;
use hotpath_core::time::Timestamp;
use std::time::Instant;

/// What a concrete driver plugs into the shared loop: a measurement
/// source feeding client filters (ingest), response delivery back into
/// those filters, and an optional per-epoch observer.
pub trait EpochDriver {
    /// Advances one timestamp: generate this tick's measurements, run
    /// them through the client filters, and submit every escaping state
    /// to `engine` (in measurement order). Returns the number of raw
    /// measurements generated.
    fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64;

    /// Delivers one endpoint response to its client filter; a returned
    /// state is resubmitted by the loop (in response order), seeding the
    /// next epoch exactly as the paper's Section 3.2 protocol does.
    fn deliver(&mut self, resp: &EndpointResponse) -> Option<ClientState>;

    /// Observes the epoch's published snapshot; returns the optional DP
    /// competitor columns for the metrics row.
    fn on_epoch(&mut self, snap: &HotSnapshot) -> (Option<usize>, Option<f64>) {
        let _ = snap;
        (None, None)
    }
}

/// What the loop hands back: the per-epoch metric series and the raw
/// measurement count (totals such as final comm counters come from the
/// finished engine's coordinator).
pub struct EpochLoopResult {
    /// Metrics at every epoch boundary, from the published snapshots.
    pub per_epoch: Vec<EpochMetrics>,
    /// Raw measurements the driver generated over the run.
    pub measurements: u64,
}

/// Drives `driver` through `duration` timestamps against `engine`:
/// per-tick ingest + window advance, and at every epoch boundary the
/// full process/deliver/observe exchange. With the pipelined backend
/// the engine's publish stage and per-tick expiry run on its worker,
/// overlapped with this loop's ingest — observable behavior is
/// identical across backends.
pub fn run_epoch_loop(
    engine: &mut dyn Engine,
    duration: u64,
    driver: &mut dyn EpochDriver,
) -> EpochLoopResult {
    let epochs = engine.config().epochs;
    let mut per_epoch = Vec::new();
    let mut measurements = 0u64;
    let mut comm_prev = CommStats::default();
    for t in 1..=duration {
        let now = Timestamp(t);
        measurements += driver.tick(now, engine);
        engine.advance_time(now);
        if epochs.is_epoch(now) {
            let reporting = engine.pending_len();
            // Boundary-blocking wall time: for the sync backend this
            // spans all four stages; for the pipelined backend it ends
            // at the respond stage (publish overlaps the next ticks) —
            // the difference between backends is the overlap itself.
            let start = Instant::now();
            let responses = engine.process_epoch(now);
            let elapsed = start.elapsed();
            {
                let driver = &mut *driver;
                engine.submit_batch(&mut responses.iter().filter_map(|r| driver.deliver(r)));
            }
            let snap = engine.snapshot();
            let (dp_index_size, dp_score) = driver.on_epoch(&snap);
            per_epoch.push(EpochMetrics {
                epoch: epochs.epoch_index(now),
                timestamp: now,
                reporting,
                index_size: snap.index_size,
                top_k_score: snap.top_k_score,
                processing: elapsed,
                // Snapshot comm is as of the publish: boundary
                // resubmissions count toward the following epoch.
                comm: snap.comm.since(&comm_prev),
                dp_index_size,
                dp_score,
            });
            comm_prev = snap.comm;
        }
    }
    EpochLoopResult { per_epoch, measurements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::config::Config;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::engine::EngineKind;
    use hotpath_core::geometry::{Point, Rect};
    use hotpath_core::ObjectId;

    /// A minimal driver: one object crossing the same corridor each
    /// tick, responses counted.
    struct OneCorridor {
        delivered: usize,
    }

    impl EpochDriver for OneCorridor {
        fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64 {
            let end = Point::new(50.0, 0.0);
            engine.submit(ClientState {
                object: ObjectId(0),
                start: Point::new(0.0, 0.0),
                ts: now,
                fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
                te: now,
            });
            1
        }

        fn deliver(&mut self, _resp: &EndpointResponse) -> Option<ClientState> {
            self.delivered += 1;
            None
        }
    }

    #[test]
    fn loop_produces_one_metrics_row_per_epoch_on_both_backends() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let config = Config::paper_defaults().with_epoch(5).with_window(50);
            let mut engine = kind.build(Coordinator::new(config));
            let mut driver = OneCorridor { delivered: 0 };
            let out = run_epoch_loop(engine.as_mut(), 20, &mut driver);
            assert_eq!(out.per_epoch.len(), 4, "{kind}");
            assert_eq!(out.measurements, 20);
            assert_eq!(driver.delivered, 20, "{kind}: every state gets a response");
            for (i, e) in out.per_epoch.iter().enumerate() {
                assert_eq!(e.epoch, i as u64 + 1);
                assert_eq!(e.timestamp.raw(), (i as u64 + 1) * 5);
                assert_eq!(e.reporting, 5);
                assert!(e.index_size > 0);
            }
            let coordinator = engine.finish();
            coordinator.check_consistency().unwrap();
            assert_eq!(coordinator.comm_stats().uplink_msgs, 20);
        }
    }
}
