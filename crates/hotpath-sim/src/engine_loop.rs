//! The shared epoch loop: every driver in this crate — the figure
//! simulation and the scenario runner — is the same tick/epoch cadence
//! around an [`Engine`], differing only in where measurements come from
//! and how client filters observe them. This module owns that cadence
//! once, parameterized by an [`EpochDriver`] and the engine backend
//! (`sync` or `pipelined`), so the two drivers cannot drift apart and
//! both inherit snapshot-based reads: per-epoch metrics come from the
//! engine's published [`HotSnapshot`], never from live coordinator
//! state.

use crate::metrics::EpochMetrics;
use hotpath_core::checkpoint::Checkpoint;
use hotpath_core::coordinator::{Coordinator, EndpointResponse, HotSnapshot};
use hotpath_core::engine::Engine;
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use std::path::PathBuf;
use std::time::Instant;

/// Checkpoint controls for a run. The default is all-off: no images
/// written, no restore, no restart probe.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointPolicy {
    /// Write a checkpoint image every `N` epochs (requires [`Self::dir`]).
    pub every_epochs: Option<u64>,
    /// Directory the images land in: `epoch-<n>.ckpt` per boundary plus
    /// an always-current `latest.ckpt` for resumption.
    pub dir: Option<PathBuf>,
    /// Warm start: restore this image into the engine before the first
    /// tick (the run continues the checkpointed window and counters).
    pub restore_from: Option<PathBuf>,
    /// Restart-parity probe: at this epoch boundary, checkpoint, tear
    /// the engine down completely, rebuild a fresh one of the same kind,
    /// restore the image into it, and continue — the in-process
    /// equivalent of a crash/restart, pinned by the parity tests.
    pub restart_at: Option<u64>,
}

impl CheckpointPolicy {
    /// True when the loop has any checkpoint work to do.
    pub fn is_active(&self) -> bool {
        *self != CheckpointPolicy::default()
    }

    /// The path of the always-current image under `dir`.
    pub fn latest_path(dir: &std::path::Path) -> PathBuf {
        dir.join("latest.ckpt")
    }
}

/// What a concrete driver plugs into the shared loop: a measurement
/// source feeding client filters (ingest), response delivery back into
/// those filters, and an optional per-epoch observer.
pub trait EpochDriver {
    /// Advances one timestamp: generate this tick's measurements, run
    /// them through the client filters, and submit every escaping state
    /// to `engine` (in measurement order). Returns the number of raw
    /// measurements generated.
    fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64;

    /// Delivers one endpoint response to its client filter; a returned
    /// state is resubmitted by the loop (in response order), seeding the
    /// next epoch exactly as the paper's Section 3.2 protocol does.
    fn deliver(&mut self, resp: &EndpointResponse) -> Option<ClientState>;

    /// Observes the epoch's published snapshot; returns the optional DP
    /// competitor columns for the metrics row.
    fn on_epoch(&mut self, snap: &HotSnapshot) -> (Option<usize>, Option<f64>) {
        let _ = snap;
        (None, None)
    }
}

/// What the loop hands back: the per-epoch metric series and the raw
/// measurement count (totals such as final comm counters come from the
/// finished engine's coordinator).
pub struct EpochLoopResult {
    /// Metrics at every epoch boundary, from the published snapshots.
    pub per_epoch: Vec<EpochMetrics>,
    /// Raw measurements the driver generated over the run.
    pub measurements: u64,
}

/// Drives `driver` through `duration` timestamps against `engine`:
/// per-tick ingest + window advance, and at every epoch boundary the
/// full process/deliver/observe exchange. With the pipelined backend
/// the engine's publish stage and per-tick expiry run on its worker,
/// overlapped with this loop's ingest — observable behavior is
/// identical across backends.
pub fn run_epoch_loop(
    engine: &mut Box<dyn Engine>,
    duration: u64,
    driver: &mut dyn EpochDriver,
) -> EpochLoopResult {
    run_epoch_loop_with(engine, duration, driver, &CheckpointPolicy::default())
}

/// [`run_epoch_loop`] with checkpoint controls: warm-start restore
/// before the first tick, periodic image writes, and the restart-parity
/// probe (engine teardown + rebuild-from-image mid-run). The engine is
/// taken as `&mut Box` because the restart probe replaces it wholesale.
pub fn run_epoch_loop_with(
    engine: &mut Box<dyn Engine>,
    duration: u64,
    driver: &mut dyn EpochDriver,
    ckpt: &CheckpointPolicy,
) -> EpochLoopResult {
    if let Some(path) = &ckpt.restore_from {
        let image = Checkpoint::read_from_path(path)
            .unwrap_or_else(|e| panic!("cannot restore from {}: {e}", path.display()));
        engine.restore(&image).unwrap_or_else(|e| panic!("restore failed: {e}"));
    }
    let epochs = engine.config().epochs;
    let mut per_epoch = Vec::new();
    let mut measurements = 0u64;
    // Baseline the comm deltas on whatever the engine already carries —
    // zero for a fresh engine, the restored counters after a warm start.
    let mut comm_prev = engine.snapshot().comm;
    for t in 1..=duration {
        let now = Timestamp(t);
        measurements += driver.tick(now, engine.as_mut());
        engine.advance_time(now);
        if epochs.is_epoch(now) {
            let reporting = engine.pending_len();
            // Boundary-blocking wall time: for the sync backend this
            // spans all four stages; for the pipelined backend it ends
            // at the respond stage (publish overlaps the next ticks) —
            // the difference between backends is the overlap itself.
            let start = Instant::now();
            let responses = engine.process_epoch(now);
            let elapsed = start.elapsed();
            {
                let driver = &mut *driver;
                engine.submit_batch(&mut responses.iter().filter_map(|r| driver.deliver(r)));
            }
            let snap = engine.snapshot();
            let (dp_index_size, dp_score) = driver.on_epoch(&snap);
            per_epoch.push(EpochMetrics {
                epoch: epochs.epoch_index(now),
                timestamp: now,
                reporting,
                index_size: snap.index_size,
                top_k_score: snap.top_k_score,
                processing: elapsed,
                // Snapshot comm is as of the publish: boundary
                // resubmissions count toward the following epoch.
                comm: snap.comm.since(&comm_prev),
                dp_index_size,
                dp_score,
                phase_b_workers: snap.phase_b.workers,
                phase_b_deferred: snap.phase_b.deferred,
                phase_b_stolen: snap.phase_b.stolen,
                phase_b_imbalance: snap.phase_b.imbalance,
            });
            comm_prev = snap.comm;
            if ckpt.is_active() {
                checkpoint_boundary(engine, epochs.epoch_index(now), ckpt);
            }
        }
    }
    EpochLoopResult { per_epoch, measurements }
}

/// The end-of-boundary checkpoint work: periodic image writes and the
/// restart-parity probe. Runs after boundary resubmissions, so written
/// images carry them in the pending section.
fn checkpoint_boundary(engine: &mut Box<dyn Engine>, epoch_ix: u64, ckpt: &CheckpointPolicy) {
    let write_due = matches!(
        (ckpt.every_epochs, &ckpt.dir),
        (Some(n), Some(_)) if n > 0 && epoch_ix.is_multiple_of(n)
    );
    if write_due {
        let dir = ckpt.dir.as_ref().expect("checked above");
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        let image = engine.checkpoint();
        for path in [dir.join(format!("epoch-{epoch_ix}.ckpt")), CheckpointPolicy::latest_path(dir)]
        {
            image
                .write_to_path(&path)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
    }
    if ckpt.restart_at == Some(epoch_ix) {
        // The crash/restart rehearsal: serialize, destroy the engine
        // (worker thread included), rebuild from the bytes alone.
        let image = engine.checkpoint();
        let config = *engine.config();
        let kind = engine.kind();
        *engine = kind.build(Coordinator::new(config));
        engine.restore(&image).unwrap_or_else(|e| panic!("restart-parity restore failed: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::config::Config;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::engine::EngineKind;
    use hotpath_core::geometry::{Point, Rect};
    use hotpath_core::ObjectId;

    /// A minimal driver: one object crossing the same corridor each
    /// tick, responses counted.
    struct OneCorridor {
        delivered: usize,
    }

    impl EpochDriver for OneCorridor {
        fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64 {
            let end = Point::new(50.0, 0.0);
            engine.submit(ClientState {
                object: ObjectId(0),
                start: Point::new(0.0, 0.0),
                ts: now,
                fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
                te: now,
            });
            1
        }

        fn deliver(&mut self, _resp: &EndpointResponse) -> Option<ClientState> {
            self.delivered += 1;
            None
        }
    }

    /// The restart-parity probe (checkpoint → engine teardown → rebuild
    /// from the image) must be invisible: identical metric rows and
    /// final coordinator as the uninterrupted loop, on both backends.
    #[test]
    fn restart_probe_is_invisible_and_periodic_writes_resume() {
        let rows = |ckpt: &CheckpointPolicy, kind: EngineKind, duration: u64| {
            let config = Config::paper_defaults().with_epoch(5).with_window(50);
            let mut engine = kind.build(Coordinator::new(config));
            let mut driver = OneCorridor { delivered: 0 };
            let out = run_epoch_loop_with(&mut engine, duration, &mut driver, ckpt);
            let c = engine.finish();
            c.check_consistency().unwrap();
            let fp: Vec<(u64, usize, u64, u64)> = out
                .per_epoch
                .iter()
                .map(|e| (e.epoch, e.index_size, e.top_k_score.to_bits(), e.comm.uplink_msgs))
                .collect();
            (fp, c.comm_stats(), c.processing_stats().epochs)
        };
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let base = rows(&CheckpointPolicy::default(), kind, 20);
            let probed = rows(
                &CheckpointPolicy { restart_at: Some(2), ..CheckpointPolicy::default() },
                kind,
                20,
            );
            assert_eq!(base, probed, "restart probe perturbed the {kind} loop");
        }

        // Periodic writes + warm start: run 20 ticks writing every 2
        // epochs, then resume another 20 ticks from `latest.ckpt`; the
        // resumed engine continues the epoch counter.
        let dir = std::env::temp_dir().join("hotpath-loop-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let write = CheckpointPolicy {
            every_epochs: Some(2),
            dir: Some(dir.clone()),
            ..CheckpointPolicy::default()
        };
        let (_, _, epochs_a) = rows(&write, EngineKind::Sync, 20);
        assert_eq!(epochs_a, 4);
        assert!(dir.join("epoch-2.ckpt").exists());
        assert!(dir.join("epoch-4.ckpt").exists());
        let resume = CheckpointPolicy {
            restore_from: Some(CheckpointPolicy::latest_path(&dir)),
            ..CheckpointPolicy::default()
        };
        let (fp, comm, epochs_b) = rows(&resume, EngineKind::Pipelined, 20);
        assert_eq!(epochs_b, 8, "resumed run must continue the epoch counter");
        assert_eq!(comm.uplink_msgs, 40, "restored comm must keep the first run's uplink");
        // Warm-started rows report only the new traffic.
        assert_eq!(fp[0].3, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loop_produces_one_metrics_row_per_epoch_on_both_backends() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let config = Config::paper_defaults().with_epoch(5).with_window(50);
            let mut engine = kind.build(Coordinator::new(config));
            let mut driver = OneCorridor { delivered: 0 };
            let out = run_epoch_loop(&mut engine, 20, &mut driver);
            assert_eq!(out.per_epoch.len(), 4, "{kind}");
            assert_eq!(out.measurements, 20);
            assert_eq!(driver.delivered, 20, "{kind}: every state gets a response");
            for (i, e) in out.per_epoch.iter().enumerate() {
                assert_eq!(e.epoch, i as u64 + 1);
                assert_eq!(e.timestamp.raw(), (i as u64 + 1) * 5);
                assert_eq!(e.reporting, 5);
                assert!(e.index_size > 0);
            }
            let coordinator = engine.finish();
            coordinator.check_consistency().unwrap();
            assert_eq!(coordinator.comm_stats().uplink_msgs, 20);
        }
    }
}
