//! # hotpath-sim
//!
//! The distributed-stream simulation harness of the EDBT 2008
//! reproduction: RayTrace clients + SinglePath coordinator wired over
//! the synthetic Athens workload, the DP competitor on the same stream,
//! per-epoch metrics, and the sweeps regenerating every figure of the
//! paper's evaluation (see EXPERIMENTS.md).
//!
//! ```no_run
//! use hotpath_sim::simulation::{run, SimulationParams};
//!
//! let res = run(SimulationParams::quick(500, 42));
//! println!(
//!     "paths={} score={:.0} reports={} of {} measurements",
//!     res.coordinator.index_size(),
//!     res.coordinator.top_k_score(),
//!     res.filter_stats.reports,
//!     res.summary.measurements,
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine_loop;
pub mod experiment;
pub mod fault;
pub mod metrics;
pub mod options;
pub mod report;
pub mod scenario_run;
pub mod simulation;
