//! The scenario driver: runs any registered [`Scenario`] through the
//! full client-filter + coordinator pipeline, records the same
//! per-epoch metrics as the figure experiments, verifies the scenario's
//! invariants, and sweeps the `(sigma, FallbackPolicy)` uncertainty
//! grid.
//!
//! Crisp mode (`sigma = 0`) feeds the scenario's own measurements
//! (population noise included) through [`RayTraceFilter`]s. Uncertain
//! mode (`sigma > 0`) replaces the sensor model: each true position is
//! re-measured by a Gaussian device with the given sigma and flows
//! through [`UncertainRayTraceFilter`]s, so one scenario exercises the
//! whole Section 4.1 machinery — including both fallback policies.

use crate::engine_loop::{run_epoch_loop_with, CheckpointPolicy, EpochDriver};
use crate::fault::FaultPlan;
use crate::metrics::{EpochMetrics, Summary};
use crate::options::RunOptions;
use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::{Coordinator, EndpointResponse, HotSnapshot};
use hotpath_core::engine::{Engine, EngineKind};
use hotpath_core::geometry::TimePoint;
use hotpath_core::raytrace::{ClientState, FilterStats, RayTraceFilter, UncertainRayTraceFilter};
use hotpath_core::session::SessionTransition;
use hotpath_core::time::Timestamp;
use hotpath_core::uncertainty::{FallbackPolicy, ToleranceTable2D};
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::{GaussianNoise, Measurement};
use hotpath_netsim::scenario::{
    build, EpochSample, FaultKind, Scenario, ScenarioOutcome, ScenarioParams,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Driver knobs; defaults mirror the scenario integration tests.
#[derive(Clone, Debug)]
pub struct ScenarioRunParams {
    /// Tolerance `eps` in meters.
    pub eps: f64,
    /// Failure probability `delta` of the `(eps, delta)` tolerance
    /// (uncertain mode only).
    pub delta: f64,
    /// Gaussian sensor sigma; `0` runs the crisp pipeline.
    pub sigma: f64,
    /// What to do with unsolvably noisy measurements (uncertain mode).
    pub fallback: FallbackPolicy,
    /// Sliding window `W`; `None` uses the scenario's hint.
    pub window: Option<u64>,
    /// Epoch length.
    pub epoch: u64,
    /// Top-k size.
    pub k: usize,
    /// Seed for the driver's Gaussian re-measurement device (kept apart
    /// from the scenario seed so noise and workload vary independently).
    pub noise_seed: u64,
    /// Shared execution knobs: shards, engine backend, checkpoint
    /// policy, and the fault-victim seed used when the scenario
    /// declares [`hotpath_netsim::scenario::FaultWindow`]s.
    pub run: RunOptions,
}

impl Default for ScenarioRunParams {
    fn default() -> Self {
        ScenarioRunParams {
            eps: 10.0,
            delta: 0.05,
            sigma: 0.0,
            fallback: FallbackPolicy::Reject,
            window: None,
            epoch: 5,
            k: 10,
            noise_seed: 0x5eed,
            run: RunOptions::default(),
        }
    }
}

impl ScenarioRunParams {
    /// The core [`Config`] for `scenario` under these knobs. A
    /// scenario's robustness hint (session lease, admission bound,
    /// degrade threshold) is applied on top of the shared defaults.
    pub fn config(&self, scenario: &dyn Scenario) -> Config {
        let mut config = Config::paper_defaults()
            .with_tolerance(if self.sigma > 0.0 {
                Tolerance::uncertain(self.eps, self.delta)
            } else {
                Tolerance::crisp(self.eps)
            })
            .with_window(self.window.unwrap_or_else(|| scenario.window_hint()))
            .with_epoch(self.epoch)
            .with_k(self.k)
            .with_grid_cell((8.0 * self.eps).max(50.0))
            .with_shards(self.run.shards)
            .with_phase_b_workers(self.run.phase_b_workers);
        if let Some(hint) = scenario.robustness_hint() {
            if hint.lease > 0 {
                config = config.with_lease(hint.lease, hint.grace);
            }
            if hint.queue_cap > 0 {
                config = config.with_admission_cap(hint.queue_cap, hint.policy);
            }
            if hint.degrade_threshold > 0 {
                config = config.with_degrade_threshold(hint.degrade_threshold);
            }
        }
        config
    }

    /// Chainable shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.run.shards = shards;
        self
    }

    /// Chainable Phase-B worker-count override.
    pub fn with_phase_b_workers(mut self, workers: usize) -> Self {
        self.run.phase_b_workers = workers;
        self
    }

    /// Chainable engine-backend override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.run.engine = engine;
        self
    }

    /// Chainable checkpoint-policy override.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.run.checkpoint = checkpoint;
        self
    }

    /// Chainable fault-seed override.
    pub fn with_fault_seed(mut self, fault_seed: u64) -> Self {
        self.run.fault_seed = fault_seed;
        self
    }
}

/// Everything a scenario run produces.
pub struct ScenarioRunResult {
    /// The observations handed to the invariant hook.
    pub outcome: ScenarioOutcome,
    /// Per-epoch metrics (same shape as the figure experiments; DP
    /// columns unused).
    pub per_epoch: Vec<EpochMetrics>,
    /// Aggregates over the run.
    pub summary: Summary,
    /// The scenario's verdict on its own invariants.
    pub invariants: Result<(), String>,
    /// Aggregate client-filter statistics (incl. drops under
    /// [`FallbackPolicy::Reject`]).
    pub filter_stats: FilterStats,
    /// Final coordinator state.
    pub coordinator: Coordinator,
}

/// One client: crisp or uncertain, mirroring the simulation driver.
enum Client {
    Crisp(RayTraceFilter),
    Uncertain(UncertainRayTraceFilter),
}

impl Client {
    fn receive(&mut self, endpoint: hotpath_core::geometry::TimePoint) -> Option<ClientState> {
        match self {
            Client::Crisp(f) => f.receive_endpoint(endpoint),
            Client::Uncertain(f) => f.receive_endpoint(endpoint),
        }
    }

    fn stats(&self) -> FilterStats {
        match self {
            Client::Crisp(f) => f.stats(),
            Client::Uncertain(f) => f.stats(),
        }
    }
}

/// Builds one client filter (the initial fleet and every reconnect go
/// through here, so a reconnected client is indistinguishable from a
/// freshly joined one).
fn fresh_client(
    table: &Option<ToleranceTable2D>,
    eps: f64,
    obj: ObjectId,
    seed_tp: TimePoint,
) -> Client {
    match table {
        Some(t) => Client::Uncertain(UncertainRayTraceFilter::new(obj, seed_tp, t.clone())),
        None => Client::Crisp(RayTraceFilter::new(obj, seed_tp, eps)),
    }
}

/// The scenario driver behind the shared epoch loop: the scenario as
/// measurement source, crisp or Gaussian-re-measured clients, fault
/// execution (uplink suppression per the scenario's declared windows),
/// and the per-epoch [`EpochSample`] observations for the invariant
/// hook — read from the published snapshots.
struct ScenarioDriver<'a> {
    scenario: &'a mut dyn Scenario,
    clients: &'a mut [Client],
    noise: GaussianNoise,
    rng: SmallRng,
    batch: Vec<Measurement>,
    states: Vec<ClientState>,
    samples: Vec<EpochSample>,
    /// Executable faults (empty for fault-free scenarios: zero cost).
    plan: FaultPlan,
    /// Filter factory inputs for client reconnects.
    table: Option<ToleranceTable2D>,
    eps: f64,
    /// Clients whose last suppression was a `Disconnect`: their next
    /// surviving measurement reseeds a fresh filter (new session).
    disconnected: Vec<bool>,
    /// When each client entered `waiting` (a report submitted, its
    /// endpoint response pending). Admission control may turn the
    /// report away — no response ever comes — so a client that waits
    /// longer than [`Self::give_up`] abandons the session and reseeds.
    awaiting_since: Vec<Option<Timestamp>>,
    /// Waiting bound in ticks; responses normally arrive within one
    /// epoch, so anything past this means the state was turned away.
    give_up: u64,
    /// Stats of filters retired by reconnect reseeds.
    retired: FilterStats,
    /// The current tick (for response-time bookkeeping in `deliver`).
    now: Timestamp,
    /// Cumulative session-transition counters, folded from the
    /// published per-epoch event streams.
    connects: u64,
    reconnects: u64,
    ejections: u64,
}

impl ScenarioDriver<'_> {
    /// Observes one surviving measurement, tracking the waiting state
    /// of any report it produces.
    fn observe(&mut self, m: &Measurement, now: Timestamp) {
        let idx = m.object.0 as usize;
        let state = match &mut self.clients[idx] {
            Client::Crisp(f) => f.observe(m.observed),
            Client::Uncertain(f) => {
                // The Gaussian device re-measures the true position; the
                // scenario's own (uniform) sensor noise is replaced, not
                // stacked.
                let g = self.noise.measure(m.truth, &mut self.rng);
                f.observe_gaussian(g, now)
            }
        };
        if let Some(s) = state {
            self.awaiting_since[idx] = Some(now);
            self.states.push(s);
        }
    }
}

impl EpochDriver for ScenarioDriver<'_> {
    fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64 {
        self.now = now;
        self.scenario.tick(now, &mut self.batch);
        let generated = self.batch.len() as u64;
        let batch = std::mem::take(&mut self.batch);
        for m in &batch {
            let idx = m.object.0 as usize;
            if !self.plan.is_empty() {
                match self.plan.verdict(m.object, now) {
                    Some(FaultKind::Disconnect) => {
                        self.disconnected[idx] = true;
                        continue;
                    }
                    Some(FaultKind::Stall) => continue,
                    None => {}
                }
            }
            let gave_up = self.awaiting_since[idx]
                .is_some_and(|since| now.raw().saturating_sub(since.raw()) > self.give_up);
            if self.disconnected[idx] || gave_up {
                // Reconnect: retire the old filter's stats and reseed
                // from this measurement, exactly like a fresh client
                // joining mid-run (the coordinator sees a resubmission
                // or, after an ejection, a brand-new session).
                self.retired.merge(&self.clients[idx].stats());
                self.clients[idx] = fresh_client(&self.table, self.eps, m.object, m.observed);
                self.disconnected[idx] = false;
                self.awaiting_since[idx] = None;
                continue;
            }
            self.observe(m, now);
        }
        self.batch = batch;
        engine.submit_batch(&mut self.states.drain(..));
        generated
    }

    fn deliver(&mut self, resp: &EndpointResponse) -> Option<ClientState> {
        let idx = resp.object.0 as usize;
        self.awaiting_since[idx] = None;
        let state = self.clients[idx].receive(resp.endpoint);
        if state.is_some() {
            // A boundary resubmission is a fresh report: it waits for
            // the next epoch's response.
            self.awaiting_since[idx] = Some(self.now);
        }
        state
    }

    fn on_epoch(&mut self, snap: &HotSnapshot) -> (Option<usize>, Option<f64>) {
        for ev in snap.session_events.iter() {
            match ev.transition {
                SessionTransition::Connected => self.connects += 1,
                SessionTransition::Reconnected => self.reconnects += 1,
                SessionTransition::Ejected => self.ejections += 1,
                SessionTransition::Dropped => {}
            }
        }
        self.samples.push(EpochSample {
            timestamp: snap.timestamp,
            index_size: snap.index_size,
            top_k_score: snap.top_k_score,
            top_ids: snap.top_k.iter().map(|h| h.path.id.0).collect(),
            top_hotness: snap.top_k.first().map(|h| h.hotness),
            sessions_healthy: snap.sessions_healthy,
            sessions_dropped: snap.sessions_dropped,
            session_connects: self.connects,
            session_reconnects: self.reconnects,
            session_ejections: self.ejections,
            turned_away: snap.admission.turned_away(),
            degraded_epochs: snap.admission.degraded_epochs,
            phase_b_workers: snap.phase_b.workers,
            phase_b_deferred: snap.phase_b.deferred,
            phase_b_stolen: snap.phase_b.stolen,
            phase_b_imbalance: snap.phase_b.imbalance,
        });
        (None, None)
    }
}

/// Runs `scenario` end to end and verifies its invariants.
pub fn run_scenario(scenario: &mut dyn Scenario, params: &ScenarioRunParams) -> ScenarioRunResult {
    assert!(params.sigma >= 0.0, "sigma must be non-negative");
    let config = params.config(scenario);
    let n = scenario.n();
    let duration = scenario.duration();
    let table = (params.sigma > 0.0).then(|| {
        // Cover the requested sigma with headroom; the fallback policy
        // decides what happens beyond the solvable range.
        let sigma_max = (params.sigma * 1.5).max(8.0);
        ToleranceTable2D::build(params.eps, params.delta, sigma_max, 256, params.fallback)
    });
    let mut clients: Vec<Client> = (0..n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            let seed_tp = scenario.seed_timepoint(obj, Timestamp(0));
            match &table {
                Some(table) => {
                    Client::Uncertain(UncertainRayTraceFilter::new(obj, seed_tp, table.clone()))
                }
                None => Client::Crisp(RayTraceFilter::new(obj, seed_tp, params.eps)),
            }
        })
        .collect();
    let mut engine = params.run.engine.build(Coordinator::new(config));
    let plan = FaultPlan::for_scenario(params.run.fault_seed, &*scenario);
    let mut driver = ScenarioDriver {
        scenario: &mut *scenario,
        clients: &mut clients,
        noise: GaussianNoise::new(params.sigma),
        rng: SmallRng::seed_from_u64(params.noise_seed),
        batch: Vec::new(),
        states: Vec::new(),
        samples: Vec::new(),
        plan,
        table,
        eps: params.eps,
        disconnected: vec![false; n],
        awaiting_since: vec![None; n],
        give_up: 2 * params.epoch + 2,
        retired: FilterStats::default(),
        now: Timestamp(0),
        connects: 0,
        reconnects: 0,
        ejections: 0,
    };
    let out = run_epoch_loop_with(&mut engine, duration, &mut driver, &params.run.checkpoint);
    let samples = std::mem::take(&mut driver.samples);
    let mut filter_stats = std::mem::take(&mut driver.retired);
    drop(driver);
    let coordinator = engine.finish();

    for c in &clients {
        filter_stats.merge(&c.stats());
    }
    let outcome = ScenarioOutcome {
        per_epoch: samples,
        final_top_k: coordinator.top_k().iter().map(|h| (h.path.id.0, h.hotness)).collect(),
        measurements: out.measurements,
        reports: filter_stats.reports,
    };
    coordinator.check_consistency().expect("coordinator state inconsistent");
    let invariants = scenario.check_invariants(&outcome);
    let mut summary = Summary::from_epochs(&out.per_epoch, out.measurements);
    // Totals come from the final coordinator (the per-epoch rows
    // attribute boundary resubmissions to the following epoch).
    let comm = coordinator.comm_stats();
    summary.uplink_msgs = comm.uplink_msgs;
    summary.uplink_bytes = comm.uplink_bytes;
    summary.report_ratio =
        if out.measurements == 0 { 0.0 } else { comm.uplink_msgs as f64 / out.measurements as f64 };
    let per_epoch = out.per_epoch;
    ScenarioRunResult { outcome, per_epoch, summary, invariants, filter_stats, coordinator }
}

/// Builds a registered scenario and runs it; `None` when the name is
/// unknown.
pub fn run_named(
    name: &str,
    scale: &ScenarioParams,
    params: &ScenarioRunParams,
) -> Option<ScenarioRunResult> {
    let mut scenario = build(name, scale)?;
    Some(run_scenario(scenario.as_mut(), params))
}

/// The observable fingerprint of a run used by the parity checks:
/// per-epoch `(index size, score bits, Phase-B deferred count, top-k
/// ids)`, final top-k, and communication counters. The deferred count
/// is the one Phase-B load field that is deterministic (a pure
/// function of the epoch's batch), so it rides the fingerprint; the
/// timing-driven fields (busy time, steals, imbalance) do not.
#[derive(Clone, Debug, PartialEq)]
pub struct ParityTrace {
    per_epoch: Vec<(usize, u64, usize, Vec<u64>)>,
    /// Per-epoch robustness gauges: `(healthy, dropped, connects,
    /// reconnects, ejections, turned_away, degraded_epochs)` — all
    /// zeros while the session layer is off, and pinned bit-for-bit
    /// across engines and shard counts when it is on.
    sessions: Vec<(usize, usize, u64, u64, u64, u64, u64)>,
    final_top_k: Vec<(u64, u32)>,
    comm: (u64, u64),
}

/// Extracts the parity fingerprint of a completed run.
pub fn parity_trace(res: &ScenarioRunResult) -> ParityTrace {
    let comm = res.coordinator.comm_stats();
    ParityTrace {
        per_epoch: res
            .outcome
            .per_epoch
            .iter()
            .map(|e| (e.index_size, e.top_k_score.to_bits(), e.phase_b_deferred, e.top_ids.clone()))
            .collect(),
        sessions: res
            .outcome
            .per_epoch
            .iter()
            .map(|e| {
                (
                    e.sessions_healthy,
                    e.sessions_dropped,
                    e.session_connects,
                    e.session_reconnects,
                    e.session_ejections,
                    e.turned_away,
                    e.degraded_epochs,
                )
            })
            .collect(),
        final_top_k: res.outcome.final_top_k.clone(),
        comm: (comm.uplink_msgs, comm.downlink_msgs),
    }
}

/// Verifies that an already-completed run (any shard count, any engine
/// backend) is bit-for-bit identical to a fresh sequential `sync`
/// reference run of the same scenario (rebuilt from the same `scale`,
/// so both see the same measurement stream). Use this when the run
/// under test is already in hand — it costs one run instead of two.
pub fn check_parity_against(
    observed: &ScenarioRunResult,
    name: &str,
    scale: &ScenarioParams,
    params: &ScenarioRunParams,
) -> Result<(), String> {
    let p = params.clone().with_shards(1).with_engine(EngineKind::Sync);
    let sequential =
        run_named(name, scale, &p).ok_or_else(|| format!("unknown scenario {name}"))?;
    if parity_trace(&sequential) != parity_trace(observed) {
        return Err(format!(
            "{name}: sequential sync reference vs ({} shards, {}) run diverged",
            params.run.shards, params.run.engine
        ));
    }
    Ok(())
}

/// Verifies restart parity: a run that checkpoints at its halfway epoch
/// boundary, tears the engine down completely, rebuilds a fresh one
/// from the image alone, and continues must be bit-for-bit identical to
/// the uninterrupted run — per-epoch snapshots, final top-k, and
/// communication counters — and the restored coordinator must pass
/// `check_consistency`. The clients and the scenario stay alive
/// in-process (they are "the world"); only the engine restarts.
pub fn check_restart_parity(
    name: &str,
    scale: &ScenarioParams,
    params: &ScenarioRunParams,
) -> Result<(), String> {
    let base = run_named(name, scale, params).ok_or_else(|| format!("unknown scenario {name}"))?;
    let total_epochs = base.per_epoch.len() as u64;
    if total_epochs == 0 {
        return Err(format!("{name}: run produced no epochs to checkpoint between"));
    }
    let restart_at = (total_epochs / 2).max(1);
    let p = params.clone().with_checkpoint(CheckpointPolicy {
        restart_at: Some(restart_at),
        ..CheckpointPolicy::default()
    });
    let restarted = run_named(name, scale, &p).expect("scenario known");
    restarted
        .coordinator
        .check_consistency()
        .map_err(|e| format!("{name}: restored coordinator inconsistent: {e}"))?;
    if parity_trace(&base) != parity_trace(&restarted) {
        return Err(format!(
            "{name}: restart at epoch {restart_at}/{total_epochs} diverged from the \
             uninterrupted run ({} shards, {})",
            params.run.shards, params.run.engine
        ));
    }
    Ok(())
}

/// Verifies that a scenario behaves bit-for-bit identically sequential
/// vs `shards`-way sharded: per-epoch index/score series, final top-k
/// (ids and hotness), and communication counters. Runs both from
/// scratch; prefer [`check_parity_against`] when the sharded run
/// already exists.
pub fn check_scenario_parity(
    name: &str,
    scale: &ScenarioParams,
    params: &ScenarioRunParams,
    shards: usize,
) -> Result<(), String> {
    let p = params.clone().with_shards(shards);
    let sharded = run_named(name, scale, &p).ok_or_else(|| format!("unknown scenario {name}"))?;
    check_parity_against(&sharded, name, scale, params)
}

/// One cell of the `(sigma, fallback)` uncertainty grid.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Sensor sigma for this cell.
    pub sigma: f64,
    /// Fallback policy for this cell.
    pub fallback: FallbackPolicy,
    /// Client state reports over the run.
    pub reports: u64,
    /// Measurements dropped as unsolvable (only under `Reject`).
    pub dropped: u64,
    /// Mean index size per epoch.
    pub mean_index: f64,
    /// Mean top-k score per epoch.
    pub mean_score: f64,
    /// Did the scenario's invariants hold? (`None` = held; `Some(why)`
    /// otherwise — informational under heavy noise, where a starved
    /// pipeline is expected behavior.)
    pub invariant_failure: Option<String>,
}

/// Runs `name` across the full `sigmas x fallbacks` grid. Every cell
/// rebuilds the scenario from the same `scale`, so cells differ only in
/// the sensor model — the paper's Section 4.1 sweep generalized to any
/// workload.
pub fn scenario_sigma_sweep(
    name: &str,
    scale: &ScenarioParams,
    base: &ScenarioRunParams,
    sigmas: &[f64],
    fallbacks: &[FallbackPolicy],
) -> Option<Vec<SweepCell>> {
    let mut cells = Vec::with_capacity(sigmas.len() * fallbacks.len());
    for &fallback in fallbacks {
        for &sigma in sigmas {
            let params = ScenarioRunParams { sigma, fallback, ..base.clone() };
            let res = run_named(name, scale, &params)?;
            cells.push(SweepCell {
                sigma,
                fallback,
                reports: res.filter_stats.reports,
                dropped: res.filter_stats.dropped,
                mean_index: res.summary.mean_index_size,
                mean_score: res.summary.mean_score,
                invariant_failure: res.invariants.err(),
            });
        }
    }
    Some(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_netsim::scenario::REGISTRY;

    fn quick_scale(seed: u64) -> ScenarioParams {
        ScenarioParams { n: 200, ..ScenarioParams::quick(seed) }
    }

    #[test]
    fn every_registered_scenario_runs_and_holds_its_invariants() {
        for spec in REGISTRY {
            let res = run_named(spec.name, &quick_scale(41), &ScenarioRunParams::default())
                .expect("registered scenario");
            assert!(res.summary.epochs > 0, "{}: no epochs", spec.name);
            res.invariants.as_ref().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(res.filter_stats.reports > 0);
            assert_eq!(res.filter_stats.dropped, 0, "crisp mode cannot drop");
        }
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_named("nope", &quick_scale(1), &ScenarioRunParams::default()).is_none());
    }

    #[test]
    fn scenario_parity_holds_for_the_registry() {
        for spec in REGISTRY {
            check_scenario_parity(spec.name, &quick_scale(42), &ScenarioRunParams::default(), 2)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn pipelined_sharded_run_matches_the_sync_sequential_reference() {
        let scale = quick_scale(45);
        let p = ScenarioRunParams::default().with_engine(EngineKind::Pipelined).with_shards(4);
        let res = run_named("sporting_event", &scale, &p).unwrap();
        res.invariants.as_ref().unwrap_or_else(|e| panic!("invariants: {e}"));
        check_parity_against(&res, "sporting_event", &scale, &p).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn uncertain_mode_runs_a_scenario() {
        let params = ScenarioRunParams { sigma: 1.5, ..ScenarioRunParams::default() };
        let res = run_named("sporting_event", &quick_scale(43), &params).unwrap();
        assert!(res.filter_stats.reports > 0, "uncertain pipeline silent");
        assert!(res.coordinator.index_size() > 0);
    }

    #[test]
    fn sigma_sweep_covers_the_grid_and_policies_diverge_under_heavy_noise() {
        let scale = quick_scale(44);
        let base = ScenarioRunParams::default();
        let sigmas = [1.0, 6.0];
        let fallbacks = [FallbackPolicy::Reject, FallbackPolicy::MinimalArea(0.5)];
        let cells = scenario_sigma_sweep("evacuation", &scale, &base, &sigmas, &fallbacks).unwrap();
        assert_eq!(cells.len(), 4);
        // sigma = 6 > eps/1.96: unsolvable everywhere. Reject starves...
        let starved =
            cells.iter().find(|c| c.sigma == 6.0 && c.fallback == FallbackPolicy::Reject).unwrap();
        assert!(starved.dropped > 0, "reject under hopeless noise must drop");
        assert_eq!(starved.reports, 0);
        // ...while MinimalArea keeps the stream flowing, drop-free.
        let flowing =
            cells.iter().find(|c| c.sigma == 6.0 && c.fallback != FallbackPolicy::Reject).unwrap();
        assert_eq!(flowing.dropped, 0, "minimal-area must not drop");
        assert!(flowing.reports > 0, "minimal-area under noise must keep reporting");
    }
}
