//! The end-to-end distributed-stream simulation.
//!
//! Wires the substrate together exactly as Section 3.2 describes: every
//! object runs RayTrace locally; escaping states travel to the
//! coordinator; the coordinator batches SinglePath work at epoch
//! boundaries and replies with endpoints that seed the next SSAs.
//! Optionally the DP competitor consumes the *same* measurement stream
//! for the Figure 7/8 comparisons.

use crate::engine_loop::{run_epoch_loop_with, CheckpointPolicy, EpochDriver};
use crate::metrics::{EpochMetrics, Summary};
use crate::options::RunOptions;
use hotpath_baseline::{DpHotSegments, EndpointPolicy};
use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::{Coordinator, EndpointResponse, HotSnapshot};
use hotpath_core::engine::{Engine, EngineKind};
use hotpath_core::raytrace::hinted::HintedRayTraceFilter;
use hotpath_core::raytrace::{ClientState, RayTraceFilter};
use hotpath_core::strategy::OverlapPolicy;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::mobility::{ChoicePolicy, Measurement, Population, PopulationParams};
use hotpath_netsim::network::{generate, NetworkParams, RoadNetwork};

/// Everything a run needs. Defaults are the paper's (Table 2).
#[derive(Clone, Debug)]
pub struct SimulationParams {
    /// Number of moving objects `N`.
    pub n: usize,
    /// Tolerance `eps` in meters.
    pub eps: f64,
    /// Positional error `err` (uniform noise half-range).
    pub err: f64,
    /// Agility `alpha`.
    pub agility: f64,
    /// Displacement `s` per move.
    pub displacement: f64,
    /// Sliding window `W` in timestamps.
    pub window: u64,
    /// Epoch length `Lambda` in timestamps.
    pub epoch: u64,
    /// Top-k size.
    pub k: usize,
    /// Simulation duration in timestamps.
    pub duration: u64,
    /// Seed for network + population.
    pub seed: u64,
    /// Road network to generate.
    pub network: NetworkParams,
    /// Walker policy.
    pub policy: ChoicePolicy,
    /// Enable the Section 7 hint feedback extension.
    pub hints: bool,
    /// Run the DP competitor on the same stream.
    pub run_dp: bool,
    /// DP endpoint policy.
    pub dp_policy: EndpointPolicy,
    /// SinglePath Cases-2/3 overlap policy (ablation hook).
    pub overlap: OverlapPolicy,
    /// Shared execution knobs: shards, engine backend, checkpoint
    /// policy, fault seed (the figure driver declares no faults, so the
    /// seed is carried but unused here).
    pub run: RunOptions,
}

impl SimulationParams {
    /// Paper defaults (Table 2): `eps = 10`, `err = 1`, `alpha = 0.1`,
    /// `s = 10`, `W = 100`, epoch `= 10`, `k = 10`, 250 timestamps, on
    /// the Athens-like network.
    pub fn paper_defaults(n: usize, seed: u64) -> Self {
        SimulationParams {
            n,
            eps: 10.0,
            err: 1.0,
            agility: 0.1,
            displacement: 10.0,
            window: 100,
            epoch: 10,
            k: 10,
            duration: 250,
            seed,
            network: NetworkParams::athens(),
            policy: ChoicePolicy::Weighted { avoid_u_turn: true },
            hints: false,
            run_dp: true,
            dp_policy: EndpointPolicy::Nopw,
            overlap: OverlapPolicy::Full,
            run: RunOptions::default(),
        }
    }

    /// A reduced configuration for tests and micro-benches: a tiny
    /// network and a short horizon, same structure.
    pub fn quick(n: usize, seed: u64) -> Self {
        SimulationParams {
            network: NetworkParams::tiny(seed),
            duration: 100,
            window: 50,
            ..Self::paper_defaults(n, seed)
        }
    }

    /// The core [`Config`] this parameterization induces.
    pub fn config(&self) -> Config {
        Config::paper_defaults()
            .with_tolerance(Tolerance::crisp(self.eps))
            .with_window(self.window)
            .with_epoch(self.epoch)
            .with_k(self.k)
            .with_grid_cell((8.0 * self.eps).max(50.0))
            // Panics on 0, matching Config::with_shards — a zero here is
            // a caller bug (e.g. a miscomputed core count), not a
            // request for sequential mode.
            .with_shards(self.run.shards)
            .with_phase_b_workers(self.run.phase_b_workers)
    }

    /// Chainable shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.run.shards = shards;
        self
    }

    /// Chainable Phase-B worker-count override.
    pub fn with_phase_b_workers(mut self, workers: usize) -> Self {
        self.run.phase_b_workers = workers;
        self
    }

    /// Chainable engine-backend override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.run.engine = engine;
        self
    }

    /// Chainable checkpoint-policy override.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.run.checkpoint = checkpoint;
        self
    }
}

/// A client: plain RayTrace or the hinted extension.
enum Client {
    Plain(RayTraceFilter),
    Hinted(HintedRayTraceFilter),
}

impl Client {
    fn observe(&mut self, m: &Measurement) -> Option<hotpath_core::raytrace::ClientState> {
        match self {
            Client::Plain(f) => f.observe(m.observed),
            Client::Hinted(f) => f.observe(m.observed),
        }
    }

    fn receive(
        &mut self,
        resp: &hotpath_core::coordinator::EndpointResponse,
    ) -> Option<hotpath_core::raytrace::ClientState> {
        match self {
            Client::Plain(f) => f.receive_endpoint(resp.endpoint),
            Client::Hinted(f) => f.receive_endpoint(resp.endpoint, resp.hint),
        }
    }

    fn stats(&self) -> hotpath_core::raytrace::FilterStats {
        match self {
            Client::Plain(f) => f.stats(),
            Client::Hinted(f) => f.stats(),
        }
    }
}

/// The outcome of a run: per-epoch series, aggregates, and the final
/// coordinator/competitor states for map rendering (Figures 9-10).
pub struct SimulationResult {
    /// Metrics at every epoch boundary.
    pub per_epoch: Vec<EpochMetrics>,
    /// Aggregates (the numbers the paper's figures plot).
    pub summary: Summary,
    /// Final coordinator state.
    pub coordinator: Coordinator,
    /// Final DP competitor state (when run).
    pub dp: Option<DpHotSegments>,
    /// The network the population walked (for map rendering).
    pub network: RoadNetwork,
    /// Aggregate client-filter statistics.
    pub filter_stats: hotpath_core::raytrace::FilterStats,
}

/// The figure-experiment driver behind the shared epoch loop: the
/// scenario population as measurement source, plain/hinted RayTrace
/// clients, and the DP competitor riding the same stream.
struct SimDriver<'a> {
    population: &'a mut Population,
    network: &'a RoadNetwork,
    clients: &'a mut [Client],
    dp: &'a mut Option<DpHotSegments>,
    batch: Vec<Measurement>,
    k: usize,
}

impl EpochDriver for SimDriver<'_> {
    fn tick(&mut self, now: Timestamp, engine: &mut dyn Engine) -> u64 {
        self.population.tick(self.network, now, &mut self.batch);
        if let Some(dp) = self.dp.as_mut() {
            for m in &self.batch {
                dp.observe(m.object, m.observed);
            }
        }
        // Bulk ingest: states are pre-routed to their owning shard as
        // they stream in, so the epoch starts with no partitioning pass.
        let clients = &mut *self.clients;
        let batch = &self.batch;
        engine.submit_batch(
            &mut batch.iter().filter_map(|m| clients[m.object.0 as usize].observe(m)),
        );
        if let Some(dp) = self.dp.as_mut() {
            dp.advance_time(now);
        }
        self.batch.len() as u64
    }

    fn deliver(&mut self, resp: &EndpointResponse) -> Option<ClientState> {
        self.clients[resp.object.0 as usize].receive(resp)
    }

    fn on_epoch(&mut self, _snap: &HotSnapshot) -> (Option<usize>, Option<f64>) {
        (self.dp.as_ref().map(|d| d.index_size()), self.dp.as_ref().map(|d| d.top_n_score(self.k)))
    }
}

/// Runs the full simulation.
pub fn run(params: SimulationParams) -> SimulationResult {
    let config = params.config();
    let network = generate(params.network);
    let mut population = Population::new(
        &network,
        PopulationParams {
            agility: params.agility,
            displacement: params.displacement,
            err: params.err,
            seed: params.seed.wrapping_add(1),
            policy: params.policy,
            ..PopulationParams::paper_defaults(params.n, params.seed)
        },
    );

    let mut coordinator = Coordinator::new(config).with_overlap_policy(params.overlap);
    if params.hints {
        coordinator = coordinator.with_hints();
    }
    let mut clients: Vec<Client> = (0..params.n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            let seed_tp = population.seed_timepoint(&network, obj, Timestamp(0));
            if params.hints {
                Client::Hinted(HintedRayTraceFilter::new(obj, seed_tp, params.eps))
            } else {
                Client::Plain(RayTraceFilter::new(obj, seed_tp, params.eps))
            }
        })
        .collect();
    let mut dp =
        params.run_dp.then(|| DpHotSegments::new(params.eps, params.dp_policy, config.window));

    let mut engine = params.run.engine.build(coordinator);
    let mut driver = SimDriver {
        population: &mut population,
        network: &network,
        clients: &mut clients,
        dp: &mut dp,
        batch: Vec::new(),
        k: params.k,
    };
    let out =
        run_epoch_loop_with(&mut engine, params.duration, &mut driver, &params.run.checkpoint);
    let coordinator = engine.finish();

    let mut filter_stats = hotpath_core::raytrace::FilterStats::default();
    for c in &clients {
        filter_stats.merge(&c.stats());
    }

    let mut summary = Summary::from_epochs(&out.per_epoch, out.measurements);
    // Per-epoch comm rows come from the published snapshots (boundary
    // resubmissions count toward the following epoch); the run totals
    // come from the final coordinator, which has seen every message.
    let comm = coordinator.comm_stats();
    summary.uplink_msgs = comm.uplink_msgs;
    summary.uplink_bytes = comm.uplink_bytes;
    summary.report_ratio =
        if out.measurements == 0 { 0.0 } else { comm.uplink_msgs as f64 / out.measurements as f64 };
    let per_epoch = out.per_epoch;
    SimulationResult { per_epoch, summary, coordinator, dp, network, filter_stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_discovers_paths() {
        let res = run(SimulationParams::quick(200, 3));
        assert!(!res.per_epoch.is_empty());
        assert!(res.coordinator.index_size() > 0, "no motion paths discovered");
        assert!(res.summary.mean_index_size > 0.0);
        assert!(res.summary.mean_score > 0.0, "top-k never scored");
        // The filter must compress: far fewer reports than measurements.
        assert!(res.filter_stats.reports > 0);
        assert!(
            res.filter_stats.reports < res.summary.measurements,
            "filter reported every measurement"
        );
    }

    #[test]
    fn dp_competitor_runs_alongside() {
        let res = run(SimulationParams::quick(150, 4));
        let dp = res.dp.expect("dp enabled by default");
        assert!(dp.index_size() > 0, "DP stored nothing");
        let with_dp: Vec<_> = res.per_epoch.iter().filter(|e| e.dp_index_size.is_some()).collect();
        assert_eq!(with_dp.len(), res.per_epoch.len());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(SimulationParams::quick(100, 7));
        let b = run(SimulationParams::quick(100, 7));
        assert_eq!(a.coordinator.index_size(), b.coordinator.index_size());
        assert_eq!(a.summary.uplink_msgs, b.summary.uplink_msgs);
        let sa: Vec<usize> = a.per_epoch.iter().map(|e| e.index_size).collect();
        let sb: Vec<usize> = b.per_epoch.iter().map(|e| e.index_size).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let seq = run(SimulationParams::quick(150, 9));
        let sharded = run(SimulationParams::quick(150, 9).with_shards(4));
        assert_eq!(sharded.coordinator.num_shards(), 4);
        sharded.coordinator.check_consistency().unwrap();
        // Identical observable behavior: per-epoch series, comm, top-k.
        let series = |r: &SimulationResult| -> Vec<(usize, u64)> {
            r.per_epoch.iter().map(|e| (e.index_size, e.top_k_score.to_bits())).collect()
        };
        assert_eq!(series(&seq), series(&sharded));
        assert_eq!(seq.summary.uplink_msgs, sharded.summary.uplink_msgs);
        assert_eq!(
            seq.coordinator.comm_stats().downlink_msgs,
            sharded.coordinator.comm_stats().downlink_msgs
        );
        let top = |r: &SimulationResult| -> Vec<(u64, u32)> {
            r.coordinator.top_n(10).iter().map(|h| (h.path.id.0, h.hotness)).collect()
        };
        assert_eq!(top(&seq), top(&sharded));
    }

    /// The pipelined engine must be observationally identical to the
    /// sync engine over a full simulation — per-epoch series, comm
    /// totals, final top-k — at one shard and many, with the DP
    /// competitor riding along.
    #[test]
    fn pipelined_engine_matches_sync() {
        for shards in [1usize, 4] {
            let base = SimulationParams::quick(150, 11).with_shards(shards);
            let sync = run(base.clone());
            let pipelined = run(base.with_engine(EngineKind::Pipelined));
            let series = |r: &SimulationResult| -> Vec<(usize, u64, u64)> {
                r.per_epoch
                    .iter()
                    .map(|e| (e.index_size, e.top_k_score.to_bits(), e.comm.uplink_msgs))
                    .collect()
            };
            assert_eq!(series(&sync), series(&pipelined), "series diverged at {shards} shards");
            assert_eq!(sync.summary.uplink_msgs, pipelined.summary.uplink_msgs);
            assert_eq!(
                sync.coordinator.comm_stats().downlink_msgs,
                pipelined.coordinator.comm_stats().downlink_msgs
            );
            let top = |r: &SimulationResult| -> Vec<(u64, u32, u64)> {
                r.coordinator
                    .top_n(10)
                    .iter()
                    .map(|h| (h.path.id.0, h.hotness, h.score.to_bits()))
                    .collect()
            };
            assert_eq!(top(&sync), top(&pipelined), "top-k diverged at {shards} shards");
            pipelined.coordinator.check_consistency().unwrap();
            let dp_series = |r: &SimulationResult| -> Vec<Option<usize>> {
                r.per_epoch.iter().map(|e| e.dp_index_size).collect()
            };
            assert_eq!(dp_series(&sync), dp_series(&pipelined));
        }
    }

    #[test]
    fn window_caps_index_growth() {
        // With a short window, expired paths are deleted; the index at
        // the end must not contain paths older than W.
        let mut params = SimulationParams::quick(100, 5);
        params.window = 20;
        params.duration = 120;
        let res = run(params.clone());
        // All hot paths have hotness >= 1 by construction.
        for hp in res.coordinator.hot_paths().iter() {
            assert!(hp.hotness >= 1);
        }
        // And there are at least as many pending expiry events as hot
        // paths (each live path holds >= 1 live crossing).
        assert!(res.coordinator.pending_expiry_events() >= res.coordinator.hot_count());
    }

    #[test]
    fn hinted_mode_runs() {
        let mut params = SimulationParams::quick(100, 6);
        params.hints = true;
        params.run_dp = false;
        let res = run(params.clone());
        assert!(res.coordinator.index_size() > 0);
        assert!(res.dp.is_none());
    }

    #[test]
    fn epoch_cadence_matches_lambda() {
        let params = SimulationParams::quick(50, 8);
        let res = run(params.clone());
        assert_eq!(res.per_epoch.len() as u64, params.duration / params.epoch);
        for (i, e) in res.per_epoch.iter().enumerate() {
            assert_eq!(e.timestamp.raw(), (i as u64 + 1) * params.epoch);
        }
    }
}
