//! Deterministic fault injection for scenario runs.
//!
//! Scenarios *declare* faults ([`FaultWindow`]s); this module
//! *executes* them inside the simulation driver. A [`FaultPlan`] is a
//! pure function of `(fault seed, window salt, object, timestamp)`:
//! the same seed always fails the same clients at the same ticks, so
//! faulted runs are reproducible, engine/shard parity checks stay
//! bit-for-bit, and the restart-parity probe can restore mid-storm and
//! land on the identical continuation.

use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::scenario::{FaultKind, FaultWindow, Scenario};

/// An executable set of fault windows under one seed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan over explicit windows.
    pub fn new(seed: u64, windows: Vec<FaultWindow>) -> Self {
        FaultPlan { seed, windows }
    }

    /// The plan a scenario declares for itself (empty for fault-free
    /// scenarios — execution then costs nothing).
    pub fn for_scenario(seed: u64, scenario: &dyn Scenario) -> Self {
        FaultPlan::new(seed, scenario.fault_windows())
    }

    /// True when no window is declared: the driver skips fault checks
    /// entirely.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The fault afflicting `obj` at `t`, when any. Where windows
    /// overlap, [`FaultKind::Disconnect`] dominates [`FaultKind::Stall`]
    /// (a vanished client cannot also be merely slow).
    pub fn verdict(&self, obj: ObjectId, t: Timestamp) -> Option<FaultKind> {
        let mut verdict = None;
        for w in &self.windows {
            if w.suppresses(self.seed, obj, t) {
                if w.kind == FaultKind::Disconnect {
                    return Some(FaultKind::Disconnect);
                }
                verdict = Some(FaultKind::Stall);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(kind: FaultKind, from: u64, until: u64, fraction: f64, salt: u64) -> FaultWindow {
        FaultWindow { kind, from: Timestamp(from), until: Timestamp(until), fraction, salt }
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.verdict(ObjectId(3), Timestamp(10)), None);
    }

    #[test]
    fn verdicts_are_deterministic_per_seed_and_respect_windows() {
        let plan = FaultPlan::new(7, vec![window(FaultKind::Disconnect, 10, 20, 0.5, 0xA)]);
        let other = FaultPlan::new(8, vec![window(FaultKind::Disconnect, 10, 20, 0.5, 0xA)]);
        let hits = |p: &FaultPlan| -> Vec<u64> {
            (0..200).filter(|&i| p.verdict(ObjectId(i), Timestamp(15)).is_some()).collect()
        };
        assert_eq!(hits(&plan), hits(&plan), "same seed must fail the same clients");
        assert_ne!(hits(&plan), hits(&other), "different seeds must pick different victims");
        assert!(!hits(&plan).is_empty());
        // Outside the window nobody faults.
        for i in 0..200 {
            assert_eq!(plan.verdict(ObjectId(i), Timestamp(9)), None);
            assert_eq!(plan.verdict(ObjectId(i), Timestamp(20)), None);
        }
    }

    #[test]
    fn disconnect_dominates_stall_on_overlap() {
        let plan = FaultPlan::new(
            1,
            vec![
                window(FaultKind::Stall, 0, 100, 1.0, 0xB),
                window(FaultKind::Disconnect, 40, 60, 1.0, 0xC),
            ],
        );
        assert_eq!(plan.verdict(ObjectId(0), Timestamp(10)), Some(FaultKind::Stall));
        assert_eq!(plan.verdict(ObjectId(0), Timestamp(50)), Some(FaultKind::Disconnect));
        assert_eq!(plan.verdict(ObjectId(0), Timestamp(70)), Some(FaultKind::Stall));
    }
}
