//! The shared execution-knob cluster every driver takes.
//!
//! The figure simulation ([`SimulationParams`]), the scenario driver
//! ([`ScenarioRunParams`]), and the serving stack (`hotpathd` /
//! `client_swarm` in `hotpath-serve`) all need the same four choices:
//! how many shards, which engine backend, what checkpoint policy, and
//! which fault seed. [`RunOptions`] is that cluster, embedded by each
//! params struct instead of re-declared — one type to thread through a
//! CLI, one meaning everywhere.
//!
//! [`SimulationParams`]: crate::simulation::SimulationParams
//! [`ScenarioRunParams`]: crate::scenario_run::ScenarioRunParams

use crate::engine_loop::CheckpointPolicy;
use hotpath_core::engine::EngineKind;

/// Execution knobs shared by every run driver. Defaults are the
/// sequential sync engine with checkpointing off and the standard fault
/// seed.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Coordinator shards (1 = sequential; results are identical at
    /// every shard count).
    pub shards: usize,
    /// Phase-B eval workers (1 = sequential Phase B; results are
    /// identical at every worker count — the coordinator clamps to the
    /// machine).
    pub phase_b_workers: usize,
    /// Epoch-execution backend; results are identical for both.
    pub engine: EngineKind,
    /// Checkpoint controls: periodic image writes, warm-start restore,
    /// and the restart-parity probe. Default: all off.
    pub checkpoint: CheckpointPolicy,
    /// Seed for fault-victim selection wherever a driver executes a
    /// [`FaultPlan`](crate::fault::FaultPlan) (the scenario driver and
    /// the swarm generator). Runs are deterministic per seed; drivers
    /// without declared faults ignore it.
    pub fault_seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shards: 1,
            phase_b_workers: 1,
            engine: EngineKind::Sync,
            checkpoint: CheckpointPolicy::default(),
            fault_seed: 0xFA17,
        }
    }
}

impl RunOptions {
    /// Chainable shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Chainable Phase-B worker-count override.
    pub fn with_phase_b_workers(mut self, workers: usize) -> Self {
        self.phase_b_workers = workers;
        self
    }

    /// Chainable engine-backend override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Chainable checkpoint-policy override.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Chainable fault-seed override.
    pub fn with_fault_seed(mut self, fault_seed: u64) -> Self {
        self.fault_seed = fault_seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sequential_sync_with_no_checkpointing() {
        let o = RunOptions::default();
        assert_eq!(o.shards, 1);
        assert_eq!(o.phase_b_workers, 1);
        assert_eq!(o.engine, EngineKind::Sync);
        assert!(!o.checkpoint.is_active());
        assert_eq!(o.fault_seed, 0xFA17);
    }

    #[test]
    fn chainable_overrides_compose() {
        let o = RunOptions::default()
            .with_shards(4)
            .with_phase_b_workers(2)
            .with_engine(EngineKind::Pipelined)
            .with_fault_seed(9182);
        assert_eq!(o.shards, 4);
        assert_eq!(o.phase_b_workers, 2);
        assert_eq!(o.engine, EngineKind::Pipelined);
        assert_eq!(o.fault_seed, 9182);
    }
}
