//! Report rendering: aligned text tables for the figure series and the
//! ASCII maps reproducing Figures 9 and 10.

use hotpath_core::geometry::{Rect, Segment};
use hotpath_netsim::network::RoadNetwork;

/// Renders an aligned table: a header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// An ASCII raster canvas for drawing maps.
pub struct AsciiMap {
    cols: usize,
    rows: usize,
    bounds: Rect,
    cells: Vec<u32>, // accumulated weight per cell
}

impl AsciiMap {
    /// Creates a canvas covering `bounds` with the given glyph grid.
    pub fn new(bounds: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols >= 2 && rows >= 2);
        AsciiMap { cols, rows, bounds, cells: vec![0; cols * rows] }
    }

    /// Accumulates a weighted segment (Bresenham over the raster).
    pub fn draw_segment(&mut self, seg: &Segment, weight: u32) {
        let (x0, y0) = self.to_cell(seg.a.x, seg.a.y);
        let (x1, y1) = self.to_cell(seg.b.x, seg.b.y);
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.bump(x, y, weight);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    fn to_cell(&self, x: f64, y: f64) -> (i64, i64) {
        let fx = (x - self.bounds.lo().x) / self.bounds.width().max(1e-9);
        let fy = (y - self.bounds.lo().y) / self.bounds.height().max(1e-9);
        (
            ((fx * (self.cols - 1) as f64).round() as i64).clamp(0, self.cols as i64 - 1),
            ((fy * (self.rows - 1) as f64).round() as i64).clamp(0, self.rows as i64 - 1),
        )
    }

    fn bump(&mut self, x: i64, y: i64, weight: u32) {
        let idx = y as usize * self.cols + x as usize;
        self.cells[idx] = self.cells[idx].saturating_add(weight);
    }

    /// Renders the canvas: blank, then `.`, `+`, `#`, `@` with rising
    /// accumulated weight (y grows upward, like the figures).
    pub fn render(&self) -> String {
        let max = self.cells.iter().copied().max().unwrap_or(0).max(1);
        let glyph = |w: u32| -> char {
            if w == 0 {
                ' '
            } else {
                let f = w as f64 / max as f64;
                match f {
                    f if f > 0.75 => '@',
                    f if f > 0.4 => '#',
                    f if f > 0.15 => '+',
                    _ => '.',
                }
            }
        };
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                out.push(glyph(self.cells[row * self.cols + col]));
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of cells with any ink (used to compare coverage between
    /// the discovered paths and the underlying network).
    pub fn coverage(&self) -> f64 {
        self.cells.iter().filter(|&&c| c > 0).count() as f64 / self.cells.len() as f64
    }
}

/// Draws the road network itself (the reference picture, Figure 6).
pub fn network_map(net: &RoadNetwork, cols: usize, rows: usize) -> AsciiMap {
    let mut map = AsciiMap::new(net.bounds(), cols, rows);
    for l in net.links() {
        let seg = Segment::new(net.node(l.a).pos, net.node(l.b).pos);
        map.draw_segment(&seg, 1);
    }
    map
}

/// Draws a set of weighted paths over the network bounds (Figures 9-10).
pub fn paths_map(bounds: Rect, paths: &[(Segment, u32)], cols: usize, rows: usize) -> AsciiMap {
    let mut map = AsciiMap::new(bounds, cols, rows);
    for (seg, hot) in paths {
        map.draw_segment(seg, *hot);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::geometry::Point;
    use hotpath_netsim::network::{generate, NetworkParams};

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["N", "paths", "score"],
            &[
                vec!["10000".into(), "3.2".into(), "1000".into()],
                vec!["100".into(), "12345.6".into(), "9".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains("score"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn map_draws_diagonal() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut map = AsciiMap::new(bounds, 20, 20);
        map.draw_segment(&Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)), 1);
        let s = map.render();
        assert!(s.contains('.') || s.contains('@'));
        // Roughly one mark per row.
        let marks = s.chars().filter(|&c| c != ' ' && c != '\n').count();
        assert!(marks >= 20, "diagonal too sparse: {marks}");
        assert!(map.coverage() > 0.04);
    }

    #[test]
    fn hotter_segments_use_heavier_glyphs() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut map = AsciiMap::new(bounds, 20, 20);
        map.draw_segment(&Segment::new(Point::new(0.0, 10.0), Point::new(100.0, 10.0)), 100);
        map.draw_segment(&Segment::new(Point::new(0.0, 90.0), Point::new(100.0, 90.0)), 1);
        let s = map.render();
        let lines: Vec<&str> = s.lines().collect();
        // y grows upward: hot line in the bottom half, cold in the top.
        let top = lines[..10].join("");
        let bottom = lines[10..].join("");
        assert!(bottom.contains('@'), "hot row missing: {s}");
        assert!(top.contains('.'), "cold row missing: {s}");
        assert!(!top.contains('@'), "cold row should stay light: {s}");
    }

    #[test]
    fn network_map_covers_area() {
        let net = generate(NetworkParams::tiny(9));
        let map = network_map(&net, 40, 20);
        assert!(map.coverage() > 0.3, "network map too sparse: {}", map.coverage());
    }

    #[test]
    fn empty_paths_map_is_blank() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let map = paths_map(bounds, &[], 10, 10);
        assert_eq!(map.coverage(), 0.0);
        assert!(map.render().chars().all(|c| c == ' ' || c == '\n'));
    }
}

/// Renders rows as CSV (header + records, RFC-4180-style quoting for
/// cells containing commas or quotes). Used by `experiments --csv` so
/// sweep series can be plotted externally.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Renders a per-epoch metric series as CSV — one record per epoch
/// boundary with the quality, timing, and communication columns. Used
/// by `experiments scenario --csv` so scenario runs can be plotted and
/// diffed externally.
pub fn epoch_metrics_csv(rows: &[crate::metrics::EpochMetrics]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|e| {
            vec![
                e.epoch.to_string(),
                e.timestamp.raw().to_string(),
                e.reporting.to_string(),
                e.index_size.to_string(),
                format!("{}", e.top_k_score),
                format!("{}", e.processing.as_secs_f64() * 1e3),
                e.comm.uplink_msgs.to_string(),
                e.comm.uplink_bytes.to_string(),
                e.comm.downlink_msgs.to_string(),
                e.comm.downlink_bytes.to_string(),
                e.phase_b_workers.to_string(),
                e.phase_b_deferred.to_string(),
                e.phase_b_stolen.to_string(),
                format!("{}", e.phase_b_imbalance),
            ]
        })
        .collect();
    csv(
        &[
            "epoch",
            "timestamp",
            "reporting",
            "index_size",
            "top_k_score",
            "processing_ms",
            "uplink_msgs",
            "uplink_bytes",
            "downlink_msgs",
            "downlink_bytes",
            "phase_b_workers",
            "phase_b_deferred",
            "phase_b_stolen",
            "phase_b_imbalance",
        ],
        &data,
    )
}

#[cfg(test)]
mod csv_tests {
    use super::csv;

    #[test]
    fn plain_cells_pass_through() {
        let s = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn commas_and_quotes_are_escaped() {
        let s = csv(&["x"], &[vec!["a,b".into()], vec!["say \"hi\"".into()]]);
        assert_eq!(s, "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_rejected() {
        let _ = csv(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn epoch_metrics_render_one_record_per_epoch() {
        use crate::metrics::EpochMetrics;
        use hotpath_core::stats::CommStats;
        use hotpath_core::time::Timestamp;
        use std::time::Duration;
        let rows = vec![EpochMetrics {
            epoch: 3,
            timestamp: Timestamp(15),
            reporting: 7,
            index_size: 42,
            top_k_score: 99.5,
            processing: Duration::from_millis(2),
            comm: CommStats {
                uplink_msgs: 7,
                uplink_bytes: 504,
                downlink_msgs: 7,
                downlink_bytes: 224,
            },
            dp_index_size: None,
            dp_score: None,
            phase_b_workers: 2,
            phase_b_deferred: 5,
            phase_b_stolen: 1,
            phase_b_imbalance: 1.25,
        }];
        let s = super::epoch_metrics_csv(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2, "header plus one record");
        assert!(lines[0].starts_with("epoch,timestamp,reporting,index_size,top_k_score"));
        assert!(
            lines[0].ends_with("phase_b_workers,phase_b_deferred,phase_b_stolen,phase_b_imbalance")
        );
        assert!(lines[1].starts_with("3,15,7,42,99.5,2,"));
        assert!(lines[1].ends_with("7,504,7,224,2,5,1,1.25"));
    }
}
