//! The evaluation sweeps (Section 6): one function per figure, each
//! returning the series the paper plots plus a formatted report.

use crate::report;
use crate::simulation::{run, SimulationParams, SimulationResult};
use hotpath_core::geometry::{Rect, Segment};

/// One point of the Figure 7 sweep (vary `N`, fixed `eps = 10`).
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// Number of objects.
    pub n: usize,
    /// Mean SinglePath index size (motion paths) per epoch.
    pub sp_paths: f64,
    /// Mean DP index size (segments) per epoch.
    pub dp_paths: f64,
    /// Mean SinglePath top-k score per epoch.
    pub sp_score: f64,
    /// Mean DP top-k score per epoch.
    pub dp_score: f64,
    /// Mean SinglePath processing time per epoch, ms.
    pub sp_time_ms: f64,
}

/// One point of the Figure 8 sweep (vary `eps`, fixed `N = 20000`).
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Tolerance in meters.
    pub eps: f64,
    /// Mean SinglePath index size per epoch.
    pub sp_paths: f64,
    /// Mean DP index size per epoch.
    pub dp_paths: f64,
    /// Mean SinglePath top-k score per epoch.
    pub sp_score: f64,
    /// Mean DP top-k score per epoch.
    pub dp_score: f64,
    /// Mean SinglePath processing time per epoch, ms.
    pub sp_time_ms: f64,
}

/// Runs one parameterization and summarizes it as a Figure-7-style row.
fn run_row(params: SimulationParams) -> (f64, f64, f64, f64, f64) {
    let res = run(params);
    let s = &res.summary;
    (s.mean_index_size, s.mean_dp_index_size, s.mean_score, s.mean_dp_score, s.mean_time_ms)
}

/// Figure 7: vary the number of objects; `base` supplies every other
/// parameter (use [`SimulationParams::paper_defaults`] for paper scale).
pub fn figure7(ns: &[usize], base: SimulationParams) -> Vec<Fig7Row> {
    ns.iter()
        .map(|&n| {
            let params = SimulationParams { n, ..base.clone() };
            let (sp_paths, dp_paths, sp_score, dp_score, sp_time_ms) = run_row(params);
            Fig7Row { n, sp_paths, dp_paths, sp_score, dp_score, sp_time_ms }
        })
        .collect()
}

/// Figure 8: vary the tolerance at fixed `N` (paper: 20 000).
pub fn figure8(epss: &[f64], base: SimulationParams) -> Vec<Fig8Row> {
    epss.iter()
        .map(|&eps| {
            let params = SimulationParams { eps, ..base.clone() };
            let (sp_paths, dp_paths, sp_score, dp_score, sp_time_ms) = run_row(params);
            Fig8Row { eps, sp_paths, dp_paths, sp_score, dp_score, sp_time_ms }
        })
        .collect()
}

/// Formats the Figure 7 series as the three panels' columns.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.0}", r.sp_paths),
                format!("{:.0}", r.dp_paths),
                format!("{:.1}", r.sp_score),
                format!("{:.1}", r.dp_score),
                format!("{:.2}", r.sp_time_ms),
            ]
        })
        .collect();
    report::table(&["N", "SP paths", "DP paths", "SP score", "DP score", "SP ms/epoch"], &data)
}

/// Formats the Figure 8 series.
pub fn format_fig8(rows: &[Fig8Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.eps),
                format!("{:.0}", r.sp_paths),
                format!("{:.0}", r.dp_paths),
                format!("{:.1}", r.sp_score),
                format!("{:.1}", r.dp_score),
                format!("{:.2}", r.sp_time_ms),
            ]
        })
        .collect();
    report::table(&["eps", "SP paths", "DP paths", "SP score", "DP score", "SP ms/epoch"], &data)
}

/// Figure 9: run the default configuration and return all motion paths
/// with hotness > 0 (the "discovered network"), plus the run itself.
pub fn figure9(params: SimulationParams) -> (Vec<(Segment, u32)>, SimulationResult) {
    let res = run(params);
    let paths: Vec<(Segment, u32)> =
        res.coordinator.hot_paths().iter().map(|h| (h.path.seg, h.hotness)).collect();
    (paths, res)
}

/// Figure 10: the top-`k` hottest paths restricted to the map center
/// (the paper zooms on the Athens center).
pub fn figure10(
    params: SimulationParams,
    k: usize,
) -> (Vec<(Segment, u32)>, Rect, SimulationResult) {
    let res = run(params);
    let bounds = res.network.bounds();
    // Central zoom: the middle third of the area.
    let third = |lo: f64, hi: f64| -> (f64, f64) {
        let span = hi - lo;
        (lo + span / 3.0, hi - span / 3.0)
    };
    let (cx0, cx1) = third(bounds.lo().x, bounds.hi().x);
    let (cy0, cy1) = third(bounds.lo().y, bounds.hi().y);
    let center = Rect::new(
        hotpath_core::geometry::Point::new(cx0, cy0),
        hotpath_core::geometry::Point::new(cx1, cy1),
    );
    let mut central: Vec<(Segment, u32)> = res
        .coordinator
        .hot_paths()
        .iter()
        .filter(|h| center.intersects(&h.path.seg.mbb()))
        .map(|h| (h.path.seg, h.hotness))
        .collect();
    central.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.length().total_cmp(&a.0.length())));
    central.truncate(k);
    (central, center, res)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> SimulationParams {
        let mut p = SimulationParams::quick(150, 17);
        p.duration = 80;
        p
    }

    #[test]
    fn figure7_rows_cover_requested_ns() {
        let rows = figure7(&[50, 150], quick_base());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].n, 50);
        assert_eq!(rows[1].n, 150);
        // More objects → more (or equal) paths, for both methods.
        assert!(rows[1].sp_paths >= rows[0].sp_paths);
        // The formatted table parses back.
        let txt = format_fig7(&rows);
        assert!(txt.contains("SP paths"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn figure8_rows_cover_requested_eps() {
        let rows = figure8(&[5.0, 20.0], quick_base());
        assert_eq!(rows.len(), 2);
        // Larger tolerance → fewer paths (SinglePath), as in Fig 8a.
        assert!(
            rows[1].sp_paths <= rows[0].sp_paths,
            "eps=20 produced more paths than eps=5: {} vs {}",
            rows[1].sp_paths,
            rows[0].sp_paths
        );
        let txt = format_fig8(&rows);
        assert!(txt.contains("eps"));
    }

    #[test]
    fn figure9_returns_hot_paths() {
        let (paths, res) = figure9(quick_base());
        assert!(!paths.is_empty());
        assert_eq!(paths.len(), res.coordinator.hot_paths().len());
        assert!(paths.iter().all(|&(_, h)| h >= 1));
    }

    #[test]
    fn figure10_respects_k_and_center() {
        let (paths, center, _res) = figure10(quick_base(), 5);
        assert!(paths.len() <= 5);
        for (seg, _) in &paths {
            assert!(center.intersects(&seg.mbb()));
        }
        // Sorted by hotness descending.
        for pair in paths.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}

// --------------------------------------------------------------------
// Extension experiments (beyond the paper's figures; see EXPERIMENTS.md)
// --------------------------------------------------------------------

/// Communication economy of three client filters on the same stream.
#[derive(Clone, Copy, Debug)]
pub struct FilterEconomy {
    /// Measurements generated.
    pub measurements: u64,
    /// Naive uplink: one message per *movement* sample (the strawman of
    /// Section 1: "all objects continuously relay their locations").
    pub naive_msgs: u64,
    /// Dead-reckoning updates.
    pub dead_reckoning_msgs: u64,
    /// RayTrace state reports.
    pub raytrace_msgs: u64,
    /// Naive uplink bytes (timepoint + id).
    pub naive_bytes: u64,
    /// Dead-reckoning bytes.
    pub dead_reckoning_bytes: u64,
    /// RayTrace bytes.
    pub raytrace_bytes: u64,
}

/// Runs the workload once, feeding every measurement to a naive
/// uploader, a dead-reckoning filter, and the full RayTrace pipeline.
pub fn filter_economy(params: SimulationParams) -> FilterEconomy {
    use hotpath_baseline::dead_reckoning::{DeadReckoningFilter, DrUpdate};
    use hotpath_core::raytrace::ClientState;
    use hotpath_core::time::Timestamp;
    use hotpath_core::ObjectId;
    use hotpath_netsim::mobility::{Population, PopulationParams};
    use hotpath_netsim::network::generate;

    let network = generate(params.network);
    let mut population = Population::new(
        &network,
        PopulationParams {
            agility: params.agility,
            displacement: params.displacement,
            err: params.err,
            seed: params.seed.wrapping_add(1),
            policy: params.policy,
            ..PopulationParams::paper_defaults(params.n, params.seed)
        },
    );
    // RayTrace needs the coordinator loop for endpoints; reuse run() for
    // its uplink count on an identical stream (same seeds).
    let rt = run(SimulationParams { run_dp: false, ..params.clone() });

    let mut dr: Vec<DeadReckoningFilter> = (0..params.n)
        .map(|i| {
            let obj = ObjectId(i as u64);
            DeadReckoningFilter::new(
                obj,
                population.seed_timepoint(&network, obj, Timestamp(0)),
                params.eps,
            )
        })
        .collect();
    let mut measurements = 0u64;
    let mut naive_msgs = 0u64;
    let mut dr_msgs = 0u64;
    let mut batch = Vec::new();
    let mut last_pos: Vec<Option<hotpath_core::geometry::Point>> = vec![None; params.n];
    for t in 1..=params.duration {
        population.tick(&network, Timestamp(t), &mut batch);
        measurements += batch.len() as u64;
        for m in &batch {
            let idx = m.object.0 as usize;
            // The naive protocol uploads every *changed* position (it
            // would be absurd to re-upload a parked object).
            if last_pos[idx] != Some(m.truth) {
                naive_msgs += 1;
                last_pos[idx] = Some(m.truth);
            }
            if dr[idx].observe(m.observed).is_some() {
                dr_msgs += 1;
            }
        }
    }
    FilterEconomy {
        measurements,
        naive_msgs,
        dead_reckoning_msgs: dr_msgs,
        raytrace_msgs: rt.summary.uplink_msgs,
        naive_bytes: naive_msgs * (16 + 8 + 8),
        dead_reckoning_bytes: dr_msgs * DrUpdate::WIRE_BYTES as u64,
        raytrace_bytes: rt.summary.uplink_msgs * ClientState::WIRE_BYTES as u64,
    }
}

/// Per-object synopsis quality of the streaming compressors: segments
/// produced and worst-case spatial deviation, RayTrace chains vs the
/// opening-window DP policies (the ref.-20 comparison of Section 2).
#[derive(Clone, Copy, Debug)]
pub struct CompressionRow {
    /// Stream length in points.
    pub points: usize,
    /// RayTrace chain elements.
    pub raytrace_segments: usize,
    /// RayTrace worst deviation (max-distance, synchronized in time).
    pub raytrace_deviation: f64,
    /// DP-nopw segments.
    pub nopw_segments: usize,
    /// DP-nopw worst spatial deviation.
    pub nopw_deviation: f64,
    /// DP-bopw segments.
    pub bopw_segments: usize,
    /// DP-bopw worst spatial deviation.
    pub bopw_deviation: f64,
}

/// Compresses one wavy-and-turning trajectory with all three streaming
/// methods at tolerance `eps`.
pub fn compression_quality(points: usize, eps: f64) -> CompressionRow {
    use hotpath_baseline::{EndpointPolicy, Metric, OpeningWindow};
    use hotpath_core::geometry::{Point, Segment, TimePoint};
    use hotpath_core::raytrace::RayTraceFilter;
    use hotpath_core::time::Timestamp;
    use hotpath_core::ObjectId;

    // A demanding trajectory: drift + waves + a hard turn mid-way.
    let traj: Vec<TimePoint> = (1..=points as u64)
        .map(|t| {
            let half = points as u64 / 2;
            let p = if t <= half {
                Point::new(8.0 * t as f64, (t as f64 * 0.15).sin() * 6.0)
            } else {
                Point::new(8.0 * half as f64, 8.0 * (t - half) as f64)
            };
            TimePoint::new(p, Timestamp(t))
        })
        .collect();
    let seed = TimePoint::new(Point::new(0.0, 0.0), Timestamp(0));

    // RayTrace chain, endpoint = FSA centroid (coordinator stand-in).
    let mut rt = RayTraceFilter::new(ObjectId(0), seed, eps);
    let mut rt_segments: Vec<(TimePoint, TimePoint)> = Vec::new();
    let mut chain_start = seed;
    for tp in &traj {
        if let Some(state) = rt.observe(*tp) {
            let endpoint = TimePoint::new(state.fsa.centroid(), state.te);
            rt_segments.push((chain_start, endpoint));
            chain_start = endpoint;
            let _ = rt.receive_endpoint(endpoint);
        }
    }
    // Synchronized deviation of the chain against the measured stream.
    let mut all_points = vec![seed];
    all_points.extend(traj.iter().copied());
    let deviation_of = |segments: &[(TimePoint, TimePoint)], synchronized: bool| -> f64 {
        let mut worst = 0.0f64;
        for p in &all_points {
            for (a, b) in segments {
                if a.t <= p.t && p.t <= b.t {
                    let seg = Segment::new(a.p, b.p);
                    let d = if synchronized && b.t > a.t {
                        let lambda = p.t.fraction_of(a.t, b.t);
                        seg.point_at(lambda).dist_linf(&p.p)
                    } else {
                        seg.dist_linf_point(&p.p)
                    };
                    worst = worst.max(d);
                }
            }
        }
        worst
    };
    let rt_dev = deviation_of(&rt_segments, true);

    let run_ow = |policy| -> (usize, f64) {
        let mut ow = OpeningWindow::new(seed, eps, policy, Metric::LInf);
        let mut segs: Vec<(TimePoint, TimePoint)> = Vec::new();
        for tp in &traj {
            for e in ow.push(*tp) {
                segs.push((e.from, e.to));
            }
        }
        if let Some(e) = ow.finish() {
            segs.push((e.from, e.to));
        }
        let dev = deviation_of(&segs, false);
        (segs.len(), dev)
    };
    let (nopw_segments, nopw_deviation) = run_ow(EndpointPolicy::Nopw);
    let (bopw_segments, bopw_deviation) = run_ow(EndpointPolicy::Bopw);

    CompressionRow {
        points,
        raytrace_segments: rt_segments.len(),
        raytrace_deviation: rt_dev,
        nopw_segments,
        nopw_deviation,
        bopw_segments,
        bopw_deviation,
    }
}

/// One row of the `(eps, delta)` uncertainty sweep: sensor noise vs
/// filter behavior (Section 4.1 end-to-end).
#[derive(Clone, Copy, Debug)]
pub struct UncertaintyRow {
    /// Sensor standard deviation, meters.
    pub sigma: f64,
    /// Solved tolerance half-width (per axis, at delta/2), if solvable.
    pub half_width: Option<f64>,
    /// Reports per mover over the horizon.
    pub reports_per_mover: f64,
    /// Measurements dropped as unsolvable.
    pub dropped: u64,
}

/// Sweeps sensor noise through the uncertain RayTrace pipeline on a
/// straight-road workload (isolates the tolerance-shrink effect).
pub fn uncertainty_sweep(sigmas: &[f64], eps: f64, delta: f64, seed: u64) -> Vec<UncertaintyRow> {
    use hotpath_core::geometry::{Point, TimePoint};
    use hotpath_core::raytrace::UncertainRayTraceFilter;
    use hotpath_core::time::Timestamp;
    use hotpath_core::uncertainty::{half_width_exact, FallbackPolicy, ToleranceTable2D};
    use hotpath_core::ObjectId;
    use hotpath_netsim::mobility::GaussianNoise;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    sigmas
        .iter()
        .map(|&sigma| {
            let table = ToleranceTable2D::build(eps, delta, eps, 256, FallbackPolicy::Reject);
            let mut rng = SmallRng::seed_from_u64(seed);
            let noise = GaussianNoise::new(sigma);
            let movers = 50usize;
            let horizon = 300u64;
            let mut reports = 0u64;
            let mut dropped = 0u64;
            for m in 0..movers {
                let mut filter = UncertainRayTraceFilter::new(
                    ObjectId(m as u64),
                    TimePoint::new(Point::new(0.0, m as f64 * 1000.0), Timestamp(0)),
                    table.clone(),
                );
                for t in 1..=horizon {
                    let truth = Point::new(
                        8.0 * t as f64,
                        m as f64 * 1000.0 + (t as f64 * 0.1).sin() * 2.0,
                    );
                    let g = noise.measure(truth, &mut rng);
                    if let Some(state) = filter.observe_gaussian(g, Timestamp(t)) {
                        reports += 1;
                        let _ =
                            filter.receive_endpoint(TimePoint::new(state.fsa.centroid(), state.te));
                    }
                }
                dropped += filter.stats().dropped;
            }
            UncertaintyRow {
                sigma,
                half_width: half_width_exact(eps, delta / 2.0, sigma),
                reports_per_mover: reports as f64 / movers as f64,
                dropped,
            }
        })
        .collect()
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn filter_economy_orders_the_three_protocols() {
        let mut p = SimulationParams::quick(100, 31);
        p.agility = 0.3;
        let e = filter_economy(p);
        assert!(e.measurements > 0);
        // Naive uploads every movement; both filters improve on it.
        assert!(e.naive_msgs > e.dead_reckoning_msgs, "{e:?}");
        assert!(e.naive_msgs > e.raytrace_msgs, "{e:?}");
        assert!(e.dead_reckoning_msgs > 0);
        assert!(e.raytrace_msgs > 0);
        assert_eq!(e.raytrace_bytes, e.raytrace_msgs * 72);
    }

    #[test]
    fn compression_respects_tolerance() {
        let row = compression_quality(200, 5.0);
        // Spatial deviations honor eps for the DP variants.
        assert!(row.nopw_deviation <= 5.0 + 1e-6, "{row:?}");
        assert!(row.bopw_deviation <= 5.0 + 1e-6, "{row:?}");
        // RayTrace guarantees synchronized deviation within eps.
        assert!(row.raytrace_deviation <= 5.0 + 1e-6, "{row:?}");
        // Everyone splits at least once on the hard turn.
        assert!(row.raytrace_segments >= 1);
        assert!(row.nopw_segments >= 1);
        assert!(row.bopw_segments >= 1);
    }

    #[test]
    fn compression_tighter_eps_means_more_segments() {
        let tight = compression_quality(300, 2.0);
        let loose = compression_quality(300, 15.0);
        assert!(tight.raytrace_segments >= loose.raytrace_segments, "{tight:?} vs {loose:?}");
        assert!(tight.nopw_segments >= loose.nopw_segments);
    }

    #[test]
    fn uncertainty_sweep_monotone_in_sigma() {
        let rows = uncertainty_sweep(&[0.5, 2.0, 4.0], 10.0, 0.05, 77);
        assert_eq!(rows.len(), 3);
        // Half-widths shrink with noise.
        let w: Vec<f64> = rows.iter().map(|r| r.half_width.unwrap_or(0.0)).collect();
        assert!(w[0] > w[1] && w[1] > w[2], "{w:?}");
        // Noisier sensors report at least as often.
        assert!(rows[2].reports_per_mover >= rows[0].reports_per_mover, "{rows:?}");
    }
}
