//! The classic (offline) Douglas-Peucker line simplification \[8\].
//!
//! Multiple passes over the data make it unusable on-line (Section 2),
//! but it is the gold standard the opening-window variants approximate,
//! so we implement it for validation and comparison.

use hotpath_core::geometry::{Point, Segment};

/// Distance metric used for the tolerance test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Euclidean point-to-segment distance (the classic choice).
    L2,
    /// Max-distance point-to-segment distance (consistent with the hot
    /// motion path tolerance).
    LInf,
}

impl Metric {
    /// Distance from `p` to the segment under this metric.
    pub fn dist(self, seg: &Segment, p: &Point) -> f64 {
        match self {
            Metric::L2 => seg.dist_l2_point(p),
            Metric::LInf => seg.dist_linf_point(p),
        }
    }
}

/// Simplifies `points` within tolerance `eps`, returning the indices of
/// the retained vertices (always including the first and last).
///
/// Runs the standard recursion: find the farthest point from the chord;
/// if it exceeds `eps`, split there and recurse.
pub fn simplify(points: &[Point], eps: f64, metric: Metric) -> Vec<usize> {
    assert!(eps >= 0.0, "eps must be non-negative");
    if points.len() <= 2 {
        return (0..points.len()).collect();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    // Explicit stack instead of recursion (long trajectories).
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let chord = Segment::new(points[lo], points[hi]);
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = metric.dist(&chord, p);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > eps {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect()
}

/// Maximum deviation of the original points from the simplified
/// polyline: the guarantee DP provides is that this never exceeds `eps`.
pub fn max_deviation(points: &[Point], kept: &[usize], metric: Metric) -> f64 {
    let mut worst = 0.0f64;
    for w in kept.windows(2) {
        let chord = Segment::new(points[w[0]], points[w[1]]);
        for p in &points[w[0]..=w[1]] {
            worst = worst.max(metric.dist(&chord, p));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn straight_line_keeps_only_endpoints() {
        let pts: Vec<Point> = (0..50).map(|i| p(i as f64, 0.0)).collect();
        let kept = simplify(&pts, 0.5, Metric::L2);
        assert_eq!(kept, vec![0, 49]);
    }

    #[test]
    fn sharp_corner_is_retained() {
        let mut pts: Vec<Point> = (0..=10).map(|i| p(i as f64, 0.0)).collect();
        pts.extend((1..=10).map(|i| p(10.0, i as f64)));
        let kept = simplify(&pts, 0.5, Metric::L2);
        assert!(kept.contains(&10), "corner vertex dropped: {kept:?}");
        assert_eq!(kept.first(), Some(&0));
        assert_eq!(kept.last(), Some(&20));
    }

    #[test]
    fn deviation_bound_holds() {
        // A wavy path.
        let pts: Vec<Point> = (0..200).map(|i| p(i as f64, (i as f64 * 0.3).sin() * 5.0)).collect();
        for eps in [0.5, 1.0, 2.0, 5.0] {
            for metric in [Metric::L2, Metric::LInf] {
                let kept = simplify(&pts, eps, metric);
                let dev = max_deviation(&pts, &kept, metric);
                assert!(dev <= eps + 1e-9, "eps={eps}: deviation {dev}");
            }
        }
    }

    #[test]
    fn larger_eps_keeps_fewer_points() {
        let pts: Vec<Point> =
            (0..300).map(|i| p(i as f64, (i as f64 * 0.2).sin() * 10.0)).collect();
        let fine = simplify(&pts, 0.5, Metric::L2).len();
        let coarse = simplify(&pts, 5.0, Metric::L2).len();
        assert!(coarse < fine, "coarse {coarse} !< fine {fine}");
        assert!(coarse >= 2);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(simplify(&[], 1.0, Metric::L2), Vec::<usize>::new());
        assert_eq!(simplify(&[p(0.0, 0.0)], 1.0, Metric::L2), vec![0]);
        assert_eq!(simplify(&[p(0.0, 0.0), p(1.0, 1.0)], 1.0, Metric::L2), vec![0, 1]);
    }

    #[test]
    fn linf_metric_differs_from_l2_where_expected() {
        // Distance from (5,5) to segment (0,0)-(10,0): L2 = 5, L-inf = 5
        // (vertical drop dominates either way)...
        let seg = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(Metric::L2.dist(&seg, &p(5.0, 5.0)), 5.0);
        assert_eq!(Metric::LInf.dist(&seg, &p(5.0, 5.0)), 5.0);
        // ...but past the endpoint they diverge: point (13, 4).
        let l2 = Metric::L2.dist(&seg, &p(13.0, 4.0));
        let linf = Metric::LInf.dist(&seg, &p(13.0, 4.0));
        assert!((l2 - 5.0).abs() < 1e-12);
        assert!((linf - 4.0).abs() < 1e-12, "linf {linf}");
    }
}
