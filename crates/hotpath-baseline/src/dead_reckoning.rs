//! Dead-reckoning location updates: the classic client-side filter used
//! by moving-object databases (cf. the adaptive-filter literature the
//! paper cites in Section 2).
//!
//! The client shares a linear motion model (anchor + velocity) with the
//! server and stays silent while its true position agrees with the
//! model within `eps`; a violation uploads a fresh anchor/velocity.
//! Unlike RayTrace it maintains no safe area and yields no motion-path
//! guarantee — it is a *communication* baseline: how much of RayTrace's
//! suppression comes from mere linear prediction, and what the
//! covering-set machinery costs on top.

use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

/// A dead-reckoning update message: new anchor and velocity.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DrUpdate {
    /// Reporting object.
    pub object: ObjectId,
    /// New anchor timepoint.
    pub anchor: TimePoint,
    /// New velocity estimate, meters per granule.
    pub velocity: Point,
}

impl DrUpdate {
    /// Wire size: anchor point + timestamp + velocity + object id.
    pub const WIRE_BYTES: usize = 16 + 8 + 16 + 8;
}

/// Per-filter accounting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DrStats {
    /// Measurements fed to the filter.
    pub observed: u64,
    /// Measurements suppressed by the model.
    pub suppressed: u64,
    /// Updates sent.
    pub updates: u64,
}

/// The client-side dead-reckoning filter.
#[derive(Clone, Debug)]
pub struct DeadReckoningFilter {
    object: ObjectId,
    eps: f64,
    anchor: TimePoint,
    velocity: Point,
    stats: DrStats,
}

impl DeadReckoningFilter {
    /// Creates a filter anchored at the object's first known position
    /// with zero initial velocity.
    pub fn new(object: ObjectId, seed: TimePoint, eps: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        DeadReckoningFilter {
            object,
            eps,
            anchor: seed,
            velocity: Point::ORIGIN,
            stats: DrStats::default(),
        }
    }

    /// The position the server currently predicts for time `t`.
    pub fn predicted(&self, t: Timestamp) -> Point {
        let dt = t.since(self.anchor.t) as f64;
        self.anchor.p + self.velocity * dt
    }

    /// Feeds a measurement; returns an update when the prediction
    /// deviates by more than `eps` (max-distance).
    pub fn observe(&mut self, tp: TimePoint) -> Option<DrUpdate> {
        self.stats.observed += 1;
        let predicted = self.predicted(tp.t);
        if predicted.dist_linf(&tp.p) <= self.eps {
            self.stats.suppressed += 1;
            return None;
        }
        // Re-anchor: velocity from the previous anchor to here.
        let dt = tp.t.since(self.anchor.t).max(1) as f64;
        self.velocity = (tp.p - self.anchor.p) / dt;
        self.anchor = tp;
        self.stats.updates += 1;
        Some(DrUpdate { object: self.object, anchor: tp, velocity: self.velocity })
    }

    /// Accounting.
    pub fn stats(&self) -> DrStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn constant_velocity_sends_one_update() {
        let mut f = DeadReckoningFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
        let mut updates = 0;
        for t in 1..=100u64 {
            if f.observe(tp(5.0 * t as f64, 0.0, t)).is_some() {
                updates += 1;
            }
        }
        // First point violates the zero-velocity prior; afterwards the
        // learned velocity predicts perfectly.
        assert_eq!(updates, 1);
        assert_eq!(f.stats().suppressed, 99);
    }

    #[test]
    fn stationary_object_is_silent() {
        let mut f = DeadReckoningFilter::new(ObjectId(0), tp(3.0, 4.0, 0), 1.0);
        for t in 1..=50u64 {
            assert!(f.observe(tp(3.0, 4.0, t)).is_none());
        }
        assert_eq!(f.stats().updates, 0);
    }

    #[test]
    fn noise_within_eps_is_suppressed() {
        let mut f = DeadReckoningFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 2.0);
        let _ = f.observe(tp(5.0, 0.0, 1)); // learn velocity (5, 0)
        for t in 2..=50u64 {
            let wiggle = if t % 2 == 0 { 1.5 } else { -1.5 };
            assert!(
                f.observe(tp(5.0 * t as f64, wiggle, t)).is_none(),
                "wiggle within eps reported at t={t}"
            );
        }
    }

    #[test]
    fn turn_triggers_reanchor_with_new_velocity() {
        let mut f = DeadReckoningFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 1.0);
        let _ = f.observe(tp(10.0, 0.0, 1));
        for t in 2..=10u64 {
            let _ = f.observe(tp(10.0 * t as f64, 0.0, t));
        }
        // 90-degree turn: prediction fails, update carries the new
        // velocity estimate.
        let update = f.observe(tp(100.0, 10.0, 11)).expect("turn must update");
        assert!(update.velocity.y > 0.0);
        assert_eq!(update.anchor.p, Point::new(100.0, 10.0));
        // Post-turn prediction follows the new heading.
        let p = f.predicted(Timestamp(12));
        assert!(p.y > 10.0);
    }

    #[test]
    fn prediction_is_linear_in_time() {
        let mut f = DeadReckoningFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 1.0);
        let _ = f.observe(tp(4.0, 2.0, 2)); // velocity (2, 1)
        assert_eq!(f.predicted(Timestamp(3)), Point::new(6.0, 3.0));
        assert_eq!(f.predicted(Timestamp(10)), Point::new(20.0, 10.0));
    }
}
