//! # hotpath-baseline
//!
//! The Douglas-Peucker competitor family of the EDBT 2008 evaluation:
//!
//! * [`douglas_peucker`] — the classic offline algorithm \[8\], for
//!   validation;
//! * [`opening_window`] — the on-line DP-nopw / DP-bopw variants of
//!   Meratnia & de By \[20\];
//! * [`hot_segments`] — the paper's relaxed "DP" method (Section 6):
//!   time-agnostic segments with eps-expanded-MBB reuse and
//!   sliding-window hotness, the benchmark SinglePath is compared
//!   against in Figures 7 and 8;
//! * [`dead_reckoning`] — the classic linear-prediction location-update
//!   filter, a communication baseline for RayTrace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dead_reckoning;
pub mod douglas_peucker;
pub mod hot_segments;
pub mod opening_window;

pub use dead_reckoning::{DeadReckoningFilter, DrStats, DrUpdate};
pub use douglas_peucker::Metric;
pub use hot_segments::{DpHotSegments, HotSegment};
pub use opening_window::{EmittedSegment, EndpointPolicy, OpeningWindow};
