//! On-line opening-window Douglas-Peucker (Meratnia & de By \[20\]).
//!
//! Instead of multiple passes, the opening-window scheme fixes an anchor
//! and pushes a *floating endpoint* as far forward as possible: each new
//! point forms a candidate segment anchor→float, and all intermediate
//! points must lie within tolerance of it. On violation the segment's
//! endpoint is fixed by one of two policies (Section 2 of the hot-path
//! paper):
//!
//! * **DP-nopw** (conservative): the violating location — the one with
//!   the greatest distance from the examined segment;
//! * **DP-bopw** (eager): the location just before the floating
//!   endpoint.
//!
//! The fixed endpoint becomes the next anchor, chaining the synopsis.

use crate::douglas_peucker::Metric;
use hotpath_core::geometry::{Segment, TimePoint};

/// Endpoint-fixing policy on violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EndpointPolicy {
    /// Conservative: split at the point with the greatest distance.
    Nopw,
    /// Eager: split just before the floating endpoint.
    Bopw,
}

/// One emitted synopsis segment with its time extent.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EmittedSegment {
    /// Anchor (start) timepoint.
    pub from: TimePoint,
    /// Fixed endpoint timepoint.
    pub to: TimePoint,
}

impl EmittedSegment {
    /// The spatial segment.
    pub fn segment(&self) -> Segment {
        Segment::new(self.from.p, self.to.p)
    }
}

/// The streaming opening-window simplifier for one object.
#[derive(Clone, Debug)]
pub struct OpeningWindow {
    eps: f64,
    policy: EndpointPolicy,
    metric: Metric,
    anchor: TimePoint,
    /// Points strictly after the anchor, in time order; the last one is
    /// the current floating endpoint.
    window: Vec<TimePoint>,
    /// Total points examined in violation checks (the cost the paper
    /// calls "very costly").
    checks: u64,
}

impl OpeningWindow {
    /// Creates a simplifier anchored at the object's first timepoint.
    pub fn new(anchor: TimePoint, eps: f64, policy: EndpointPolicy, metric: Metric) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        OpeningWindow { eps, policy, metric, anchor, window: Vec::new(), checks: 0 }
    }

    /// The current anchor.
    pub fn anchor(&self) -> TimePoint {
        self.anchor
    }

    /// Number of points buffered after the anchor.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Total distance evaluations performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Feeds the next timepoint; returns the segments fixed by this
    /// arrival (usually none, occasionally one or more).
    pub fn push(&mut self, tp: TimePoint) -> Vec<EmittedSegment> {
        debug_assert!(
            self.window.last().map(|l| l.t < tp.t).unwrap_or(self.anchor.t < tp.t),
            "timepoints must arrive in time order"
        );
        self.window.push(tp);
        let mut emitted = Vec::new();
        // A violation split may itself induce another violation in the
        // remaining window; loop until the window is consistent.
        loop {
            match self.find_violation() {
                None => break,
                Some(worst_idx) => {
                    let split_idx = match self.policy {
                        EndpointPolicy::Nopw => worst_idx,
                        // "the location with the greatest possible
                        // timestamp, which is the one just before the
                        // floating endpoint"
                        EndpointPolicy::Bopw => self.window.len() - 2,
                    };
                    let endpoint = self.window[split_idx];
                    emitted.push(EmittedSegment { from: self.anchor, to: endpoint });
                    // Re-anchor: endpoint becomes the next anchor; the
                    // points after it stay in the window.
                    self.anchor = endpoint;
                    self.window.drain(..=split_idx);
                }
            }
        }
        emitted
    }

    /// Flushes the open segment (end of stream); returns it when the
    /// window is non-empty.
    pub fn finish(mut self) -> Option<EmittedSegment> {
        self.window.pop().map(|float| EmittedSegment { from: self.anchor, to: float })
    }

    /// Checks all intermediate points against anchor→float; returns the
    /// index (in `window`) of the most distant violating point.
    fn find_violation(&mut self) -> Option<usize> {
        if self.window.len() < 2 {
            return None; // no intermediates yet
        }
        let float = *self.window.last().expect("non-empty window");
        let candidate = Segment::new(self.anchor.p, float.p);
        let mut worst: Option<(usize, f64)> = None;
        for (i, tp) in self.window[..self.window.len() - 1].iter().enumerate() {
            self.checks += 1;
            let d = self.metric.dist(&candidate, &tp.p);
            if d > self.eps && worst.map(|(_, wd)| d > wd).unwrap_or(true) {
                worst = Some((i, d));
            }
        }
        worst.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::geometry::Point;
    use hotpath_core::time::Timestamp;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    fn feed(ow: &mut OpeningWindow, pts: &[TimePoint]) -> Vec<EmittedSegment> {
        pts.iter().flat_map(|&p| ow.push(p)).collect()
    }

    #[test]
    fn straight_motion_emits_nothing() {
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), 1.0, EndpointPolicy::Nopw, Metric::LInf);
        let pts: Vec<TimePoint> = (1..=100).map(|t| tp(t as f64, 0.0, t)).collect();
        assert!(feed(&mut ow, &pts).is_empty());
        // finish() closes the one long segment.
        let last = ow.finish().unwrap();
        assert_eq!(last.from.p, Point::new(0.0, 0.0));
        assert_eq!(last.to.p, Point::new(100.0, 0.0));
    }

    #[test]
    fn right_angle_turn_splits_nopw_at_corner() {
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), 1.0, EndpointPolicy::Nopw, Metric::LInf);
        let mut pts: Vec<TimePoint> = (1..=10).map(|t| tp(t as f64, 0.0, t)).collect();
        pts.extend((1..=10).map(|i| tp(10.0, i as f64, 10 + i)));
        let emitted = feed(&mut ow, &pts);
        assert!(!emitted.is_empty());
        // The first split's endpoint is the corner itself: the farthest
        // point from the diagonal candidate chord is (10, 0).
        assert_eq!(emitted[0].to.p, Point::new(10.0, 0.0));
        assert_eq!(emitted[0].from.p, Point::new(0.0, 0.0));
    }

    #[test]
    fn bopw_splits_just_before_float() {
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), 1.0, EndpointPolicy::Bopw, Metric::LInf);
        let mut pts: Vec<TimePoint> = (1..=10).map(|t| tp(t as f64, 0.0, t)).collect();
        pts.extend((1..=10).map(|i| tp(10.0, i as f64, 10 + i)));
        let emitted = feed(&mut ow, &pts);
        assert!(!emitted.is_empty());
        // The violation is detected at some float; bopw fixes the point
        // right before it, which lies on the first leg or the corner.
        let first = emitted[0];
        assert!(first.to.t > first.from.t);
        assert_eq!(first.from.p, Point::new(0.0, 0.0));
    }

    #[test]
    fn segments_chain_contiguously() {
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), 0.8, EndpointPolicy::Nopw, Metric::LInf);
        // A zigzag that forces several splits.
        let pts: Vec<TimePoint> = (1..=60)
            .map(|t| tp(t as f64 * 3.0, if (t / 5) % 2 == 0 { 0.0 } else { 6.0 }, t))
            .collect();
        let emitted = feed(&mut ow, &pts);
        assert!(emitted.len() >= 2, "zigzag must split: {}", emitted.len());
        for pair in emitted.windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "synopsis must chain");
        }
    }

    #[test]
    fn synopsis_respects_tolerance_nopw() {
        // Every original point must be within eps of its covering
        // synopsis segment (spatially).
        let eps = 1.0;
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), eps, EndpointPolicy::Nopw, Metric::LInf);
        let pts: Vec<TimePoint> =
            (1..=200).map(|t| tp(t as f64, (t as f64 * 0.25).sin() * 2.5, t)).collect();
        let mut segments = feed(&mut ow, &pts);
        if let Some(last) = ow.finish() {
            segments.push(last);
        }
        let all: Vec<TimePoint> = std::iter::once(tp(0.0, 0.0, 0)).chain(pts).collect();
        for p in &all {
            let covering: Vec<&EmittedSegment> =
                segments.iter().filter(|s| s.from.t <= p.t && p.t <= s.to.t).collect();
            assert!(!covering.is_empty(), "point at {:?} uncovered", p.t);
            for s in covering {
                let d = Metric::LInf.dist(&s.segment(), &p.p);
                assert!(d <= eps + 1e-9, "point {:?} deviates {d}", p.t);
            }
        }
    }

    #[test]
    fn violation_checks_grow_with_window() {
        let mut ow = OpeningWindow::new(tp(0.0, 0.0, 0), 5.0, EndpointPolicy::Nopw, Metric::LInf);
        let pts: Vec<TimePoint> = (1..=100).map(|t| tp(t as f64, 0.0, t)).collect();
        feed(&mut ow, &pts);
        // Quadratic-ish cost: n(n-1)/2 checks minus the first point.
        assert!(ow.checks() > 4000, "checks {}", ow.checks());
    }

    #[test]
    fn finish_on_empty_window_is_none() {
        let ow = OpeningWindow::new(tp(0.0, 0.0, 0), 1.0, EndpointPolicy::Nopw, Metric::LInf);
        assert!(ow.finish().is_none());
    }
}
