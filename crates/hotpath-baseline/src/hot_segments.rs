//! The paper's "DP" competitor (Section 6, "The DP Method").
//!
//! Windowed Douglas-Peucker synopses per object, relaxed for hot-segment
//! discovery: time is ignored and a candidate segment is *not* stored
//! when an already-stored segment falls completely within the
//! candidate's eps-expanded MBB — instead that segment's hotness is
//! incremented. Stored segments are disconnected (no covering-set
//! requirement), which is why the paper treats DP's hotness as an upper
//! bound rather than proper motion paths.

use crate::douglas_peucker::Metric;
use crate::opening_window::{EndpointPolicy, OpeningWindow};
use hotpath_core::fxhash::FxHashMap;
use hotpath_core::geometry::{Rect, Segment, TimePoint};
use hotpath_core::hotness::Hotness;
use hotpath_core::motion_path::PathId;
use hotpath_core::time::{SlidingWindow, Timestamp};
use hotpath_core::ObjectId;

/// A stored hot segment.
#[derive(Clone, Copy, Debug)]
pub struct HotSegment {
    /// Identifier (shared id-space with the hotness table).
    pub id: PathId,
    /// Geometry.
    pub seg: Segment,
    /// Current hotness.
    pub hotness: u32,
    /// `hotness x length` (same score metric as SinglePath).
    pub score: f64,
}

/// The DP hot-segment pipeline: per-object opening windows feeding a
/// shared segment store with MBB-reuse and sliding-window hotness.
pub struct DpHotSegments {
    eps: f64,
    policy: EndpointPolicy,
    metric: Metric,
    windows: FxHashMap<ObjectId, OpeningWindow>,
    segments: FxHashMap<PathId, Segment>,
    /// Uniform grid over segment MBBs for the reuse query.
    grid: FxHashMap<(i64, i64), Vec<PathId>>,
    cell: f64,
    hotness: Hotness,
    next_id: u64,
    /// Range queries issued (one per discovered segment, as the paper
    /// notes when explaining why DP runs fast).
    range_queries: u64,
}

impl DpHotSegments {
    /// Creates the pipeline. `window` is the same sliding window the
    /// SinglePath coordinator uses, for a fair comparison.
    pub fn new(eps: f64, policy: EndpointPolicy, window: SlidingWindow) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        DpHotSegments {
            eps,
            policy,
            metric: Metric::LInf,
            windows: FxHashMap::default(),
            segments: FxHashMap::default(),
            grid: FxHashMap::default(),
            cell: (4.0 * eps).max(50.0),
            hotness: Hotness::new(window),
            next_id: 0,
            range_queries: 0,
        }
    }

    /// Number of stored segments (the paper's DP *index size*).
    pub fn index_size(&self) -> usize {
        self.segments.len()
    }

    /// Range queries issued so far.
    pub fn range_queries(&self) -> u64 {
        self.range_queries
    }

    /// Feeds one measurement of `obj`; runs its opening window and
    /// absorbs any fixed segments into the store.
    pub fn observe(&mut self, obj: ObjectId, tp: TimePoint) {
        let emitted = match self.windows.get_mut(&obj) {
            None => {
                let ow = OpeningWindow::new(tp, self.eps, self.policy, self.metric);
                self.windows.insert(obj, ow);
                Vec::new()
            }
            Some(ow) => ow.push(tp),
        };
        for e in emitted {
            self.insert_or_bump(e.segment(), e.to.t);
        }
    }

    /// Expires old crossings and drops dead segments.
    pub fn advance_time(&mut self, now: Timestamp) {
        for dead in self.hotness.advance(now) {
            if let Some(seg) = self.segments.remove(&dead) {
                self.remove_from_grid(dead, &seg);
            }
        }
    }

    /// The paper's reuse rule: if a stored segment lies completely
    /// within the candidate's eps-expanded MBB, bump it; otherwise store
    /// the candidate with hotness 1.
    pub fn insert_or_bump(&mut self, candidate: Segment, te: Timestamp) -> PathId {
        let probe = candidate.mbb().expand(self.eps);
        self.range_queries += 1;
        // Hottest matching segment wins; ties to the lower id.
        let mut best: Option<(u32, PathId)> = None;
        self.for_each_in_grid(&probe, |id, seg| {
            if probe.contains(&seg.a) && probe.contains(&seg.b) {
                let h = self.hotness.get(id);
                if best
                    .map(|(bh, bid)| (h, std::cmp::Reverse(id)) > (bh, std::cmp::Reverse(bid)))
                    .unwrap_or(true)
                {
                    best = Some((h, id));
                }
            }
        });
        match best {
            Some((_, id)) => {
                let length = self.segments[&id].length();
                self.hotness.record_crossing(id, te, length);
                id
            }
            None => {
                let id = PathId(self.next_id);
                self.next_id += 1;
                self.segments.insert(id, candidate);
                self.add_to_grid(id, &candidate);
                self.hotness.record_crossing(id, te, candidate.length());
                id
            }
        }
    }

    /// All stored segments with positive hotness.
    pub fn hot_segments(&self) -> Vec<HotSegment> {
        self.hotness
            .iter()
            .filter_map(|(id, h)| {
                self.segments.get(&id).map(|&seg| HotSegment {
                    id,
                    seg,
                    hotness: h,
                    score: h as f64 * seg.length(),
                })
            })
            .collect()
    }

    /// Top-`n` hottest segments (ties: longer, then lower id).
    pub fn top_n(&self, n: usize) -> Vec<HotSegment> {
        let mut all = self.hot_segments();
        all.sort_by(|a, b| {
            b.hotness
                .cmp(&a.hotness)
                .then_with(|| b.seg.length().total_cmp(&a.seg.length()))
                .then_with(|| a.id.cmp(&b.id))
        });
        all.truncate(n);
        all
    }

    /// Average score of the top-`n` set (the Figure 7b/8b metric).
    pub fn top_n_score(&self, n: usize) -> f64 {
        let top = self.top_n(n);
        if top.is_empty() {
            return 0.0;
        }
        top.iter().map(|h| h.score).sum::<f64>() / top.len() as f64
    }

    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        ((x / self.cell).floor() as i64, (y / self.cell).floor() as i64)
    }

    fn cells_of(&self, r: &Rect) -> impl Iterator<Item = (i64, i64)> {
        let lo = self.cell_of(r.lo().x, r.lo().y);
        let hi = self.cell_of(r.hi().x, r.hi().y);
        (lo.0..=hi.0).flat_map(move |cx| (lo.1..=hi.1).map(move |cy| (cx, cy)))
    }

    fn add_to_grid(&mut self, id: PathId, seg: &Segment) {
        let mbb = seg.mbb();
        let cells: Vec<(i64, i64)> = self.cells_of(&mbb).collect();
        for c in cells {
            self.grid.entry(c).or_default().push(id);
        }
    }

    fn remove_from_grid(&mut self, id: PathId, seg: &Segment) {
        let mbb = seg.mbb();
        let cells: Vec<(i64, i64)> = self.cells_of(&mbb).collect();
        for c in cells {
            if let Some(v) = self.grid.get_mut(&c) {
                v.retain(|&x| x != id);
                if v.is_empty() {
                    self.grid.remove(&c);
                }
            }
        }
    }

    fn for_each_in_grid(&self, range: &Rect, mut f: impl FnMut(PathId, &Segment)) {
        let mut seen: Vec<PathId> = Vec::new();
        for c in self.cells_of(range) {
            let Some(ids) = self.grid.get(&c) else { continue };
            for &id in ids {
                if seen.contains(&id) {
                    continue;
                }
                seen.push(id);
                if let Some(seg) = self.segments.get(&id) {
                    f(id, seg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::geometry::Point;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn dp() -> DpHotSegments {
        DpHotSegments::new(2.0, EndpointPolicy::Nopw, SlidingWindow::new(100))
    }

    #[test]
    fn first_segment_is_stored_with_hotness_one() {
        let mut d = dp();
        let id = d.insert_or_bump(seg(0.0, 0.0, 50.0, 0.0), Timestamp(10));
        assert_eq!(d.index_size(), 1);
        let hot = d.hot_segments();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].id, id);
        assert_eq!(hot[0].hotness, 1);
    }

    #[test]
    fn near_duplicate_bumps_instead_of_storing() {
        let mut d = dp();
        let a = d.insert_or_bump(seg(0.0, 0.0, 50.0, 0.0), Timestamp(10));
        // A slightly longer parallel candidate whose expanded MBB
        // swallows the stored segment.
        let b = d.insert_or_bump(seg(-1.0, 1.0, 51.0, 1.0), Timestamp(11));
        assert_eq!(a, b);
        assert_eq!(d.index_size(), 1);
        assert_eq!(d.hot_segments()[0].hotness, 2);
    }

    #[test]
    fn contained_rule_is_directional() {
        let mut d = dp();
        // Store a long segment first; a *short* candidate's expanded MBB
        // does NOT contain it, so the short one is stored separately.
        d.insert_or_bump(seg(0.0, 0.0, 100.0, 0.0), Timestamp(10));
        d.insert_or_bump(seg(40.0, 0.0, 60.0, 0.0), Timestamp(11));
        assert_eq!(d.index_size(), 2);
    }

    #[test]
    fn disjoint_segments_accumulate() {
        let mut d = dp();
        d.insert_or_bump(seg(0.0, 0.0, 50.0, 0.0), Timestamp(10));
        d.insert_or_bump(seg(500.0, 500.0, 550.0, 500.0), Timestamp(10));
        assert_eq!(d.index_size(), 2);
    }

    #[test]
    fn hotness_expires_and_segment_is_dropped() {
        let mut d = dp();
        d.insert_or_bump(seg(0.0, 0.0, 50.0, 0.0), Timestamp(10));
        d.advance_time(Timestamp(109));
        assert_eq!(d.index_size(), 1);
        d.advance_time(Timestamp(110));
        assert_eq!(d.index_size(), 0);
        assert!(d.hot_segments().is_empty());
    }

    #[test]
    fn observe_runs_the_opening_window() {
        let mut d = dp();
        let obj = ObjectId(1);
        // Straight east, then a sharp turn north: one fixed segment.
        for t in 0..=10u64 {
            d.observe(obj, tp(10.0 * t as f64, 0.0, t));
        }
        assert_eq!(d.index_size(), 0, "no violation yet");
        for i in 1..=10u64 {
            d.observe(obj, tp(100.0, 10.0 * i as f64, 10 + i));
        }
        assert!(d.index_size() >= 1, "turn must fix a segment");
    }

    #[test]
    fn two_objects_on_same_road_share_a_segment() {
        let mut d = dp();
        // Both walk the same east leg then turn north at slightly
        // different offsets (within eps).
        for (oid, dy) in [(ObjectId(1), 0.0), (ObjectId(2), 0.5)] {
            for t in 0..=10u64 {
                d.observe(oid, tp(10.0 * t as f64, dy, t));
            }
            for i in 1..=10u64 {
                d.observe(oid, tp(100.0, dy + 10.0 * i as f64, 10 + i));
            }
        }
        // The second object's fixed segment reuses the first one's.
        let hot = d.hot_segments();
        assert!(hot.iter().any(|h| h.hotness >= 2), "no shared segment: {hot:?}");
    }

    #[test]
    fn top_n_score_matches_manual_computation() {
        let mut d = dp();
        let a = d.insert_or_bump(seg(0.0, 0.0, 100.0, 0.0), Timestamp(1));
        d.insert_or_bump(seg(0.0, 50.0, 10.0, 50.0), Timestamp(1));
        // Bump `a` twice more (identical geometry → contained in own MBB).
        d.insert_or_bump(seg(0.0, 0.0, 100.0, 0.0), Timestamp(2));
        d.insert_or_bump(seg(0.0, 0.0, 100.0, 0.0), Timestamp(3));
        let top = d.top_n(2);
        assert_eq!(top[0].id, a);
        assert_eq!(top[0].hotness, 3);
        // Scores: 3 * 100 = 300 and 1 * 10 = 10 → avg 155.
        assert!((d.top_n_score(2) - 155.0).abs() < 1e-9);
    }

    #[test]
    fn range_queries_counted_per_discovered_segment() {
        let mut d = dp();
        d.insert_or_bump(seg(0.0, 0.0, 10.0, 0.0), Timestamp(1));
        d.insert_or_bump(seg(0.0, 0.0, 10.0, 0.0), Timestamp(2));
        assert_eq!(d.range_queries(), 2);
    }
}
