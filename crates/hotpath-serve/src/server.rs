//! The in-process serving front door.
//!
//! [`Hotpathd::spawn`] takes ownership of an engine and moves it onto a
//! dedicated writer thread — the only thread that ever touches the
//! engine. Clients talk to it through a [`ServerHandle`]:
//!
//! - **Writes** ([`ServerHandle::submit`], [`ServerHandle::advance`])
//!   are enqueued on an mpsc channel and applied in program order by
//!   the writer thread. `advance` drives every granule up to the target
//!   clock and runs [`process_epoch`](hotpath_core::engine::Engine::process_epoch)
//!   at each epoch boundary it crosses, so no boundary is ever skipped
//!   however coarse the caller's ticks are.
//! - **Reads** go through a [`SnapshotCell`] the engine publishes into
//!   at its publish stage. A [`ServerHandle::reader`] handle reads the
//!   latest [`HotSnapshot`] lock-free: no mutex, no channel, no
//!   allocation, and never a stall for the epoch loop. Readers on the
//!   pipelined backend observe each epoch as the worker publishes it,
//!   overlapped with the next epoch's ingest.
//!
//! The handle is cheap to share behind an `Arc`; [`ServerHandle::shutdown`]
//! (or drop) stops the writer thread and returns the final snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use hotpath_core::coordinator::HotSnapshot;
use hotpath_core::engine::Engine;
use hotpath_core::raytrace::ClientState;
use hotpath_core::snapshot::{SnapshotCell, SnapshotHandle};
use hotpath_core::time::{EpochClock, Timestamp};

/// A command applied by the writer thread, in program order.
#[derive(Debug)]
pub enum ServerMsg {
    /// One state message for the next epoch.
    Submit(ClientState),
    /// A batch of state messages, equivalent to a `Submit` loop.
    SubmitBatch(Vec<ClientState>),
    /// Advance the server clock to `t`, running every epoch boundary
    /// crossed on the way.
    Advance(Timestamp),
    /// Stop the writer thread after draining prior messages.
    Shutdown,
}

/// Open-loop serving counters, updated by the writer thread and read
/// by anyone holding the handle.
#[derive(Debug, Default)]
pub struct ServerStats {
    submitted: AtomicU64,
    epochs: AtomicU64,
    responses: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStatsView {
    /// State messages accepted (single and batched).
    pub submitted: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Endpoint responses produced across all epochs.
    pub responses: u64,
}

impl ServerStats {
    /// A point-in-time copy of the counters.
    pub fn view(&self) -> ServerStatsView {
        ServerStatsView {
            submitted: self.submitted.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
        }
    }
}

/// The `hotpathd` server: constructor namespace for [`ServerHandle`].
#[derive(Debug)]
pub struct Hotpathd;

impl Hotpathd {
    /// Moves `engine` onto a dedicated writer thread and returns the
    /// client handle. The engine's current snapshot is published into
    /// the read cell immediately, so readers registered before the
    /// first epoch see the (empty) epoch-0 image rather than blocking.
    pub fn spawn(mut engine: Box<dyn Engine>) -> ServerHandle {
        let cell = SnapshotCell::new();
        let epochs = engine.config().epochs;
        engine.attach_cell(Arc::clone(&cell));
        let stats = Arc::new(ServerStats::default());
        let (tx, rx) = mpsc::channel();
        let writer = {
            let stats = Arc::clone(&stats);
            thread::spawn(move || writer_loop(engine, rx, epochs, &stats))
        };
        ServerHandle { tx, cell, stats, writer: Some(writer) }
    }
}

fn writer_loop(
    mut engine: Box<dyn Engine>,
    rx: mpsc::Receiver<ServerMsg>,
    epochs: EpochClock,
    stats: &ServerStats,
) {
    let mut clock = Timestamp::ZERO;
    while let Ok(msg) = rx.recv() {
        match msg {
            ServerMsg::Submit(state) => {
                engine.submit(state);
                stats.submitted.fetch_add(1, Ordering::Relaxed);
            }
            ServerMsg::SubmitBatch(batch) => {
                stats.submitted.fetch_add(batch.len() as u64, Ordering::Relaxed);
                engine.submit_batch(&mut batch.into_iter());
            }
            ServerMsg::Advance(t) => {
                // Drive every granule so coarse ticks still hit every
                // epoch boundary; stale ticks are ignored.
                for g in (clock.0 + 1)..=t.0 {
                    let now = Timestamp(g);
                    engine.advance_time(now);
                    if epochs.is_epoch(now) {
                        let responses = engine.process_epoch(now);
                        stats.epochs.fetch_add(1, Ordering::Relaxed);
                        stats.responses.fetch_add(responses.len() as u64, Ordering::Relaxed);
                    }
                }
                clock = clock.max(t);
            }
            ServerMsg::Shutdown => break,
        }
    }
    // Joins the pipelined worker (final publish included) before exit.
    let _ = engine.finish();
}

/// The client surface of a running `hotpathd`.
///
/// Cloneable via `Arc`; writes are serialized through the channel,
/// reads are lock-free through the cell. Dropping the handle shuts the
/// server down.
#[derive(Debug)]
pub struct ServerHandle {
    tx: mpsc::Sender<ServerMsg>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServerStats>,
    writer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Registers a lock-free reader over the published snapshot. Any
    /// number of readers may exist, on any thread; none of them can
    /// block the writer.
    pub fn reader(&self) -> SnapshotHandle {
        self.cell.register()
    }

    /// The snapshot cell itself — for transports that register their
    /// own per-connection readers.
    pub fn cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.cell)
    }

    /// A sender for raw [`ServerMsg`]s (the wire transport uses this).
    pub fn sender(&self) -> mpsc::Sender<ServerMsg> {
        self.tx.clone()
    }

    /// Enqueues one state message.
    pub fn submit(&self, state: ClientState) {
        let _ = self.tx.send(ServerMsg::Submit(state));
    }

    /// Enqueues a batch of state messages.
    pub fn submit_batch(&self, batch: Vec<ClientState>) {
        let _ = self.tx.send(ServerMsg::SubmitBatch(batch));
    }

    /// Advances the server clock, processing every epoch boundary up
    /// to and including `t`.
    pub fn advance(&self, t: Timestamp) {
        let _ = self.tx.send(ServerMsg::Advance(t));
    }

    /// A point-in-time copy of the serving counters. Open-loop: a
    /// just-enqueued write may not be counted yet.
    pub fn stats(&self) -> ServerStatsView {
        self.stats.view()
    }

    /// The shared counters themselves — survives [`ServerHandle::shutdown`],
    /// after which the counts are final.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stops the writer thread, waits for it to drain, and returns the
    /// final published snapshot.
    pub fn shutdown(mut self) -> Arc<HotSnapshot> {
        self.stop();
        self.cell.load()
    }

    fn stop(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = self.tx.send(ServerMsg::Shutdown);
            let _ = writer.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::engine::EngineKind;
    use hotpath_core::geometry::{Point, Rect};
    use hotpath_core::prelude::Config;
    use hotpath_core::ObjectId;

    fn cfg() -> Config {
        Config::paper_defaults().with_epoch(10).with_window(10_000)
    }

    fn state(obj: u64, start: (f64, f64), end: (f64, f64), te: u64) -> ClientState {
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(te.saturating_sub(8)),
            fsa: Rect::new(
                Point::new(end.0 - 2.0, end.1 - 2.0),
                Point::new(end.0 + 2.0, end.1 + 2.0),
            ),
            te: Timestamp(te),
        }
    }

    fn spawn(kind: EngineKind) -> ServerHandle {
        Hotpathd::spawn(kind.build(Coordinator::new(cfg())))
    }

    #[test]
    fn driven_server_processes_every_boundary_in_one_coarse_advance() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let handle = spawn(kind);
            for e in 1..=5u64 {
                handle.submit(state(e, (0.0, 0.0), (50.0, 0.0), e * 10 - 1));
            }
            // One coarse tick: the server must still run epochs 1..=5.
            handle.advance(Timestamp(50));
            let snap = handle.shutdown();
            assert_eq!(snap.epoch, 5, "{kind}");
            assert_eq!(snap.timestamp, Timestamp(50), "{kind}");
        }
    }

    #[test]
    fn readers_observe_epochs_without_calling_into_the_engine() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let handle = spawn(kind);
            let mut reader = handle.reader();
            assert_eq!(reader.epoch(), 0, "{kind}: epoch-0 image pre-published");

            handle.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
            handle.advance(Timestamp(10));
            // Open loop: wait for the publish to land in the cell.
            while reader.epoch() < 1 {
                thread::yield_now();
            }
            let snap = reader.load();
            assert_eq!(snap.epoch, 1, "{kind}");
            assert_eq!(snap.top_k.len(), 1, "{kind}");

            let stats = handle.stats();
            assert_eq!(stats.submitted, 1, "{kind}");
            assert_eq!(stats.epochs, 1, "{kind}");
            drop(handle);
        }
    }

    #[test]
    fn stale_and_duplicate_advances_are_ignored() {
        let handle = spawn(EngineKind::Sync);
        let stats = Arc::clone(&handle.stats);
        handle.advance(Timestamp(20));
        handle.advance(Timestamp(20));
        handle.advance(Timestamp(5));
        // Shutdown drains the queue and joins the writer, so the
        // counters are final when it returns.
        let snap = handle.shutdown();
        assert_eq!(snap.epoch, 2);
        assert_eq!(stats.view().epochs, 2, "re-advancing must not re-run boundaries");
    }

    /// The serving-layer hammer: readers spin on their handles while
    /// the writer publishes continuously. Every observed image must be
    /// epoch-consistent (all fields from the same publish) and epochs
    /// must be monotone per reader.
    #[test]
    fn hammered_readers_see_epoch_consistent_images_while_writer_publishes() {
        const EPOCHS: u64 = 120;
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let handle = spawn(kind);
            let stop = Arc::new(AtomicU64::new(0));
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let mut reader = handle.reader();
                    let stop = Arc::clone(&stop);
                    thread::spawn(move || {
                        let mut last = 0u64;
                        let mut reads = 0u64;
                        while stop.load(Ordering::Relaxed) == 0 {
                            let snap = reader.read();
                            let e = snap.epoch;
                            // One traversal per epoch: a torn image would
                            // break one of these cross-field identities.
                            assert_eq!(snap.timestamp, Timestamp(e * 10));
                            if e > 0 {
                                assert_eq!(snap.top_k.len(), 1);
                                assert_eq!(snap.top_k[0].hotness, e as u32);
                            }
                            assert!(e >= last, "epochs went backwards: {last} -> {e}");
                            last = e;
                            reads += 1;
                        }
                        reads
                    })
                })
                .collect();

            for e in 1..=EPOCHS {
                handle.submit(state(e, (0.0, 0.0), (50.0, 0.0), e * 10 - 1));
                handle.advance(Timestamp(e * 10));
            }
            let snap = handle.shutdown();
            stop.store(1, Ordering::Relaxed);
            let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
            assert_eq!(snap.epoch, EPOCHS, "{kind}");
            assert!(reads > 0, "{kind}: readers must have made progress");
        }
    }
}
