//! The out-of-process wire protocol and unix-socket transport.
//!
//! Frames are `u32` little-endian length prefixes followed by a 1-byte
//! opcode and a fixed-layout payload — no self-describing serialization,
//! every field at a known offset, every frame bounded. Three requests:
//!
//! | opcode | payload | reply |
//! |---|---|---|
//! | [`OP_QUERY`] | empty | [`OP_SNAPSHOT`] + [`SnapshotWire`] |
//! | [`OP_SUBMIT_BATCH`] | `n x 72`-byte [`ClientState`]s | [`OP_ACK`] + accepted count |
//! | [`OP_ADVANCE`] | `u64` timestamp | [`OP_ACK`] + `0` |
//!
//! The server side ([`serve_unix`]) registers one lock-free
//! [`SnapshotHandle`](hotpath_core::snapshot::SnapshotHandle) per
//! connection: queries never touch the engine, they read the cell the
//! writer thread publishes into. Submissions and advances are forwarded
//! onto the writer channel and acknowledged as accepted (open loop —
//! the ack means *enqueued*, not *processed*).

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use hotpath_core::coordinator::HotSnapshot;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::snapshot::SnapshotCell;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

use crate::server::{ServerHandle, ServerMsg};

/// Query the latest published snapshot.
pub const OP_QUERY: u8 = 0x01;
/// Submit a batch of client states.
pub const OP_SUBMIT_BATCH: u8 = 0x02;
/// Advance the server clock.
pub const OP_ADVANCE: u8 = 0x03;
/// Reply: request accepted; payload is the accepted count (`u32`).
pub const OP_ACK: u8 = 0x80;
/// Reply: an encoded [`SnapshotWire`].
pub const OP_SNAPSHOT: u8 = 0x81;

/// Wire size of one [`ClientState`] (matches `ClientState::WIRE_BYTES`).
pub const STATE_WIRE_BYTES: usize = 72;
/// Largest batch a single frame may carry.
pub const MAX_BATCH: usize = 4096;
/// Top-k entries a snapshot reply is truncated to.
pub const MAX_TOPK: usize = 64;
/// Upper bound on any frame body (opcode + payload).
pub const MAX_FRAME_BYTES: usize = 1 + MAX_BATCH * STATE_WIRE_BYTES;

/// One top-k entry as serialized: identity, geometry, and scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopEntryWire {
    /// Path id within the coordinator index.
    pub id: u64,
    /// Segment start `(x, y)` in meters.
    pub a: (f64, f64),
    /// Segment end `(x, y)` in meters.
    pub b: (f64, f64),
    /// Crossings within the window.
    pub hotness: u32,
    /// `hotness x length` score.
    pub score: f64,
}

const TOP_ENTRY_BYTES: usize = 8 + 4 * 8 + 4 + 8;

/// The bounded serialized form of a [`HotSnapshot`]: the scalar summary
/// plus at most [`MAX_TOPK`] top-k entries.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotWire {
    /// Epochs processed at publish time.
    pub epoch: u64,
    /// Publish-time clock value.
    pub timestamp: Timestamp,
    /// Top-k set score.
    pub top_k_score: f64,
    /// Paths with positive hotness.
    pub hot_count: u64,
    /// Paths stored in the index.
    pub index_size: u64,
    /// The hottest paths, hottest first, truncated to [`MAX_TOPK`].
    pub top: Vec<TopEntryWire>,
}

impl SnapshotWire {
    /// Projects a published snapshot onto the wire form.
    pub fn from_snapshot(snap: &HotSnapshot) -> SnapshotWire {
        SnapshotWire {
            epoch: snap.epoch,
            timestamp: snap.timestamp,
            top_k_score: snap.top_k_score,
            hot_count: snap.hot_count as u64,
            index_size: snap.index_size as u64,
            top: snap
                .top_k
                .iter()
                .take(MAX_TOPK)
                .map(|hp| TopEntryWire {
                    id: hp.path.id.0,
                    a: (hp.path.seg.a.x, hp.path.seg.a.y),
                    b: (hp.path.seg.b.x, hp.path.seg.b.y),
                    hotness: hp.hotness,
                    score: hp.score,
                })
                .collect(),
        }
    }

    /// Serializes to the fixed layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(44 + self.top.len() * TOP_ENTRY_BYTES);
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.timestamp.0.to_le_bytes());
        buf.extend_from_slice(&self.top_k_score.to_le_bytes());
        buf.extend_from_slice(&self.hot_count.to_le_bytes());
        buf.extend_from_slice(&self.index_size.to_le_bytes());
        buf.extend_from_slice(&(self.top.len() as u32).to_le_bytes());
        for e in &self.top {
            buf.extend_from_slice(&e.id.to_le_bytes());
            buf.extend_from_slice(&e.a.0.to_le_bytes());
            buf.extend_from_slice(&e.a.1.to_le_bytes());
            buf.extend_from_slice(&e.b.0.to_le_bytes());
            buf.extend_from_slice(&e.b.1.to_le_bytes());
            buf.extend_from_slice(&e.hotness.to_le_bytes());
            buf.extend_from_slice(&e.score.to_le_bytes());
        }
        buf
    }

    /// Parses the fixed layout back; rejects truncated or oversized
    /// payloads.
    pub fn decode(buf: &[u8]) -> io::Result<SnapshotWire> {
        let mut c = Cursor::new(buf);
        let epoch = c.u64()?;
        let timestamp = Timestamp(c.u64()?);
        let top_k_score = c.f64()?;
        let hot_count = c.u64()?;
        let index_size = c.u64()?;
        let n = c.u32()? as usize;
        if n > MAX_TOPK {
            return Err(invalid(format!("top-k length {n} exceeds {MAX_TOPK}")));
        }
        let mut top = Vec::with_capacity(n);
        for _ in 0..n {
            top.push(TopEntryWire {
                id: c.u64()?,
                a: (c.f64()?, c.f64()?),
                b: (c.f64()?, c.f64()?),
                hotness: c.u32()?,
                score: c.f64()?,
            });
        }
        c.done()?;
        Ok(SnapshotWire { epoch, timestamp, top_k_score, hot_count, index_size, top })
    }
}

/// Serializes one client state into its 72-byte wire layout.
pub fn encode_state(s: &ClientState, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&s.object.0.to_le_bytes());
    buf.extend_from_slice(&s.start.x.to_le_bytes());
    buf.extend_from_slice(&s.start.y.to_le_bytes());
    buf.extend_from_slice(&s.ts.0.to_le_bytes());
    buf.extend_from_slice(&s.fsa.lo().x.to_le_bytes());
    buf.extend_from_slice(&s.fsa.lo().y.to_le_bytes());
    buf.extend_from_slice(&s.fsa.hi().x.to_le_bytes());
    buf.extend_from_slice(&s.fsa.hi().y.to_le_bytes());
    buf.extend_from_slice(&s.te.0.to_le_bytes());
}

/// Parses one 72-byte client state; rejects malformed rectangles.
pub fn decode_state(buf: &[u8]) -> io::Result<ClientState> {
    let mut c = Cursor::new(buf);
    let object = ObjectId(c.u64()?);
    let start = Point::new(c.f64()?, c.f64()?);
    let ts = Timestamp(c.u64()?);
    let (lx, ly, hx, hy) = (c.f64()?, c.f64()?, c.f64()?, c.f64()?);
    let te = Timestamp(c.u64()?);
    c.done()?;
    let well_formed = lx <= hx && ly <= hy && [lx, ly, hx, hy].iter().all(|v| v.is_finite());
    if !well_formed {
        return Err(invalid(format!("malformed FSA rect [{lx},{ly}]..[{hx},{hy}]")));
    }
    Ok(ClientState {
        object,
        start,
        ts,
        fsa: Rect::new(Point::new(lx, ly), Point::new(hx, hy)),
        te,
    })
}

/// Writes one `length || opcode || payload` frame.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let body = 1 + payload.len();
    if body > MAX_FRAME_BYTES {
        return Err(invalid(format!("frame body {body} exceeds {MAX_FRAME_BYTES}")));
    }
    w.write_all(&(body as u32).to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body = u32::from_le_bytes(len) as usize;
    if body == 0 || body > MAX_FRAME_BYTES {
        return Err(invalid(format!("frame body {body} out of bounds")));
    }
    let mut buf = vec![0u8; body];
    r.read_exact(&mut buf)?;
    let opcode = buf[0];
    buf.drain(..1);
    Ok(Some((opcode, buf)))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| invalid("truncated payload".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> io::Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(invalid(format!("{} trailing bytes", self.buf.len() - self.at)))
        }
    }
}

/// A running unix-socket listener bound to a `hotpathd`.
///
/// Accepts connections until [`UnixServer::stop`] (or drop); each
/// connection gets its own lock-free snapshot reader.
#[derive(Debug)]
pub struct UnixServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `path` and serves the wire protocol for `handle`'s server.
/// The socket file is created fresh (a stale one is removed first) and
/// unlinked again on [`UnixServer::stop`].
pub fn serve_unix(handle: &ServerHandle, path: &Path) -> io::Result<UnixServer> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        let cell = handle.cell();
        let tx = handle.sender();
        thread::spawn(move || accept_loop(listener, &stop, &cell, &tx))
    };
    Ok(UnixServer { path: path.to_path_buf(), stop, accept: Some(accept) })
}

fn accept_loop(
    listener: UnixListener,
    stop: &AtomicBool,
    cell: &Arc<SnapshotCell>,
    tx: &mpsc::Sender<ServerMsg>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let cell = Arc::clone(cell);
        let tx = tx.clone();
        thread::spawn(move || {
            let _ = serve_connection(stream, &cell, &tx);
        });
    }
}

fn serve_connection(
    stream: UnixStream,
    cell: &Arc<SnapshotCell>,
    tx: &mpsc::Sender<ServerMsg>,
) -> io::Result<()> {
    let mut reader = cell.register();
    let mut input = stream.try_clone()?;
    let mut output = io::BufWriter::new(stream);
    while let Some((opcode, payload)) = read_frame(&mut input)? {
        match opcode {
            OP_QUERY => {
                let wire = SnapshotWire::from_snapshot(&reader.read());
                write_frame(&mut output, OP_SNAPSHOT, &wire.encode())?;
            }
            OP_SUBMIT_BATCH => {
                if !payload.len().is_multiple_of(STATE_WIRE_BYTES) {
                    return Err(invalid(format!(
                        "batch payload {} not state-aligned",
                        payload.len()
                    )));
                }
                let batch: Vec<ClientState> = payload
                    .chunks_exact(STATE_WIRE_BYTES)
                    .map(decode_state)
                    .collect::<io::Result<_>>()?;
                let n = batch.len() as u32;
                let _ = tx.send(ServerMsg::SubmitBatch(batch));
                write_frame(&mut output, OP_ACK, &n.to_le_bytes())?;
            }
            OP_ADVANCE => {
                let mut c = Cursor::new(&payload);
                let t = Timestamp(c.u64()?);
                c.done()?;
                let _ = tx.send(ServerMsg::Advance(t));
                write_frame(&mut output, OP_ACK, &0u32.to_le_bytes())?;
            }
            other => return Err(invalid(format!("unknown opcode {other:#04x}"))),
        }
    }
    Ok(())
}

impl UnixServer {
    /// Stops accepting, unblocks the accept loop, and removes the
    /// socket file. In-flight connections finish on their own threads.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = UnixStream::connect(&self.path);
            let _ = accept.join();
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl Drop for UnixServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// A blocking wire-protocol client over a unix socket.
#[derive(Debug)]
pub struct UnixClient {
    stream: UnixStream,
}

impl UnixClient {
    /// Connects to a serving socket.
    pub fn connect(path: &Path) -> io::Result<UnixClient> {
        Ok(UnixClient { stream: UnixStream::connect(path)? })
    }

    fn request(&mut self, opcode: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        write_frame(&mut self.stream, opcode, payload)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Fetches the latest published snapshot.
    pub fn query(&mut self) -> io::Result<SnapshotWire> {
        let (op, payload) = self.request(OP_QUERY, &[])?;
        if op != OP_SNAPSHOT {
            return Err(invalid(format!("expected snapshot reply, got opcode {op:#04x}")));
        }
        SnapshotWire::decode(&payload)
    }

    /// Submits a batch; returns the accepted count.
    pub fn submit_batch(&mut self, batch: &[ClientState]) -> io::Result<u32> {
        if batch.len() > MAX_BATCH {
            return Err(invalid(format!("batch of {} exceeds {MAX_BATCH}", batch.len())));
        }
        let mut payload = Vec::with_capacity(batch.len() * STATE_WIRE_BYTES);
        for s in batch {
            encode_state(s, &mut payload);
        }
        let (op, reply) = self.request(OP_SUBMIT_BATCH, &payload)?;
        if op != OP_ACK {
            return Err(invalid(format!("expected ack, got opcode {op:#04x}")));
        }
        let mut c = Cursor::new(&reply);
        let n = c.u32()?;
        c.done()?;
        Ok(n)
    }

    /// Advances the server clock to `t` (ack means enqueued).
    pub fn advance(&mut self, t: Timestamp) -> io::Result<()> {
        let (op, _) = self.request(OP_ADVANCE, &t.0.to_le_bytes())?;
        if op != OP_ACK {
            return Err(invalid(format!("expected ack, got opcode {op:#04x}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Hotpathd;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::engine::EngineKind;
    use hotpath_core::prelude::Config;
    use std::sync::atomic::AtomicU32;

    fn state(obj: u64, end_x: f64, te: u64) -> ClientState {
        ClientState {
            object: ObjectId(obj),
            start: Point::new(0.0, 0.0),
            ts: Timestamp(te.saturating_sub(8)),
            fsa: Rect::new(Point::new(end_x - 2.0, -2.0), Point::new(end_x + 2.0, 2.0)),
            te: Timestamp(te),
        }
    }

    fn socket_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hotpathd-{tag}-{}-{seq}.sock", std::process::id()))
    }

    #[test]
    fn client_state_codec_round_trips_at_fixed_width() {
        let s = state(42, 50.0, 19);
        let mut buf = Vec::new();
        encode_state(&s, &mut buf);
        assert_eq!(buf.len(), STATE_WIRE_BYTES);
        assert_eq!(buf.len(), ClientState::WIRE_BYTES);
        assert_eq!(decode_state(&buf).unwrap(), s);
        assert!(decode_state(&buf[..70]).is_err(), "truncation must be rejected");
        // Corrupt the rect so lo > hi: must be rejected, not asserted on.
        let mut bad = buf.clone();
        bad[32..40].copy_from_slice(&1e9f64.to_le_bytes());
        assert!(decode_state(&bad).is_err());
    }

    #[test]
    fn snapshot_wire_codec_round_trips_and_bounds_topk() {
        let wire = SnapshotWire {
            epoch: 7,
            timestamp: Timestamp(70),
            top_k_score: 350.0,
            hot_count: 3,
            index_size: 12,
            top: (0..3)
                .map(|i| TopEntryWire {
                    id: i,
                    a: (i as f64, 0.0),
                    b: (i as f64 + 50.0, 0.0),
                    hotness: 7 - i as u32,
                    score: 50.0 * (7 - i as u32) as f64,
                })
                .collect(),
        };
        let buf = wire.encode();
        assert_eq!(SnapshotWire::decode(&buf).unwrap(), wire);
        assert!(SnapshotWire::decode(&buf[..buf.len() - 1]).is_err());
        // An absurd declared length must be rejected before allocation.
        let mut bad = buf.clone();
        bad[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SnapshotWire::decode(&bad).is_err());
    }

    #[test]
    fn frames_reject_oversize_and_pass_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_QUERY, &[1, 2, 3]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((OP_QUERY, vec![1, 2, 3])));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");

        let huge = vec![0u8; MAX_FRAME_BYTES];
        assert!(write_frame(&mut Vec::new(), OP_QUERY, &huge).is_err());
        let mut oversize = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        oversize.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut &oversize[..]).is_err());
    }

    #[test]
    fn unix_socket_round_trip_submits_advances_and_queries() {
        let config = Config::paper_defaults().with_epoch(10).with_window(10_000);
        let handle = Hotpathd::spawn(EngineKind::Pipelined.build(Coordinator::new(config)));
        let path = socket_path("rt");
        let server = serve_unix(&handle, &path).expect("bind unix socket");

        let mut client = UnixClient::connect(&path).expect("connect");
        assert_eq!(client.query().unwrap().epoch, 0, "epoch-0 image pre-published");

        // Three traversals of the same corridor, then one epoch.
        let batch: Vec<ClientState> = (1..=3).map(|o| state(o, 50.0, 9)).collect();
        assert_eq!(client.submit_batch(&batch).unwrap(), 3);
        client.advance(Timestamp(10)).unwrap();

        // Open loop: poll until the publish lands in the cell.
        let snap = loop {
            let snap = client.query().unwrap();
            if snap.epoch >= 1 {
                break snap;
            }
            std::thread::yield_now();
        };
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.timestamp, Timestamp(10));
        assert_eq!(snap.top.len(), 1, "one shared corridor");
        assert_eq!(snap.top[0].hotness, 3);

        // A second client sees the same image through its own reader.
        let mut other = UnixClient::connect(&path).expect("second client");
        assert_eq!(other.query().unwrap().epoch, snap.epoch);

        server.stop();
        assert!(UnixClient::connect(&path).is_err(), "socket must be unlinked after stop");
        assert_eq!(handle.shutdown().epoch, 1);
    }

    #[test]
    fn malformed_frames_close_the_connection_with_an_error() {
        let config = Config::paper_defaults();
        let handle = Hotpathd::spawn(EngineKind::Sync.build(Coordinator::new(config)));
        let path = socket_path("bad");
        let server = serve_unix(&handle, &path).expect("bind unix socket");

        let mut stream = UnixStream::connect(&path).expect("connect");
        write_frame(&mut stream, 0x7F, &[]).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(reply, None, "server closes on unknown opcode");

        server.stop();
        drop(handle);
    }
}
