//! # hotpath-serve
//!
//! The serving front door of the EDBT 2008 reproduction: a long-lived
//! `hotpathd` server that owns an [`Engine`](hotpath_core::engine::Engine),
//! drives the epoch loop on a single writer thread, and serves reads
//! from an atomically swapped
//! [`SnapshotCell`](hotpath_core::snapshot::SnapshotCell) — readers
//! take no lock and never make the epoch loop wait.
//!
//! Three layers:
//!
//! - [`server`] — the in-process front door: [`Hotpathd`](server::Hotpathd)
//!   spawns the writer thread, [`ServerHandle`](server::ServerHandle)
//!   is the client surface (submit / advance / lock-free readers).
//! - [`wire`] — a length-prefixed binary frame protocol plus a unix-
//!   socket transport, so out-of-process clients can submit batches and
//!   query the published top-k without linking the engine.
//! - [`swarm`] — `client_swarm`: a seeded, deterministic open-loop load
//!   generator (writer schedules, churn via the scenario fault machinery,
//!   concurrent readers) with a fingerprinted report for parity checks.
//!
//! ```no_run
//! use hotpath_core::prelude::*;
//! use hotpath_serve::server::Hotpathd;
//!
//! let engine = EngineKind::Sync.build(Coordinator::new(Config::paper_defaults()));
//! let handle = Hotpathd::spawn(engine);
//! let mut reader = handle.reader();
//! for t in 1..=100 {
//!     handle.advance(Timestamp(t));
//! }
//! let snap = reader.load();
//! println!("epoch {} hot {}", snap.epoch, snap.hot_count);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod server;
pub mod swarm;
pub mod wire;
