//! `hotpathd` — the standalone serving daemon.
//!
//! Owns one engine, drives the epoch clock at a fixed wall-clock
//! cadence, and serves the wire protocol over a unix socket. Every
//! read a client makes is a lock-free snapshot-cell load; the epoch
//! loop never waits for readers.
//!
//! ```text
//! hotpathd --socket /tmp/hotpathd.sock --engine pipelined --shards 4 \
//!          --tick-ms 100 --ticks 600
//! ```
//!
//! With `--ticks 0` the daemon runs until killed. Clients may also
//! advance the clock themselves over the wire (`--tick-ms 0` disables
//! the internal pacer entirely — driven mode).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use hotpath_core::coordinator::Coordinator;
use hotpath_core::engine::EngineKind;
use hotpath_core::prelude::Config;
use hotpath_core::time::Timestamp;
use hotpath_serve::server::Hotpathd;
use hotpath_serve::wire::serve_unix;

struct Args {
    socket: PathBuf,
    engine: EngineKind,
    shards: usize,
    tick_ms: u64,
    ticks: u64,
}

const USAGE: &str = "usage: hotpathd [--socket PATH] [--engine sync|pipelined] \
[--shards N] [--tick-ms MS] [--ticks N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: PathBuf::from("/tmp/hotpathd.sock"),
        engine: EngineKind::Sync,
        shards: 1,
        tick_ms: 100,
        ticks: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--socket" => args.socket = PathBuf::from(value("--socket")?),
            "--engine" => {
                args.engine = value("--engine")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--tick-ms" => {
                args.tick_ms =
                    value("--tick-ms")?.parse().map_err(|e| format!("--tick-ms: {e}"))?;
            }
            "--ticks" => {
                args.ticks = value("--ticks")?.parse().map_err(|e| format!("--ticks: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let config = Config::paper_defaults().with_shards(args.shards);
    let handle = Hotpathd::spawn(args.engine.build(Coordinator::new(config)));
    let server = match serve_unix(&handle, &args.socket) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("hotpathd: cannot bind {}: {e}", args.socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "hotpathd: serving on {} ({} engine, {} shard(s), tick {}ms)",
        args.socket.display(),
        args.engine,
        args.shards,
        args.tick_ms,
    );

    // The pacer: one granule per tick. `--tick-ms 0` leaves the clock
    // to the clients (driven mode); `--ticks 0` runs unbounded.
    let mut t = 0u64;
    loop {
        if args.tick_ms == 0 {
            std::thread::park();
            continue;
        }
        std::thread::sleep(Duration::from_millis(args.tick_ms));
        t += 1;
        handle.advance(Timestamp(t));
        if args.ticks > 0 && t >= args.ticks {
            break;
        }
    }

    server.stop();
    let stats = handle.stats_handle();
    let snap = handle.shutdown();
    let stats = stats.view();
    eprintln!(
        "hotpathd: done — epoch {} ({} boundaries), {} submitted, {} hot path(s)",
        snap.epoch, stats.epochs, stats.submitted, snap.hot_count,
    );
    ExitCode::SUCCESS
}
