//! `client_swarm`: a seeded, deterministic open-loop load generator.
//!
//! The swarm drives a [`Hotpathd`] the way a
//! fleet of RayTrace clients would: a population of writers each walks
//! a fixed corridor of a synthetic lattice and reports a traversal on
//! the ticks its seeded schedule selects; concurrent reader threads
//! hammer lock-free snapshot handles the whole time. Churn reuses the
//! scenario fault machinery — a [`FaultPlan`] disconnect window
//! suppresses a seeded fraction of the population mid-run.
//!
//! Everything that touches the engine is a pure function of
//! `(seed, fault seed, params)`: the schedule, the corridor geometry,
//! and the tick clock. Readers are real threads but strictly read-only,
//! so they cannot perturb the stream. That makes the final snapshot
//! reproducible bit for bit — [`SwarmReport::fingerprint`] hashes it,
//! and [`verify_swarm`] demands the identical fingerprint from both
//! engine backends under the identical schedule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hotpath_core::coordinator::{Coordinator, HotSnapshot};
use hotpath_core::engine::EngineKind;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::prelude::Config;
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_netsim::scenario::{FaultKind, FaultWindow};
use hotpath_sim::fault::FaultPlan;
use hotpath_sim::options::RunOptions;

use crate::server::Hotpathd;

/// Corridor lattice geometry: column pitch, row pitch, corridor length.
const COL_PITCH: f64 = 500.0;
const ROW_PITCH: f64 = 300.0;
const CORRIDOR_LEN: f64 = 50.0;
/// Lattice width in corridors; writers wrap onto it.
const LATTICE_COLS: u64 = 8;
const LATTICE_ROWS: u64 = 8;
/// Per-tick emission probability, in percent.
const EMIT_PCT: u64 = 60;

/// Parameters of one swarm run. Two runs with equal params produce
/// identical schedules and identical final snapshots on either engine.
#[derive(Clone, Debug)]
pub struct SwarmParams {
    /// Writer population (one corridor each, wrapping onto the lattice).
    pub writers: usize,
    /// Concurrent lock-free reader threads (read-only; never affect
    /// the stream).
    pub readers: usize,
    /// Ticks to drive; one granule each, epochs at the config cadence.
    pub ticks: u64,
    /// Schedule seed: selects which writers emit on which ticks.
    pub seed: u64,
    /// Fraction of writers disconnected during the middle third of the
    /// run (`0.0` = no churn). Victims are seeded by
    /// [`RunOptions::fault_seed`].
    pub churn: f64,
    /// Shared execution knobs (shards / engine / checkpoint / fault
    /// seed).
    pub run: RunOptions,
}

impl Default for SwarmParams {
    fn default() -> Self {
        SwarmParams {
            writers: 24,
            readers: 2,
            ticks: 200,
            seed: 0x5EED,
            churn: 0.0,
            run: RunOptions::default(),
        }
    }
}

impl SwarmParams {
    /// The CI-sized preset (a couple of seconds on one core).
    pub fn quick() -> Self {
        SwarmParams::default()
    }

    /// The full preset: a larger population over a longer horizon,
    /// with churn through the middle third.
    pub fn full() -> Self {
        SwarmParams { writers: 64, readers: 4, ticks: 600, churn: 0.2, ..SwarmParams::default() }
    }

    /// Chainable writer-population override.
    pub fn with_writers(mut self, writers: usize) -> Self {
        self.writers = writers;
        self
    }

    /// Chainable reader-thread override.
    pub fn with_readers(mut self, readers: usize) -> Self {
        self.readers = readers;
        self
    }

    /// Chainable run-length override.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Chainable schedule-seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chainable churn-fraction override.
    pub fn with_churn(mut self, churn: f64) -> Self {
        self.churn = churn;
        self
    }

    /// Chainable execution-knob override.
    pub fn with_run(mut self, run: RunOptions) -> Self {
        self.run = run;
        self
    }

    /// The engine configuration the swarm serves under.
    pub fn config(&self) -> Config {
        Config::paper_defaults()
            .with_epoch(10)
            .with_window(100)
            .with_shards(self.run.shards)
            .with_phase_b_workers(self.run.phase_b_workers)
    }

    fn fault_plan(&self) -> FaultPlan {
        if self.churn <= 0.0 {
            return FaultPlan::default();
        }
        FaultPlan::new(
            self.run.fault_seed,
            vec![FaultWindow {
                kind: FaultKind::Disconnect,
                from: Timestamp(self.ticks / 3),
                until: Timestamp(2 * self.ticks / 3),
                fraction: self.churn,
                salt: 0xC4,
            }],
        )
    }
}

/// What one swarm run did and what it converged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwarmReport {
    /// Backend the run executed on.
    pub engine: EngineKind,
    /// Ticks driven.
    pub ticks: u64,
    /// Traversals submitted.
    pub submitted: u64,
    /// Traversals suppressed by churn.
    pub suppressed: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Lock-free snapshot reads completed by the reader threads
    /// (nondeterministic; excluded from parity checks).
    pub reads: u64,
    /// Highest epoch any reader observed.
    pub max_epoch_seen: u64,
    /// Hash of the submitted `(writer, tick)` schedule — equal seeds
    /// must produce equal schedules before the engine is even involved.
    pub schedule_hash: u64,
    /// Hash of the final published snapshot (epoch, counts, full
    /// top-k). Equal across engines for equal schedules.
    pub fingerprint: u64,
    /// Final epoch of the published snapshot.
    pub final_epoch: u64,
    /// Hot paths in the final snapshot.
    pub hot_count: u64,
}

impl SwarmReport {
    /// True when `other` is the same deterministic run: identical
    /// schedule and identical final snapshot (reader counters are
    /// timing noise and excluded).
    pub fn parity(&self, other: &SwarmReport) -> bool {
        self.schedule_hash == other.schedule_hash
            && self.fingerprint == other.fingerprint
            && self.submitted == other.submitted
            && self.suppressed == other.suppressed
            && self.epochs == other.epochs
    }
}

/// `splitmix64` — the repo-standard seeded mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Does writer `w` emit on tick `t` under `seed`?
fn emits(seed: u64, w: u64, t: u64) -> bool {
    splitmix64(seed ^ splitmix64(w) ^ t.wrapping_mul(0x2545_F491_4F6C_DD1D)) % 100 < EMIT_PCT
}

/// The traversal writer `w` reports ending at tick `t`: one pass of
/// its fixed lattice corridor.
fn traversal(w: u64, t: u64) -> ClientState {
    let col = w % LATTICE_COLS;
    let row = (w / LATTICE_COLS) % LATTICE_ROWS;
    let x0 = col as f64 * COL_PITCH;
    let y0 = row as f64 * ROW_PITCH;
    let end = Point::new(x0 + CORRIDOR_LEN, y0);
    ClientState {
        object: ObjectId(w),
        start: Point::new(x0, y0),
        ts: Timestamp(t.saturating_sub(8)),
        fsa: Rect::new(Point::new(end.x - 2.0, end.y - 2.0), Point::new(end.x + 2.0, end.y + 2.0)),
        te: Timestamp(t),
    }
}

fn fold(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// Hashes the final snapshot: epoch, clock, counts, and the complete
/// top-k (ids, hotness, score bits, segment geometry bits).
pub fn snapshot_fingerprint(snap: &HotSnapshot) -> u64 {
    let mut h = 0x5EED_F00D;
    h = fold(h, snap.epoch);
    h = fold(h, snap.timestamp.0);
    h = fold(h, snap.hot_count as u64);
    h = fold(h, snap.index_size as u64);
    h = fold(h, snap.top_k_score.to_bits());
    for hp in snap.top_k.iter() {
        h = fold(h, hp.path.id.0);
        h = fold(h, u64::from(hp.hotness));
        h = fold(h, hp.score.to_bits());
        h = fold(h, hp.path.seg.a.x.to_bits());
        h = fold(h, hp.path.seg.a.y.to_bits());
        h = fold(h, hp.path.seg.b.x.to_bits());
        h = fold(h, hp.path.seg.b.y.to_bits());
    }
    h
}

/// Runs one swarm against a freshly spawned `hotpathd` and reports the
/// deterministic outcome.
pub fn run_swarm(params: &SwarmParams) -> SwarmReport {
    let engine = params.run.engine.build(Coordinator::new(params.config()));
    let handle = Hotpathd::spawn(engine);
    let plan = params.fault_plan();

    // Concurrent readers: real threads on lock-free handles, strictly
    // read-only. They count reads and track the highest epoch seen.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..params.readers)
        .map(|_| {
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut reads = 0u64;
                let mut max_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.read();
                    assert!(snap.epoch >= max_epoch, "reader observed epochs out of order");
                    max_epoch = snap.epoch;
                    reads += 1;
                }
                (reads, max_epoch)
            })
        })
        .collect();

    let mut submitted = 0u64;
    let mut suppressed = 0u64;
    let mut schedule_hash = params.seed;
    for t in 1..=params.ticks {
        let mut batch = Vec::new();
        for w in 0..params.writers as u64 {
            if !emits(params.seed, w, t) {
                continue;
            }
            if plan.verdict(ObjectId(w), Timestamp(t)).is_some() {
                suppressed += 1;
                continue;
            }
            schedule_hash = fold(fold(schedule_hash, w), t);
            batch.push(traversal(w, t));
        }
        submitted += batch.len() as u64;
        if !batch.is_empty() {
            handle.submit_batch(batch);
        }
        handle.advance(Timestamp(t));
    }

    let stats = handle.stats_handle();
    let snap = handle.shutdown();
    let stats = stats.view();
    stop.store(true, Ordering::Relaxed);
    let (reads, max_epoch_seen) = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .fold((0, 0), |(r, m), (reads, max)| (r + reads, m.max(max)));

    SwarmReport {
        engine: params.run.engine,
        ticks: params.ticks,
        submitted,
        suppressed,
        epochs: stats.epochs,
        reads,
        max_epoch_seen,
        schedule_hash,
        fingerprint: snapshot_fingerprint(&snap),
        final_epoch: snap.epoch,
        hot_count: snap.hot_count as u64,
    }
}

/// Runs the identical swarm on both engine backends and checks parity:
/// same schedule hash, same final-snapshot fingerprint. Returns both
/// reports, or a description of the first divergence.
pub fn verify_swarm(params: &SwarmParams) -> Result<(SwarmReport, SwarmReport), String> {
    let sync =
        run_swarm(&params.clone().with_run(params.run.clone().with_engine(EngineKind::Sync)));
    let pipelined =
        run_swarm(&params.clone().with_run(params.run.clone().with_engine(EngineKind::Pipelined)));
    if sync.parity(&pipelined) {
        Ok((sync, pipelined))
    } else {
        Err(format!(
            "engine parity failed: sync {{schedule:{:#018x} fingerprint:{:#018x} submitted:{}}} \
             vs pipelined {{schedule:{:#018x} fingerprint:{:#018x} submitted:{}}}",
            sync.schedule_hash,
            sync.fingerprint,
            sync.submitted,
            pipelined.schedule_hash,
            pipelined.fingerprint,
            pipelined.submitted,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SwarmParams {
        SwarmParams::default().with_writers(8).with_readers(1).with_ticks(60)
    }

    #[test]
    fn same_seed_means_same_schedule_and_same_fingerprint() {
        let a = run_swarm(&small());
        let b = run_swarm(&small());
        assert!(a.parity(&b), "identical params must reproduce the run:\n{a:#?}\nvs\n{b:#?}");
        assert_eq!(a.final_epoch, 6);
        assert!(a.submitted > 0);
    }

    #[test]
    fn different_seeds_pick_different_schedules() {
        let a = run_swarm(&small());
        let b = run_swarm(&small().with_seed(0xD1FF));
        assert_ne!(a.schedule_hash, b.schedule_hash);
    }

    #[test]
    fn both_engines_converge_to_the_same_snapshot() {
        let (sync, pipelined) = verify_swarm(&small()).expect("engine parity");
        assert_eq!(sync.fingerprint, pipelined.fingerprint);
        assert_eq!(sync.engine, EngineKind::Sync);
        assert_eq!(pipelined.engine, EngineKind::Pipelined);
    }

    #[test]
    fn churn_suppresses_deterministically_and_keeps_parity() {
        let params = small().with_churn(0.5);
        let a = run_swarm(&params);
        assert!(a.suppressed > 0, "half the fleet must churn out mid-run");
        let (sync, pipelined) = verify_swarm(&params).expect("parity under churn");
        assert_eq!(sync.suppressed, a.suppressed);
        assert_eq!(sync.fingerprint, pipelined.fingerprint);
    }

    #[test]
    fn fault_seed_selects_the_victims() {
        let params = small().with_churn(0.3);
        let other = params.clone().with_run(params.run.clone().with_fault_seed(0xBEEF));
        let a = run_swarm(&params);
        let b = run_swarm(&other);
        assert_ne!(
            (a.suppressed, a.schedule_hash),
            (b.suppressed, b.schedule_hash),
            "different fault seeds must pick different victims"
        );
    }
}
