//! Property suites over the core data structures: geometry algebra, SSA
//! safety, tolerance-solver analytics, sliding-window hotness, and the
//! endpoint grid — each invariant checked against a brute-force oracle.

use hotpath_core::config::{Config, Tolerance};
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, Rect, Segment, TimePoint};
use hotpath_core::hotness::Hotness;
use hotpath_core::index::MotionPathIndex;
use hotpath_core::motion_path::PathId;
use hotpath_core::raytrace::{ClientState, Ssa};
use hotpath_core::session::{SessionTable, SessionTransition};
use hotpath_core::time::{SlidingWindow, Timestamp};
use hotpath_core::uncertainty::{coverage, half_width_exact};
use hotpath_core::ObjectId;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), 0.0..500.0f64, 0.0..500.0f64)
        .prop_map(|(lo, w, h)| Rect::new(lo, lo + Point::new(w, h)))
}

proptest! {
    // Fixed case count and (via the vendored proptest's fixed default
    // `rng_seed`) a deterministic stream: tier-1 runs are reproducible.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    // ---------------- geometry ----------------

    #[test]
    fn rect_intersection_commutes_and_shrinks(a in rect(), b in rect()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(a.contains_rect(&x));
                prop_assert!(b.contains_rect(&x));
                prop_assert!(x.area() <= a.area().min(b.area()) + 1e-9);
            }
            (None, None) => prop_assert!(!a.intersects(&b)),
            _ => prop_assert!(false, "intersection not symmetric"),
        }
    }

    #[test]
    fn rect_union_contains_both(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn containment_implies_intersection(a in rect(), b in rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
            prop_assert!(a.intersection(&b) == Some(b));
        }
    }

    #[test]
    fn clamp_point_is_nearest(r in rect(), p in point()) {
        let c = r.clamp_point(&p);
        prop_assert!(r.contains(&c));
        // No corner is closer under L-inf.
        for corner in r.corners() {
            prop_assert!(c.dist_linf(&p) <= corner.dist_linf(&p) + 1e-9);
        }
        // Containment means the clamp is the identity.
        if r.contains(&p) {
            prop_assert_eq!(c, p);
        }
    }

    #[test]
    fn tolerance_square_membership_is_linf_ball(c in point(), eps in 0.1..100.0f64, p in point()) {
        let q = Rect::tolerance_square(c, eps);
        prop_assert_eq!(q.contains(&p), c.dist_linf(&p) <= eps);
    }

    #[test]
    fn segment_linf_distance_lower_bounds_samples(
        a in point(), b in point(), p in point()
    ) {
        let seg = Segment::new(a, b);
        let d = seg.dist_linf_point(&p);
        // The analytic minimum never exceeds any sampled value...
        let mut sampled_min = f64::INFINITY;
        for i in 0..=200 {
            let s = seg.point_at(i as f64 / 200.0).dist_linf(&p);
            prop_assert!(d <= s + 1e-9, "analytic {d} above sample {s}");
            sampled_min = sampled_min.min(s);
        }
        // ...and is close to the sampled minimum, up to the sampling
        // resolution (the distance changes by at most one step's length
        // between adjacent samples).
        let step = seg.length() / 200.0;
        prop_assert!(sampled_min - d <= step + 1e-6);
    }

    // ---------------- SSA ----------------

    /// After any accept sequence, every FSA corner interpolated back to
    /// each accepted time lies inside the rectangle accepted then.
    #[test]
    fn ssa_pyramid_safety(
        deltas in prop::collection::vec((-15.0..15.0f64, -15.0..15.0f64), 1..40),
        eps in 1.0..20.0f64,
    ) {
        let seed = TimePoint::new(Point::new(0.0, 0.0), Timestamp(0));
        let mut ssa = Ssa::new(seed);
        let mut pos = Point::new(0.0, 0.0);
        let mut accepted: Vec<(Timestamp, Rect)> = Vec::new();
        for (i, (dx, dy)) in deltas.iter().enumerate() {
            pos = Point::new(pos.x + dx, pos.y + dy);
            let t = Timestamp(i as u64 + 1);
            let q = Rect::tolerance_square(pos, eps);
            if ssa.try_extend(t, &q) {
                accepted.push((t, q));
            } else {
                break;
            }
        }
        prop_assume!(!accepted.is_empty());
        let (s, ts, te) = (ssa.start(), ssa.start_time(), ssa.end_time());
        for corner in ssa.fsa().corners() {
            for &(tj, qj) in &accepted {
                let lambda = tj.fraction_of(ts, te);
                let on_path = s.lerp(&corner, lambda);
                prop_assert!(
                    qj.expand(1e-6).contains(&on_path),
                    "corner {corner:?} escapes {qj:?} at {tj:?}"
                );
            }
        }
    }

    // ---------------- tolerance intervals ----------------

    #[test]
    fn half_width_brackets_equation2(
        eps in 1.0..50.0f64,
        delta in 0.01..0.3f64,
        sigma in 0.0..20.0f64,
    ) {
        match half_width_exact(eps, delta, sigma) {
            Some(w) => {
                prop_assert!(w >= 0.0 && w <= eps + 1e-9);
                prop_assert!(coverage(w, eps, sigma) >= 1.0 - delta - 1e-6);
                if sigma > 0.0 {
                    prop_assert!(coverage(w + 1e-3, eps, sigma) < 1.0 - delta + 1e-6);
                }
            }
            None => {
                // Unsolvable iff even the mean fails.
                prop_assert!(coverage(0.0, eps, sigma) < 1.0 - delta);
            }
        }
    }

    #[test]
    fn half_width_monotone_in_all_arguments(
        eps in 5.0..30.0f64,
        delta in 0.02..0.2f64,
        sigma in 0.1..5.0f64,
    ) {
        let base = half_width_exact(eps, delta, sigma);
        prop_assume!(base.is_some());
        let base = base.unwrap();
        // Wider tolerance, looser delta, or less noise all widen the
        // admissible interval.
        if let Some(w) = half_width_exact(eps + 1.0, delta, sigma) {
            prop_assert!(w >= base - 1e-9);
        }
        if let Some(w) = half_width_exact(eps, (delta + 0.05).min(0.99), sigma) {
            prop_assert!(w >= base - 1e-9);
        }
        if let Some(w) = half_width_exact(eps, delta, (sigma - 0.05).max(0.0)) {
            prop_assert!(w >= base - 1e-9);
        }
    }

    // ---------------- hotness window ----------------

    #[test]
    fn hotness_matches_brute_force(
        schedule in prop::collection::vec((0u64..6, 0u64..3), 1..200),
        window in 1u64..50,
    ) {
        let mut hot = Hotness::new(SlidingWindow::new(window));
        let mut crossings: Vec<(u64, u64)> = Vec::new(); // (id, te)
        let mut now = 0u64;
        for (id, gap) in schedule {
            now += gap;
            hot.advance(Timestamp(now));
            hot.record_crossing(PathId(id), Timestamp(now), 1.0);
            crossings.push((id, now));
            for check in 0u64..6 {
                let expect = crossings
                    .iter()
                    .filter(|&&(i, te)| i == check && te + window > now)
                    .count() as u32;
                prop_assert_eq!(hot.get(PathId(check)), expect);
            }
        }
    }

    // The incremental top-k rank structure must match a naive full sort
    // of the hot set — `(hotness desc, length desc, id asc)`, the
    // coordinator's `top_n` order — after any schedule of records,
    // expiries, and forgets.
    #[test]
    fn hotness_top_iter_matches_full_sort(
        schedule in prop::collection::vec((0u64..10, 0u64..4, 0u64..7), 1..250),
        window in 1u64..60,
    ) {
        let length = |id: PathId| ((id.0 * 29) % 83) as f64;
        let mut hot = Hotness::new(SlidingWindow::new(window));
        let mut now = 0u64;
        let mut forgotten: Vec<u64> = Vec::new();
        for (id, gap, action) in schedule {
            now += gap;
            hot.advance(Timestamp(now));
            if action == 0 {
                // `forget` contracts: an id is never recorded again.
                hot.forget(PathId(id));
                forgotten.push(id);
            } else if !forgotten.contains(&id) {
                hot.record_crossing(PathId(id), Timestamp(now), length(PathId(id)));
            }

            let mut oracle: Vec<(PathId, u32)> = hot.iter().collect();
            oracle.sort_by(|a, b| {
                b.1.cmp(&a.1)
                    .then_with(|| length(b.0).total_cmp(&length(a.0)))
                    .then_with(|| a.0.cmp(&b.0))
            });
            let fast: Vec<(PathId, u32)> = hot.top_iter().collect();
            prop_assert_eq!(fast, oracle);
            prop_assert!(hot.check_consistency().is_ok());
            prop_assert!(hot.queued_events() >= hot.pending_events());
        }
    }

    // The timer wheel behind `Hotness` must reproduce the retired
    // binary heap's externally observable behavior exactly: identical
    // death order out of `advance` (the heap popped `(expiry, id)`
    // ascending; the wheel sorts each epoch's expired batch the same
    // way) and identical counts, after any schedule of records, clock
    // jumps, and forgets. The reference heap here *is* the old
    // algorithm: pop due events in order, skip tombstones, decrement.
    #[test]
    fn wheel_expiry_order_matches_heap_reference(
        schedule in prop::collection::vec((0u64..12, 0u64..60, 0u64..8), 1..250),
        window in 1u64..1500,
    ) {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap, HashSet};
        let mut hot = Hotness::new(SlidingWindow::new(window));
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut counts: HashMap<u64, u32> = HashMap::new();
        let mut forgotten: HashSet<u64> = HashSet::new();
        let mut now = 0u64;
        for (id, g, action) in schedule {
            // Mostly small steps, occasionally a jump past several wheel
            // slots (and, with a large window, across wheel levels).
            now += if g >= 55 { g * 37 } else { g % 9 };
            let mut ref_died: Vec<PathId> = Vec::new();
            while heap.peek().is_some_and(|&Reverse((e, _))| e <= now) {
                let Reverse((_, rid)) = heap.pop().unwrap();
                if forgotten.contains(&rid) {
                    continue; // tombstone of a forgotten id
                }
                if let Some(c) = counts.get_mut(&rid) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&rid);
                        ref_died.push(PathId(rid));
                    }
                }
            }
            prop_assert_eq!(hot.advance(Timestamp(now)), ref_died);
            if action == 0 {
                // `forget` contracts: an id is never recorded again.
                hot.forget(PathId(id));
                forgotten.insert(id);
                counts.remove(&id);
            } else if !forgotten.contains(&id) {
                hot.record_crossing(PathId(id), Timestamp(now), 1.0);
                *counts.entry(id).or_insert(0) += 1;
                heap.push(Reverse((now + window, id)));
            }
            for check in 0..12u64 {
                prop_assert_eq!(
                    hot.get(PathId(check)),
                    counts.get(&check).copied().unwrap_or(0)
                );
            }
            prop_assert!(hot.check_consistency().is_ok());
        }
    }

    // ---------------- endpoint index ----------------

    #[test]
    fn index_queries_match_linear_scan(
        paths in prop::collection::vec((point(), point()), 1..60),
        query in rect(),
    ) {
        let mut index = MotionPathIndex::new(100.0, 1e-3);
        let mut stored: Vec<(PathId, Point, Point)> = Vec::new();
        for (s, e) in paths {
            let (id, _) = index.insert(s, e);
            stored.push((id, s, e));
        }
        index.check_consistency().unwrap();

        // Case-2 oracle: distinct end vertices inside the query.
        let got: Vec<Point> = index
            .end_vertices_in(&query)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let mut want: Vec<(i64, i64)> = stored
            .iter()
            .filter(|(_, _, e)| query.contains(e))
            .map(|(_, _, e)| e.quantize(1e-3))
            .collect();
        want.sort_unstable();
        want.dedup();
        let mut got_keys: Vec<(i64, i64)> = got.iter().map(|p| p.quantize(1e-3)).collect();
        got_keys.sort_unstable();
        prop_assert_eq!(got_keys, want);

        // Case-1 oracle for a stored start vertex.
        if let Some((_, s, _)) = stored.first() {
            let mut got: Vec<PathId> = index.paths_from_into(s, &query);
            got.sort_unstable();
            let skey = s.quantize(1e-3);
            let mut want: Vec<PathId> = stored
                .iter()
                .filter(|(_, ss, ee)| ss.quantize(1e-3) == skey && query.contains(ee))
                .map(|(id, _, _)| *id)
                .collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn index_remove_restores_consistency(
        paths in prop::collection::vec((point(), point()), 1..40),
        victim in 0usize..40,
    ) {
        let mut index = MotionPathIndex::new(100.0, 1e-3);
        let mut ids = Vec::new();
        for (s, e) in &paths {
            let (id, _) = index.insert(*s, *e);
            ids.push(id);
        }
        let victim = ids[victim % ids.len()];
        index.remove(victim);
        index.check_consistency().unwrap();
        prop_assert!(index.get(victim).is_none());
        let everywhere = Rect::new(Point::new(-1e5, -1e5), Point::new(1e5, 1e5));
        prop_assert!(!index
            .end_vertices_in(&everywhere)
            .iter()
            .any(|(_, ids)| ids.contains(&victim)));
    }
}

// ---------------- sessions ----------------

/// Transition codes for the naive reference's event log.
const CONNECTED: u8 = 0;
const DROPPED: u8 = 1;
const RECONNECTED: u8 = 2;
const EJECTED: u8 = 3;

fn code(t: SessionTransition) -> u8 {
    match t {
        SessionTransition::Connected => CONNECTED,
        SessionTransition::Dropped => DROPPED,
        SessionTransition::Reconnected => RECONNECTED,
        SessionTransition::Ejected => EJECTED,
    }
}

/// A naive session table: a sorted map scanned front to back, applying
/// each due deadline by repeatedly taking the minimum `(deadline,
/// object)` — the specification the wheel-backed [`SessionTable`] must
/// reproduce event for event.
struct NaiveSessions {
    lease: u64,
    grace: u64,
    /// object -> (state: 0 healthy / 1 dropped, deadline, last_heartbeat)
    records: BTreeMap<u64, (u8, u64, u64)>,
    events: Vec<(u64, u64, u8)>,
}

impl NaiveSessions {
    fn heartbeat(&mut self, obj: u64, at: u64) {
        let deadline = at + self.lease;
        match self.records.get_mut(&obj) {
            None => {
                self.records.insert(obj, (0, deadline, at));
                self.events.push((obj, at, CONNECTED));
            }
            Some(r) => {
                r.2 = r.2.max(at);
                if r.0 == 1 {
                    *r = (0, deadline, r.2);
                    self.events.push((obj, at, RECONNECTED));
                } else if deadline > r.1 {
                    r.1 = deadline;
                }
            }
        }
    }

    fn advance(&mut self, now: u64) {
        loop {
            let due = self.records.iter().filter(|(_, r)| r.1 <= now).map(|(&o, r)| (r.1, o)).min();
            let Some((deadline, obj)) = due else { break };
            if self.records[&obj].0 == 0 {
                self.events.push((obj, deadline, DROPPED));
                let eject_at = deadline + self.grace;
                if eject_at <= now {
                    self.records.remove(&obj);
                    self.events.push((obj, eject_at, EJECTED));
                } else {
                    let r = self.records.get_mut(&obj).expect("due record");
                    r.0 = 1;
                    r.1 = eject_at;
                }
            } else {
                self.records.remove(&obj);
                self.events.push((obj, deadline, EJECTED));
            }
        }
    }

    fn eject_now(&mut self, obj: u64, at: u64) {
        if self.records.remove(&obj).is_some() {
            self.events.push((obj, at, EJECTED));
        }
    }

    fn records_flat(&self) -> Vec<(u64, u64, u64, u64)> {
        self.records.iter().map(|(&o, &(s, d, h))| (o, s as u64, d, h)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The wheel-backed session table must match the naive
    /// sorted-by-deadline reference exactly — same transition stream
    /// (eviction order included), same surviving records — through any
    /// schedule of heartbeats, clock jumps, and forced ejections, and
    /// straight through a checkpoint/restore performed mid-schedule
    /// (i.e. mid-lease for whatever sessions are then alive).
    #[test]
    fn session_table_matches_naive_deadline_reference(
        lease in 1u64..20,
        grace in 0u64..15,
        schedule in prop::collection::vec((0u64..6, 0u64..12, 0u64..8), 1..200),
        restore_ix in 0usize..200,
    ) {
        let mut real = SessionTable::new(lease, grace, Timestamp(0));
        let mut naive = NaiveSessions {
            lease,
            grace,
            records: BTreeMap::new(),
            events: Vec::new(),
        };
        let mut now = 0u64;
        for (i, &(gap, obj, action)) in schedule.iter().enumerate() {
            now += gap;
            real.advance(Timestamp(now));
            naive.advance(now);
            if action == 0 {
                real.eject_now(ObjectId(obj), Timestamp(now));
                naive.eject_now(obj, now);
            } else if action < 6 {
                real.heartbeat(ObjectId(obj), Timestamp(now));
                naive.heartbeat(obj, now);
            }
            let got: Vec<(u64, u64, u8)> = real
                .drain_events()
                .into_iter()
                .map(|e| (e.object.0, e.at.raw(), code(e.transition)))
                .collect();
            prop_assert_eq!(got, std::mem::take(&mut naive.events), "events at step {}", i);
            let flat: Vec<(u64, u64, u64, u64)> = real
                .records_vec()
                .iter()
                .map(|r| (r.object, r.state, r.deadline, r.last_heartbeat))
                .collect();
            prop_assert_eq!(flat, naive.records_flat(), "records at step {}", i);

            if i == restore_ix % schedule.len() {
                // Mid-lease restore: the rebuilt table (no stale wheel
                // events) must keep tracking the reference.
                real = SessionTable::from_checkpoint_parts(
                    lease,
                    grace,
                    real.records_vec(),
                    real.counters(),
                    Timestamp(now),
                )
                .expect("clean section");
                real.check().expect("restored table audits");
            }
        }
        real.check().expect("final audit");
    }
}

// ---------------- checkpoint ----------------

proptest! {
    // Each case grows and round-trips a whole coordinator, so a smaller
    // deterministic case count keeps tier-1 wall time in check.
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// `restore(checkpoint(c))` is the identity on a coordinator grown
    /// from any random schedule at any shard count: the restored state
    /// is consistent, queries agree, and a second checkpoint of the
    /// restored coordinator — and of a double-restored one — is
    /// byte-identical to the first (restore is idempotent).
    #[test]
    fn checkpoint_restore_roundtrips_random_coordinators(
        seed in 0u64..100_000,
        shards_ix in 0usize..3,
        epochs in 1u64..8,
        leftover in 0u64..10,
    ) {
        let shards = [1usize, 2, 4][shards_ix];
        let config = Config::paper_defaults()
            .with_tolerance(Tolerance::crisp(10.0))
            .with_window(30)
            .with_epoch(10)
            .with_k(6)
            .with_shards(shards);
        let mut c = Coordinator::new(config);
        // An LCG-driven schedule over a coarse lattice: corridors repeat
        // so crossings accumulate, expire, and evict along the way.
        let mut s = seed | 1;
        let mut roll = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let state = |obj: u64, r: u64, te: u64| {
            let x = ((r % 7) * 400) as f64;
            let y = ((r % 5) * 250) as f64;
            let end = Point::new(x + 60.0, y);
            ClientState {
                object: ObjectId(obj),
                start: Point::new(x, y),
                ts: Timestamp(te.saturating_sub(8)),
                fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
                te: Timestamp(te),
            }
        };
        for e in 1..=epochs {
            for i in 0..10u64 {
                c.submit(state(i, roll(), e * 10 - 1));
            }
            let _ = c.process_epoch(Timestamp(e * 10));
        }
        // Undelivered states must travel inside the pending section.
        for i in 0..leftover {
            c.submit(state(i, roll(), epochs * 10 + 9));
        }

        let image = c.checkpoint();
        let restored = Coordinator::from_checkpoint(config, &image)
            .expect("restore of a fresh image");
        restored.check_consistency().expect("restored coordinator inconsistent");
        prop_assert_eq!(restored.index_size(), c.index_size());
        prop_assert_eq!(restored.hot_count(), c.hot_count());
        prop_assert_eq!(
            restored.top_k_score().to_bits(),
            c.top_k_score().to_bits()
        );

        let second = restored.checkpoint();
        prop_assert_eq!(second.as_bytes(), image.as_bytes(), "re-checkpoint drifted");
        let twice = Coordinator::from_checkpoint(config, &second)
            .expect("double restore");
        twice.check_consistency().expect("double-restored coordinator inconsistent");
        let third = twice.checkpoint();
        prop_assert_eq!(third.as_bytes(), image.as_bytes(), "double restore drifted");
    }
}

// ---------------- parallel Phase B ----------------

/// One epoch's observable output under a given pool: responses,
/// snapshot score bits, index size, top-k ids, and the deterministic
/// deferred count from the Phase-B load record.
type ParallelEpochRow = (Vec<(u64, u64, u64, u64)>, u64, usize, Vec<u64>, usize);

proptest! {
    // Each case replays the same random schedule at seven pool x shard
    // combinations, so a small deterministic case count keeps tier-1
    // wall time in check.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole pin: parallel Phase B is bit-for-bit the sequential
    /// strategy through the full coordinator, for any random schedule,
    /// at workers {2, 4, 8} x shards {1, 4} — forced past the hardware
    /// clamp with `WorkerPool::exact`, so the scoped workers, the
    /// work-stealing deques, and the deterministic merge genuinely run
    /// even on a single-core machine (a 1-core box timeshares the
    /// workers, which still exercises arbitrary steal interleavings).
    #[test]
    fn parallel_phase_b_matches_sequential_through_coordinator(
        seed in 0u64..100_000,
        epochs in 2u64..5,
        fleet in 70usize..110,
    ) {
        use hotpath_core::strategy::WorkerPool;

        let run = |shards: usize, pool: WorkerPool| {
            let config = Config::paper_defaults()
                .with_tolerance(Tolerance::crisp(10.0))
                .with_window(30)
                .with_epoch(10)
                .with_k(6)
                .with_shards(shards);
            let mut c = Coordinator::new(config).with_phase_b_pool(pool);
            let mut s = seed | 1;
            let mut roll = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            let mut log: Vec<ParallelEpochRow> = Vec::new();
            let mut engaged = 0usize;
            for e in 1..=epochs {
                for i in 0..fleet as u64 {
                    let r = roll();
                    // Unique starts per (epoch, object) keep the whole
                    // fleet deferring to Phase B; FSAs pile onto a few
                    // cluster centers (the flash-crowd shape) so the
                    // region partition skews and workers must steal.
                    let cx = ((r % 5) * 400) as f64 + (r % 37) as f64;
                    let cy = ((r % 3) * 350) as f64 + (r % 23) as f64;
                    let half = 25.0 + (r % 3) as f64 * 10.0;
                    c.submit(ClientState {
                        object: ObjectId(i),
                        start: Point::new(e as f64 * 1000.0 + i as f64 * 3.0, 9000.0),
                        ts: Timestamp(e * 10 - 9),
                        fsa: Rect::new(
                            Point::new(cx - half, cy - half),
                            Point::new(cx + half, cy + half),
                        ),
                        te: Timestamp(e * 10 - 1),
                    });
                }
                let responses: Vec<(u64, u64, u64, u64)> = c
                    .process_epoch(Timestamp(e * 10))
                    .iter()
                    .map(|r| {
                        (
                            r.object.0,
                            r.endpoint.p.x.to_bits(),
                            r.endpoint.p.y.to_bits(),
                            r.endpoint.t.raw(),
                        )
                    })
                    .collect();
                let snap = c.snapshot();
                engaged = engaged.max(snap.phase_b.workers);
                log.push((
                    responses,
                    snap.top_k_score.to_bits(),
                    snap.index_size,
                    snap.top_k.iter().map(|h| h.path.id.0).collect(),
                    snap.phase_b.deferred,
                ));
            }
            c.check_consistency().expect("coordinator inconsistent");
            (log, engaged)
        };

        let (reference, _) = run(1, WorkerPool::exact(1));
        // The schedule must actually feed Phase B, or the pin is vacuous.
        prop_assert!(
            reference.iter().any(|row| row.4 >= 64),
            "schedule never deferred enough to engage the parallel path"
        );
        for shards in [1usize, 4] {
            for workers in [2usize, 4, 8] {
                let (observed, engaged) = run(shards, WorkerPool::exact(workers));
                prop_assert_eq!(
                    &reference,
                    &observed,
                    "divergence at {} workers / {} shards",
                    workers,
                    shards
                );
                prop_assert!(engaged > 1, "pool of {} never ran parallel", workers);
            }
        }
    }
}
