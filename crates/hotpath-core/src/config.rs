//! Framework configuration: tolerance model, window, epochs, grid.

use crate::time::{EpochClock, SlidingWindow};

/// The tolerance model of Section 3.1: either a crisp `eps`, or the
/// uncertainty-aware `(eps, delta)` pair in which a location is *close*
/// when it is within `eps` with probability at least `1 - delta`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Tolerance {
    /// Deterministic tolerance `eps` (meters, max-distance).
    Crisp {
        /// Tolerance radius in meters.
        eps: f64,
    },
    /// Probabilistic tolerance `(eps, delta)` for Gaussian measurements.
    Uncertain {
        /// Tolerance radius in meters.
        eps: f64,
        /// Permitted failure probability in `(0, 1)`.
        delta: f64,
    },
}

impl Tolerance {
    /// Crisp tolerance constructor.
    pub fn crisp(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        Tolerance::Crisp { eps }
    }

    /// Probabilistic tolerance constructor.
    pub fn uncertain(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1), got {delta}");
        Tolerance::Uncertain { eps, delta }
    }

    /// The `eps` radius, under either model.
    #[inline]
    pub fn eps(&self) -> f64 {
        match *self {
            Tolerance::Crisp { eps } | Tolerance::Uncertain { eps, .. } => eps,
        }
    }

    /// The failure probability, when probabilistic.
    #[inline]
    pub fn delta(&self) -> Option<f64> {
        match *self {
            Tolerance::Crisp { .. } => None,
            Tolerance::Uncertain { delta, .. } => Some(delta),
        }
    }
}

/// What the coordinator does when an epoch's drained ingest exceeds
/// [`Admission::queue_cap`]. Enforcement happens at the epoch boundary
/// (inside the drain-ingest stage), so every backend and shard count
/// sees the identical global batch and makes the identical decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdmissionPolicy {
    /// Refuse the newest arrivals beyond the cap (tail drop).
    #[default]
    Reject,
    /// Shed the oldest queued states to make room for new arrivals.
    ShedOldest,
    /// Eject the client with the stalest heartbeat among those in the
    /// batch (removing all of its queued states), repeating until the
    /// batch fits. Requires session tracking for staleness; without it
    /// the victim is the client of the oldest queued state.
    EjectSlowest,
}

impl AdmissionPolicy {
    /// Parses a CLI tag (`reject` / `shed-oldest` / `eject-slowest`).
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "reject" => Some(AdmissionPolicy::Reject),
            "shed-oldest" => Some(AdmissionPolicy::ShedOldest),
            "eject-slowest" => Some(AdmissionPolicy::EjectSlowest),
            _ => None,
        }
    }

    /// Stable numeric encoding (checkpoint config echo).
    pub fn as_raw(self) -> u64 {
        match self {
            AdmissionPolicy::Reject => 0,
            AdmissionPolicy::ShedOldest => 1,
            AdmissionPolicy::EjectSlowest => 2,
        }
    }

    /// Decodes [`AdmissionPolicy::as_raw`].
    pub fn from_raw(raw: u64) -> Option<AdmissionPolicy> {
        match raw {
            0 => Some(AdmissionPolicy::Reject),
            1 => Some(AdmissionPolicy::ShedOldest),
            2 => Some(AdmissionPolicy::EjectSlowest),
            _ => None,
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::ShedOldest => "shed-oldest",
            AdmissionPolicy::EjectSlowest => "eject-slowest",
        })
    }
}

/// Robustness knobs for the serving front door: heartbeat leases for
/// the client-session lifecycle and a bound on per-epoch ingest. All
/// default to *off* (zero), leaving the paper pipeline untouched
/// unless a deployment opts in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Admission {
    /// Heartbeat lease in timestamps: a client with no admitted state
    /// for `lease` time units transitions Healthy → Dropped. `0`
    /// disables session tracking entirely.
    pub lease: u64,
    /// Grace period in timestamps after the lease expires: a Dropped
    /// client with still no heartbeat is Ejected (its session record
    /// is removed; a later report re-admits it as a fresh session).
    pub grace: u64,
    /// Upper bound on states admitted per epoch (the global drained
    /// batch, so the bound is shard-count invariant). `0` = unbounded.
    pub queue_cap: usize,
    /// What to do with the overflow when `queue_cap` is exceeded.
    pub policy: AdmissionPolicy,
    /// Degraded-epoch threshold: when the admitted batch still exceeds
    /// this, the epoch sheds Phase B refinement (FSA-overlap candidate
    /// generation) and serves own-FSA selections only, recording the
    /// epoch in [`crate::stats::AdmissionStats::degraded_epochs`].
    /// `0` = never degrade.
    pub degrade_threshold: usize,
}

impl Admission {
    /// True when session tracking is on (`lease > 0`).
    #[inline]
    pub fn sessions_enabled(&self) -> bool {
        self.lease > 0
    }
}

/// Full configuration of a hot-motion-path deployment.
///
/// Defaults mirror Table 2 of the paper: `eps = 10` m, `W = 100`
/// timestamps, epoch `Lambda = 10` timestamps, `k = 10`.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Tolerance model.
    pub tolerance: Tolerance,
    /// Sliding window `W` bounding hotness.
    pub window: SlidingWindow,
    /// Epoch clock (`Lambda`).
    pub epochs: EpochClock,
    /// Number of hottest paths to report.
    pub k: usize,
    /// Grid-index cell side in meters.
    pub grid_cell: f64,
    /// Quantization grain for exact vertex identity (meters). Vertices
    /// within the same grain cell are treated as the same vertex.
    pub vertex_grain: f64,
    /// Coordinator shards: the grid index and hotness table are
    /// partitioned by start-vertex cell key and epochs run Phase A on
    /// one scoped thread per shard. `1` (the default) is the sequential
    /// coordinator; results are identical at every shard count.
    pub shards: usize,
    /// Session lifecycle and admission-control knobs (all off by
    /// default).
    pub admission: Admission,
}

impl Config {
    /// The paper's default parameterization (Table 2).
    pub fn paper_defaults() -> Self {
        Config {
            tolerance: Tolerance::crisp(10.0),
            window: SlidingWindow::new(100),
            epochs: EpochClock::new(10),
            k: 10,
            grid_cell: 250.0,
            vertex_grain: 1e-3,
            shards: 1,
            admission: Admission::default(),
        }
    }

    /// Builder-style tolerance override.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style window override.
    pub fn with_window(mut self, w: u64) -> Self {
        self.window = SlidingWindow::new(w);
        self
    }

    /// Builder-style epoch override.
    pub fn with_epoch(mut self, lambda: u64) -> Self {
        self.epochs = EpochClock::new(lambda);
        self
    }

    /// Builder-style `k` override.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self
    }

    /// Builder-style grid-cell override.
    pub fn with_grid_cell(mut self, cell: f64) -> Self {
        assert!(cell > 0.0, "grid cell must be positive");
        self.grid_cell = cell;
        self
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Builder-style heartbeat lease: enables session tracking with the
    /// given lease and post-lease ejection grace (both in timestamps).
    pub fn with_lease(mut self, lease: u64, grace: u64) -> Self {
        assert!(lease > 0, "lease must be positive (0 disables sessions)");
        self.admission.lease = lease;
        self.admission.grace = grace;
        self
    }

    /// Builder-style admission cap: bounds the per-epoch admitted batch
    /// at `queue_cap` states, resolved by `policy`.
    pub fn with_admission_cap(mut self, queue_cap: usize, policy: AdmissionPolicy) -> Self {
        assert!(queue_cap > 0, "queue cap must be positive (0 disables the bound)");
        self.admission.queue_cap = queue_cap;
        self.admission.policy = policy;
        self
    }

    /// Builder-style degraded-epoch threshold: epochs whose admitted
    /// batch exceeds it shed Phase B refinement.
    pub fn with_degrade_threshold(mut self, threshold: usize) -> Self {
        assert!(threshold > 0, "degrade threshold must be positive (0 disables it)");
        self.admission.degrade_threshold = threshold;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = Config::paper_defaults();
        assert_eq!(c.tolerance.eps(), 10.0);
        assert_eq!(c.tolerance.delta(), None);
        assert_eq!(c.window.len, 100);
        assert_eq!(c.epochs.lambda, 10);
        assert_eq!(c.k, 10);
    }

    #[test]
    fn builders_compose() {
        let c = Config::paper_defaults()
            .with_tolerance(Tolerance::uncertain(5.0, 0.1))
            .with_window(50)
            .with_epoch(5)
            .with_k(20)
            .with_grid_cell(100.0)
            .with_shards(4);
        assert_eq!(c.tolerance.eps(), 5.0);
        assert_eq!(c.tolerance.delta(), Some(0.1));
        assert_eq!(c.window.len, 50);
        assert_eq!(c.epochs.lambda, 5);
        assert_eq!(c.k, 20);
        assert_eq!(c.grid_cell, 100.0);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn defaults_are_sequential() {
        assert_eq!(Config::paper_defaults().shards, 1);
    }

    #[test]
    fn admission_defaults_are_off_and_builders_compose() {
        let c = Config::paper_defaults();
        assert!(!c.admission.sessions_enabled());
        assert_eq!(c.admission.queue_cap, 0);
        assert_eq!(c.admission.degrade_threshold, 0);
        let c = c
            .with_lease(30, 10)
            .with_admission_cap(500, AdmissionPolicy::ShedOldest)
            .with_degrade_threshold(400);
        assert!(c.admission.sessions_enabled());
        assert_eq!(c.admission.lease, 30);
        assert_eq!(c.admission.grace, 10);
        assert_eq!(c.admission.queue_cap, 500);
        assert_eq!(c.admission.policy, AdmissionPolicy::ShedOldest);
        assert_eq!(c.admission.degrade_threshold, 400);
    }

    #[test]
    fn admission_policy_parse_display_raw_roundtrip() {
        for p in
            [AdmissionPolicy::Reject, AdmissionPolicy::ShedOldest, AdmissionPolicy::EjectSlowest]
        {
            assert_eq!(AdmissionPolicy::parse(&p.to_string()), Some(p));
            assert_eq!(AdmissionPolicy::from_raw(p.as_raw()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("nope"), None);
        assert_eq!(AdmissionPolicy::from_raw(99), None);
    }

    #[test]
    #[should_panic(expected = "lease must be positive")]
    fn rejects_zero_lease() {
        let _ = Config::paper_defaults().with_lease(0, 5);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn rejects_zero_shards() {
        let _ = Config::paper_defaults().with_shards(0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_non_positive_eps() {
        let _ = Tolerance::crisp(0.0);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn rejects_bad_delta() {
        let _ = Tolerance::uncertain(1.0, 1.0);
    }
}
