//! Framework configuration: tolerance model, window, epochs, grid.
//!
//! [`Config`] is constructed either from [`Config::paper_defaults`]
//! plus the chainable `with_*` setters (which panic on a bad value —
//! convenient in tests and examples), or through [`Config::builder`],
//! which defers all validation to [`ConfigBuilder::build`] and returns
//! a typed [`ConfigError`] instead of panicking — the right entry point
//! for servers parsing untrusted configuration.

use crate::time::{EpochClock, SlidingWindow};

/// A typed parse failure for the CLI-facing enums ([`AdmissionPolicy`],
/// [`EngineKind`](crate::engine::EngineKind),
/// `FallbackPolicy`), carrying what was being parsed, the offending
/// input, and the accepted values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    what: &'static str,
    got: String,
    expected: &'static str,
}

impl ParseError {
    /// A parse failure of a `what` value: `got` was seen, `expected`
    /// describes the accepted forms.
    pub fn new(what: &'static str, got: &str, expected: &'static str) -> Self {
        ParseError { what, got: got.to_string(), expected }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {} {:?}: expected {}", self.what, self.got, self.expected)
    }
}

impl std::error::Error for ParseError {}

/// The tolerance model of Section 3.1: either a crisp `eps`, or the
/// uncertainty-aware `(eps, delta)` pair in which a location is *close*
/// when it is within `eps` with probability at least `1 - delta`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Tolerance {
    /// Deterministic tolerance `eps` (meters, max-distance).
    Crisp {
        /// Tolerance radius in meters.
        eps: f64,
    },
    /// Probabilistic tolerance `(eps, delta)` for Gaussian measurements.
    Uncertain {
        /// Tolerance radius in meters.
        eps: f64,
        /// Permitted failure probability in `(0, 1)`.
        delta: f64,
    },
}

impl Tolerance {
    /// Crisp tolerance constructor.
    pub fn crisp(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        Tolerance::Crisp { eps }
    }

    /// Probabilistic tolerance constructor.
    pub fn uncertain(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1), got {delta}");
        Tolerance::Uncertain { eps, delta }
    }

    /// The `eps` radius, under either model.
    #[inline]
    pub fn eps(&self) -> f64 {
        match *self {
            Tolerance::Crisp { eps } | Tolerance::Uncertain { eps, .. } => eps,
        }
    }

    /// The failure probability, when probabilistic.
    #[inline]
    pub fn delta(&self) -> Option<f64> {
        match *self {
            Tolerance::Crisp { .. } => None,
            Tolerance::Uncertain { delta, .. } => Some(delta),
        }
    }
}

/// What the coordinator does when an epoch's drained ingest exceeds
/// [`Admission::queue_cap`]. Enforcement happens at the epoch boundary
/// (inside the drain-ingest stage), so every backend and shard count
/// sees the identical global batch and makes the identical decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdmissionPolicy {
    /// Refuse the newest arrivals beyond the cap (tail drop).
    #[default]
    Reject,
    /// Shed the oldest queued states to make room for new arrivals.
    ShedOldest,
    /// Eject the client with the stalest heartbeat among those in the
    /// batch (removing all of its queued states), repeating until the
    /// batch fits. Requires session tracking for staleness; without it
    /// the victim is the client of the oldest queued state.
    EjectSlowest,
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<AdmissionPolicy, ParseError> {
        match s {
            "reject" => Ok(AdmissionPolicy::Reject),
            "shed-oldest" => Ok(AdmissionPolicy::ShedOldest),
            "eject-slowest" => Ok(AdmissionPolicy::EjectSlowest),
            other => Err(ParseError::new(
                "admission policy",
                other,
                "reject | shed-oldest | eject-slowest",
            )),
        }
    }
}

impl AdmissionPolicy {
    /// Parses a CLI tag (`reject` / `shed-oldest` / `eject-slowest`).
    /// Thin shim over the [`FromStr`](std::str::FromStr) impl.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        s.parse().ok()
    }

    /// Stable numeric encoding (checkpoint config echo).
    pub fn as_raw(self) -> u64 {
        match self {
            AdmissionPolicy::Reject => 0,
            AdmissionPolicy::ShedOldest => 1,
            AdmissionPolicy::EjectSlowest => 2,
        }
    }

    /// Decodes [`AdmissionPolicy::as_raw`].
    pub fn from_raw(raw: u64) -> Option<AdmissionPolicy> {
        match raw {
            0 => Some(AdmissionPolicy::Reject),
            1 => Some(AdmissionPolicy::ShedOldest),
            2 => Some(AdmissionPolicy::EjectSlowest),
            _ => None,
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::ShedOldest => "shed-oldest",
            AdmissionPolicy::EjectSlowest => "eject-slowest",
        })
    }
}

/// Robustness knobs for the serving front door: heartbeat leases for
/// the client-session lifecycle and a bound on per-epoch ingest. All
/// default to *off* (zero), leaving the paper pipeline untouched
/// unless a deployment opts in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Admission {
    /// Heartbeat lease in timestamps: a client with no admitted state
    /// for `lease` time units transitions Healthy → Dropped. `0`
    /// disables session tracking entirely.
    pub lease: u64,
    /// Grace period in timestamps after the lease expires: a Dropped
    /// client with still no heartbeat is Ejected (its session record
    /// is removed; a later report re-admits it as a fresh session).
    pub grace: u64,
    /// Upper bound on states admitted per epoch (the global drained
    /// batch, so the bound is shard-count invariant). `0` = unbounded.
    pub queue_cap: usize,
    /// What to do with the overflow when `queue_cap` is exceeded.
    pub policy: AdmissionPolicy,
    /// Degraded-epoch threshold: when the admitted batch still exceeds
    /// this, the epoch sheds Phase B refinement (FSA-overlap candidate
    /// generation) and serves own-FSA selections only, recording the
    /// epoch in [`crate::stats::AdmissionStats::degraded_epochs`].
    /// `0` = never degrade.
    pub degrade_threshold: usize,
}

impl Admission {
    /// True when session tracking is on (`lease > 0`).
    #[inline]
    pub fn sessions_enabled(&self) -> bool {
        self.lease > 0
    }
}

/// Full configuration of a hot-motion-path deployment.
///
/// Defaults mirror Table 2 of the paper: `eps = 10` m, `W = 100`
/// timestamps, epoch `Lambda = 10` timestamps, `k = 10`.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Tolerance model.
    pub tolerance: Tolerance,
    /// Sliding window `W` bounding hotness.
    pub window: SlidingWindow,
    /// Epoch clock (`Lambda`).
    pub epochs: EpochClock,
    /// Number of hottest paths to report.
    pub k: usize,
    /// Grid-index cell side in meters.
    pub grid_cell: f64,
    /// Quantization grain for exact vertex identity (meters). Vertices
    /// within the same grain cell are treated as the same vertex.
    pub vertex_grain: f64,
    /// Coordinator shards: the grid index and hotness table are
    /// partitioned by start-vertex cell key and epochs run Phase A on
    /// one scoped thread per shard. `1` (the default) is the sequential
    /// coordinator; results are identical at every shard count.
    pub shards: usize,
    /// Phase-B eval workers: the FSA-overlap refinement partitions the
    /// deferred set by grid region and evaluates region chunks on this
    /// many scoped threads with work-stealing. `1` (the default) is the
    /// sequential Phase B; the coordinator clamps the request to
    /// `available_parallelism()`, and results are identical at every
    /// worker count.
    pub phase_b_workers: usize,
    /// Session lifecycle and admission-control knobs (all off by
    /// default).
    pub admission: Admission,
}

impl Config {
    /// The paper's default parameterization (Table 2).
    pub fn paper_defaults() -> Self {
        Config {
            tolerance: Tolerance::crisp(10.0),
            window: SlidingWindow::new(100),
            epochs: EpochClock::new(10),
            k: 10,
            grid_cell: 250.0,
            vertex_grain: 1e-3,
            shards: 1,
            phase_b_workers: 1,
            admission: Admission::default(),
        }
    }

    /// A validating builder seeded with the paper defaults. Unlike the
    /// `with_*` setters, nothing is checked until
    /// [`build`](ConfigBuilder::build), which returns a typed
    /// [`ConfigError`] covering both per-field and cross-field
    /// invariants instead of panicking.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::from_config(Config::paper_defaults())
    }

    /// Re-opens this config as a builder (used by the `with_*` shims).
    pub fn to_builder(self) -> ConfigBuilder {
        ConfigBuilder::from_config(self)
    }

    fn rebuilt(builder: ConfigBuilder) -> Config {
        builder.build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builder-style tolerance override.
    pub fn with_tolerance(self, tolerance: Tolerance) -> Self {
        Config::rebuilt(self.to_builder().tolerance(tolerance))
    }

    /// Builder-style window override.
    pub fn with_window(self, w: u64) -> Self {
        Config::rebuilt(self.to_builder().window(w))
    }

    /// Builder-style epoch override.
    pub fn with_epoch(self, lambda: u64) -> Self {
        Config::rebuilt(self.to_builder().epoch(lambda))
    }

    /// Builder-style `k` override.
    pub fn with_k(self, k: usize) -> Self {
        Config::rebuilt(self.to_builder().k(k))
    }

    /// Builder-style grid-cell override.
    pub fn with_grid_cell(self, cell: f64) -> Self {
        Config::rebuilt(self.to_builder().grid_cell(cell))
    }

    /// Builder-style shard-count override.
    pub fn with_shards(self, shards: usize) -> Self {
        Config::rebuilt(self.to_builder().shards(shards))
    }

    /// Builder-style Phase-B worker-count override.
    pub fn with_phase_b_workers(self, workers: usize) -> Self {
        Config::rebuilt(self.to_builder().phase_b_workers(workers))
    }

    /// Builder-style heartbeat lease: enables session tracking with the
    /// given lease and post-lease ejection grace (both in timestamps).
    pub fn with_lease(self, lease: u64, grace: u64) -> Self {
        Config::rebuilt(self.to_builder().lease(lease, grace))
    }

    /// Builder-style admission cap: bounds the per-epoch admitted batch
    /// at `queue_cap` states, resolved by `policy`.
    pub fn with_admission_cap(self, queue_cap: usize, policy: AdmissionPolicy) -> Self {
        Config::rebuilt(self.to_builder().admission_cap(queue_cap, policy))
    }

    /// Builder-style degraded-epoch threshold: epochs whose admitted
    /// batch exceeds it shed Phase B refinement.
    pub fn with_degrade_threshold(self, threshold: usize) -> Self {
        Config::rebuilt(self.to_builder().degrade_threshold(threshold))
    }
}

/// A configuration that failed to validate, and why. Produced by
/// [`ConfigBuilder::build`]; the `with_*` setters panic with the same
/// message.
#[derive(Clone, PartialEq, Debug)]
pub enum ConfigError {
    /// A field that must be strictly positive was zero (or, for the
    /// float-valued fields, non-positive / non-finite).
    NonPositive(&'static str),
    /// The epoch length exceeds the sliding window: an epoch would
    /// outlive every traversal it admits.
    EpochExceedsWindow {
        /// Configured epoch length `Lambda`.
        epoch: u64,
        /// Configured window length `W`.
        window: u64,
    },
    /// The heartbeat lease is at least as long as the sliding window:
    /// every traversal a client reported would expire from the window
    /// before its session could ever be considered stale.
    LeaseOutlivesWindow {
        /// Configured heartbeat lease.
        lease: u64,
        /// Configured window length `W`.
        window: u64,
    },
    /// The degraded-epoch threshold is at or above the admission queue
    /// cap. The threshold is tested against the *post-cap* admitted
    /// batch, which never exceeds the cap — such a threshold could
    /// never fire, so the combination is rejected as unreachable.
    DegradeAtOrAboveCap {
        /// Configured degraded-epoch threshold.
        threshold: usize,
        /// Configured admission queue cap.
        cap: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::NonPositive(what) => write!(f, "{what} must be positive"),
            ConfigError::EpochExceedsWindow { epoch, window } => write!(
                f,
                "epoch length {epoch} must not exceed the window length {window} \
                 (an epoch would outlive its own traversals)"
            ),
            ConfigError::LeaseOutlivesWindow { lease, window } => write!(
                f,
                "heartbeat lease {lease} must be shorter than the window length {window} \
                 (a session can only go stale within the window)"
            ),
            ConfigError::DegradeAtOrAboveCap { threshold, cap } => write!(
                f,
                "degrade threshold {threshold} must be below the admission queue cap {cap} \
                 (the admitted batch never exceeds the cap, so it could never fire)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Deferred-validation builder for [`Config`].
///
/// Setters never panic; [`build`](Self::build) checks everything at
/// once — per-field positivity plus the cross-field invariants
/// (`epoch <= window`, `lease < window` when sessions are on, and
/// `degrade threshold < queue cap` when both are set) — and returns the
/// first violation as a [`ConfigError`].
///
/// ```
/// use hotpath_core::prelude::*;
///
/// let config = Config::builder().window(60).epoch(5).k(20).build().unwrap();
/// assert_eq!(config.k, 20);
///
/// // lease 80 under window 60: rejected at build, not at use.
/// let err = Config::builder().window(60).lease(80, 10).build().unwrap_err();
/// assert!(matches!(err, ConfigError::LeaseOutlivesWindow { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    tolerance: Tolerance,
    window: u64,
    epoch: u64,
    k: usize,
    grid_cell: f64,
    vertex_grain: f64,
    shards: usize,
    phase_b_workers: usize,
    admission: Admission,
    /// Whether `lease()` / `admission_cap()` / `degrade_threshold()`
    /// were called explicitly: an explicit zero is an error, while the
    /// zero *default* just means "feature off".
    lease_set: bool,
    cap_set: bool,
    degrade_set: bool,
}

impl ConfigBuilder {
    /// A builder seeded from an existing config (all fields carried
    /// over; features already on stay subject to the cross-field
    /// checks, but their zero-off defaults remain valid).
    pub fn from_config(config: Config) -> Self {
        ConfigBuilder {
            tolerance: config.tolerance,
            window: config.window.len,
            epoch: config.epochs.lambda,
            k: config.k,
            grid_cell: config.grid_cell,
            vertex_grain: config.vertex_grain,
            shards: config.shards,
            phase_b_workers: config.phase_b_workers,
            admission: config.admission,
            lease_set: false,
            cap_set: false,
            degrade_set: false,
        }
    }

    /// Tolerance model.
    pub fn tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sliding-window length `W` in timestamps.
    pub fn window(mut self, w: u64) -> Self {
        self.window = w;
        self
    }

    /// Epoch length `Lambda` in timestamps.
    pub fn epoch(mut self, lambda: u64) -> Self {
        self.epoch = lambda;
        self
    }

    /// Number of hottest paths to report.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Grid-index cell side in meters.
    pub fn grid_cell(mut self, cell: f64) -> Self {
        self.grid_cell = cell;
        self
    }

    /// Vertex-identity quantization grain in meters.
    pub fn vertex_grain(mut self, grain: f64) -> Self {
        self.vertex_grain = grain;
        self
    }

    /// Coordinator shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Phase-B eval worker count.
    pub fn phase_b_workers(mut self, workers: usize) -> Self {
        self.phase_b_workers = workers;
        self
    }

    /// Heartbeat lease and post-lease ejection grace (enables session
    /// tracking).
    pub fn lease(mut self, lease: u64, grace: u64) -> Self {
        self.admission.lease = lease;
        self.admission.grace = grace;
        self.lease_set = true;
        self
    }

    /// Per-epoch admission cap and its overflow policy.
    pub fn admission_cap(mut self, queue_cap: usize, policy: AdmissionPolicy) -> Self {
        self.admission.queue_cap = queue_cap;
        self.admission.policy = policy;
        self.cap_set = true;
        self
    }

    /// Degraded-epoch threshold.
    pub fn degrade_threshold(mut self, threshold: usize) -> Self {
        self.admission.degrade_threshold = threshold;
        self.degrade_set = true;
        self
    }

    /// Validates every invariant and produces the config.
    pub fn build(self) -> Result<Config, ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::NonPositive("window length"));
        }
        if self.epoch == 0 {
            return Err(ConfigError::NonPositive("epoch length"));
        }
        if self.k == 0 {
            return Err(ConfigError::NonPositive("k"));
        }
        if !(self.grid_cell > 0.0 && self.grid_cell.is_finite()) {
            return Err(ConfigError::NonPositive("grid cell"));
        }
        if !(self.vertex_grain > 0.0 && self.vertex_grain.is_finite()) {
            return Err(ConfigError::NonPositive("vertex grain"));
        }
        if self.shards == 0 {
            return Err(ConfigError::NonPositive("shard count"));
        }
        if self.phase_b_workers == 0 {
            return Err(ConfigError::NonPositive("phase B workers"));
        }
        if self.lease_set && self.admission.lease == 0 {
            return Err(ConfigError::NonPositive("lease"));
        }
        if self.cap_set && self.admission.queue_cap == 0 {
            return Err(ConfigError::NonPositive("queue cap"));
        }
        if self.degrade_set && self.admission.degrade_threshold == 0 {
            return Err(ConfigError::NonPositive("degrade threshold"));
        }
        if self.epoch > self.window {
            return Err(ConfigError::EpochExceedsWindow { epoch: self.epoch, window: self.window });
        }
        if self.admission.sessions_enabled() && self.admission.lease >= self.window {
            return Err(ConfigError::LeaseOutlivesWindow {
                lease: self.admission.lease,
                window: self.window,
            });
        }
        if self.admission.queue_cap > 0
            && self.admission.degrade_threshold > 0
            && self.admission.degrade_threshold >= self.admission.queue_cap
        {
            return Err(ConfigError::DegradeAtOrAboveCap {
                threshold: self.admission.degrade_threshold,
                cap: self.admission.queue_cap,
            });
        }
        Ok(Config {
            tolerance: self.tolerance,
            window: SlidingWindow::new(self.window),
            epochs: EpochClock::new(self.epoch),
            k: self.k,
            grid_cell: self.grid_cell,
            vertex_grain: self.vertex_grain,
            shards: self.shards,
            phase_b_workers: self.phase_b_workers,
            admission: self.admission,
        })
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = Config::paper_defaults();
        assert_eq!(c.tolerance.eps(), 10.0);
        assert_eq!(c.tolerance.delta(), None);
        assert_eq!(c.window.len, 100);
        assert_eq!(c.epochs.lambda, 10);
        assert_eq!(c.k, 10);
    }

    #[test]
    fn builders_compose() {
        let c = Config::paper_defaults()
            .with_tolerance(Tolerance::uncertain(5.0, 0.1))
            .with_window(50)
            .with_epoch(5)
            .with_k(20)
            .with_grid_cell(100.0)
            .with_shards(4)
            .with_phase_b_workers(8);
        assert_eq!(c.tolerance.eps(), 5.0);
        assert_eq!(c.tolerance.delta(), Some(0.1));
        assert_eq!(c.window.len, 50);
        assert_eq!(c.epochs.lambda, 5);
        assert_eq!(c.k, 20);
        assert_eq!(c.grid_cell, 100.0);
        assert_eq!(c.shards, 4);
        assert_eq!(c.phase_b_workers, 8);
    }

    #[test]
    fn defaults_are_sequential() {
        assert_eq!(Config::paper_defaults().shards, 1);
        assert_eq!(Config::paper_defaults().phase_b_workers, 1);
    }

    #[test]
    fn admission_defaults_are_off_and_builders_compose() {
        let c = Config::paper_defaults();
        assert!(!c.admission.sessions_enabled());
        assert_eq!(c.admission.queue_cap, 0);
        assert_eq!(c.admission.degrade_threshold, 0);
        let c = c
            .with_lease(30, 10)
            .with_admission_cap(500, AdmissionPolicy::ShedOldest)
            .with_degrade_threshold(400);
        assert!(c.admission.sessions_enabled());
        assert_eq!(c.admission.lease, 30);
        assert_eq!(c.admission.grace, 10);
        assert_eq!(c.admission.queue_cap, 500);
        assert_eq!(c.admission.policy, AdmissionPolicy::ShedOldest);
        assert_eq!(c.admission.degrade_threshold, 400);
    }

    #[test]
    fn admission_policy_parse_display_raw_roundtrip() {
        for p in
            [AdmissionPolicy::Reject, AdmissionPolicy::ShedOldest, AdmissionPolicy::EjectSlowest]
        {
            assert_eq!(AdmissionPolicy::parse(&p.to_string()), Some(p));
            assert_eq!(AdmissionPolicy::from_raw(p.as_raw()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("nope"), None);
        assert_eq!(AdmissionPolicy::from_raw(99), None);
    }

    #[test]
    fn builder_validates_at_build_not_at_set() {
        // Transiently inconsistent states are fine mid-chain...
        let b = Config::builder().epoch(500).window(1000).lease(40, 10);
        // ...and the final state validates.
        let c = b.build().unwrap();
        assert_eq!(c.epochs.lambda, 500);
        assert_eq!(c.window.len, 1000);
        assert_eq!(c.admission.lease, 40);
    }

    #[test]
    fn builder_rejects_cross_field_violations() {
        assert_eq!(
            Config::builder().window(20).epoch(30).build().unwrap_err(),
            ConfigError::EpochExceedsWindow { epoch: 30, window: 20 }
        );
        assert_eq!(
            Config::builder().window(50).lease(50, 5).build().unwrap_err(),
            ConfigError::LeaseOutlivesWindow { lease: 50, window: 50 }
        );
        assert_eq!(
            Config::builder()
                .admission_cap(20, AdmissionPolicy::Reject)
                .degrade_threshold(20)
                .build()
                .unwrap_err(),
            ConfigError::DegradeAtOrAboveCap { threshold: 20, cap: 20 }
        );
        // Either knob alone is unconstrained by the other.
        assert!(Config::builder().degrade_threshold(5).build().is_ok());
        assert!(Config::builder().admission_cap(5, AdmissionPolicy::Reject).build().is_ok());
    }

    #[test]
    fn builder_rejects_non_positive_fields() {
        for (builder, what) in [
            (Config::builder().window(0), "window length"),
            (Config::builder().epoch(0), "epoch length"),
            (Config::builder().k(0), "k"),
            (Config::builder().grid_cell(0.0), "grid cell"),
            (Config::builder().grid_cell(f64::NAN), "grid cell"),
            (Config::builder().vertex_grain(0.0), "vertex grain"),
            (Config::builder().shards(0), "shard count"),
            (Config::builder().phase_b_workers(0), "phase B workers"),
            (Config::builder().lease(0, 5), "lease"),
            (Config::builder().admission_cap(0, AdmissionPolicy::Reject), "queue cap"),
            (Config::builder().degrade_threshold(0), "degrade threshold"),
        ] {
            assert_eq!(builder.build().unwrap_err(), ConfigError::NonPositive(what));
        }
    }

    #[test]
    fn builder_error_messages_name_the_violation() {
        let msg = ConfigError::DegradeAtOrAboveCap { threshold: 9, cap: 8 }.to_string();
        assert!(msg.contains("degrade threshold 9"), "unhelpful message: {msg}");
        assert!(msg.contains("cap 8"), "unhelpful message: {msg}");
        let msg = ConfigError::NonPositive("queue cap").to_string();
        assert_eq!(msg, "queue cap must be positive");
    }

    #[test]
    fn admission_policy_from_str_reports_expected_values() {
        assert_eq!("shed-oldest".parse::<AdmissionPolicy>(), Ok(AdmissionPolicy::ShedOldest));
        let err = "drop-all".parse::<AdmissionPolicy>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("admission policy"), "error must say what was parsed: {msg}");
        assert!(msg.contains("\"drop-all\""), "error must echo the input: {msg}");
        assert!(
            msg.contains("reject | shed-oldest | eject-slowest"),
            "error must list values: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "lease must be positive")]
    fn rejects_zero_lease() {
        let _ = Config::paper_defaults().with_lease(0, 5);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn rejects_zero_shards() {
        let _ = Config::paper_defaults().with_shards(0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_non_positive_eps() {
        let _ = Tolerance::crisp(0.0);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn rejects_bad_delta() {
        let _ = Tolerance::uncertain(1.0, 1.0);
    }
}
