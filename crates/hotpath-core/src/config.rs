//! Framework configuration: tolerance model, window, epochs, grid.

use crate::time::{EpochClock, SlidingWindow};

/// The tolerance model of Section 3.1: either a crisp `eps`, or the
/// uncertainty-aware `(eps, delta)` pair in which a location is *close*
/// when it is within `eps` with probability at least `1 - delta`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Tolerance {
    /// Deterministic tolerance `eps` (meters, max-distance).
    Crisp {
        /// Tolerance radius in meters.
        eps: f64,
    },
    /// Probabilistic tolerance `(eps, delta)` for Gaussian measurements.
    Uncertain {
        /// Tolerance radius in meters.
        eps: f64,
        /// Permitted failure probability in `(0, 1)`.
        delta: f64,
    },
}

impl Tolerance {
    /// Crisp tolerance constructor.
    pub fn crisp(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        Tolerance::Crisp { eps }
    }

    /// Probabilistic tolerance constructor.
    pub fn uncertain(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive, got {eps}");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1), got {delta}");
        Tolerance::Uncertain { eps, delta }
    }

    /// The `eps` radius, under either model.
    #[inline]
    pub fn eps(&self) -> f64 {
        match *self {
            Tolerance::Crisp { eps } | Tolerance::Uncertain { eps, .. } => eps,
        }
    }

    /// The failure probability, when probabilistic.
    #[inline]
    pub fn delta(&self) -> Option<f64> {
        match *self {
            Tolerance::Crisp { .. } => None,
            Tolerance::Uncertain { delta, .. } => Some(delta),
        }
    }
}

/// Full configuration of a hot-motion-path deployment.
///
/// Defaults mirror Table 2 of the paper: `eps = 10` m, `W = 100`
/// timestamps, epoch `Lambda = 10` timestamps, `k = 10`.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Tolerance model.
    pub tolerance: Tolerance,
    /// Sliding window `W` bounding hotness.
    pub window: SlidingWindow,
    /// Epoch clock (`Lambda`).
    pub epochs: EpochClock,
    /// Number of hottest paths to report.
    pub k: usize,
    /// Grid-index cell side in meters.
    pub grid_cell: f64,
    /// Quantization grain for exact vertex identity (meters). Vertices
    /// within the same grain cell are treated as the same vertex.
    pub vertex_grain: f64,
    /// Coordinator shards: the grid index and hotness table are
    /// partitioned by start-vertex cell key and epochs run Phase A on
    /// one scoped thread per shard. `1` (the default) is the sequential
    /// coordinator; results are identical at every shard count.
    pub shards: usize,
}

impl Config {
    /// The paper's default parameterization (Table 2).
    pub fn paper_defaults() -> Self {
        Config {
            tolerance: Tolerance::crisp(10.0),
            window: SlidingWindow::new(100),
            epochs: EpochClock::new(10),
            k: 10,
            grid_cell: 250.0,
            vertex_grain: 1e-3,
            shards: 1,
        }
    }

    /// Builder-style tolerance override.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style window override.
    pub fn with_window(mut self, w: u64) -> Self {
        self.window = SlidingWindow::new(w);
        self
    }

    /// Builder-style epoch override.
    pub fn with_epoch(mut self, lambda: u64) -> Self {
        self.epochs = EpochClock::new(lambda);
        self
    }

    /// Builder-style `k` override.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self
    }

    /// Builder-style grid-cell override.
    pub fn with_grid_cell(mut self, cell: f64) -> Self {
        assert!(cell > 0.0, "grid cell must be positive");
        self.grid_cell = cell;
        self
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = Config::paper_defaults();
        assert_eq!(c.tolerance.eps(), 10.0);
        assert_eq!(c.tolerance.delta(), None);
        assert_eq!(c.window.len, 100);
        assert_eq!(c.epochs.lambda, 10);
        assert_eq!(c.k, 10);
    }

    #[test]
    fn builders_compose() {
        let c = Config::paper_defaults()
            .with_tolerance(Tolerance::uncertain(5.0, 0.1))
            .with_window(50)
            .with_epoch(5)
            .with_k(20)
            .with_grid_cell(100.0)
            .with_shards(4);
        assert_eq!(c.tolerance.eps(), 5.0);
        assert_eq!(c.tolerance.delta(), Some(0.1));
        assert_eq!(c.window.len, 50);
        assert_eq!(c.epochs.lambda, 5);
        assert_eq!(c.k, 20);
        assert_eq!(c.grid_cell, 100.0);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn defaults_are_sequential() {
        assert_eq!(Config::paper_defaults().shards, 1);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn rejects_zero_shards() {
        let _ = Config::paper_defaults().with_shards(0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_non_positive_eps() {
        let _ = Tolerance::crisp(0.0);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn rejects_bad_delta() {
        let _ = Tolerance::uncertain(1.0, 1.0);
    }
}
