//! Sliding-window hotness maintenance (Section 5.2).
//!
//! A hash table keeps, per motion path, the number of crossings within
//! the last `W` time units; an event queue (min-heap on expiry time)
//! decrements counters as crossings age out. When a counter reaches
//! zero the path id is surfaced so the caller can delete the path from
//! the MotionPath index.
//!
//! Alongside the counters the table maintains an **incremental rank
//! structure**: an ordered set keyed by `(hotness desc, length desc,
//! id asc)` — exactly the coordinator's top-k order — updated on every
//! [`Hotness::record_crossing`], [`Hotness::advance`], and
//! [`Hotness::forget`]. Top-k queries walk the first `k` entries in
//! O(k + log P) instead of materializing and sorting the whole hot set.

use crate::fxhash::FxHashMap;
use crate::motion_path::PathId;
use crate::time::{SlidingWindow, Timestamp};
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// Rank-set key: `(hotness desc, length desc, id asc)`. Lengths are
/// non-negative finite floats, so their IEEE-754 bit patterns order the
/// same way `f64::total_cmp` does.
type RankKey = (Reverse<u32>, Reverse<u64>, PathId);

#[inline]
fn rank_key(count: u32, len_bits: u64, id: PathId) -> RankKey {
    (Reverse(count), Reverse(len_bits), id)
}

/// Per-path hotness record: the live crossing count and the path's
/// length (IEEE-754 bit pattern), pinned at first recording — path
/// geometry is immutable, so every crossing of one id carries the same
/// length. Records live in a contiguous slab so the checkpoint's heat
/// section is a direct memcpy of the backing array.
///
/// `repr(C)`: three consecutive `u64`s, 24 bytes, no padding. The count
/// is widened to `u64` here purely for layout; it never exceeds `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct HeatEntry {
    /// The hot path.
    pub id: PathId,
    /// Path length bit pattern (`f64::to_bits`), the rank tie-break key.
    pub len_bits: u64,
    /// Live crossing count within the window (always `>= 1` in the slab).
    pub count: u64,
}

/// One pending expiry: the counter of `id` decrements at `expiry`
/// (`te + W`, Section 5.2). `repr(C)`: 16 bytes, no padding — the
/// checkpoint's event section is a memcpy of the heap's backing array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct ExpiryEvent {
    /// Expiry timestamp `te + W`.
    pub expiry: Timestamp,
    /// The path whose counter decrements then.
    pub id: PathId,
}

impl ExpiryEvent {
    #[inline]
    fn key(&self) -> (Timestamp, PathId) {
        (self.expiry, self.id)
    }
}

/// A binary min-heap of [`ExpiryEvent`]s over a plain `Vec`, replacing
/// `BinaryHeap<Reverse<(Timestamp, PathId)>>`: the backing array is
/// `repr(C)` records, so a checkpoint serializes it verbatim and a
/// restore re-adopts it verbatim — sift decisions after a restore are
/// bit-for-bit the ones the uninterrupted run would have made.
#[derive(Clone, Debug, Default)]
struct EventHeap {
    a: Vec<ExpiryEvent>,
}

impl EventHeap {
    #[inline]
    fn len(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn peek(&self) -> Option<&ExpiryEvent> {
        self.a.first()
    }

    fn push(&mut self, ev: ExpiryEvent) {
        self.a.push(ev);
        let mut i = self.a.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.a[i].key() < self.a[parent].key() {
                self.a.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<ExpiryEvent> {
        if self.a.is_empty() {
            return None;
        }
        let last = self.a.len() - 1;
        self.a.swap(0, last);
        let out = self.a.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.a.len() && self.a[l].key() < self.a[smallest].key() {
                smallest = l;
            }
            if r < self.a.len() && self.a[r].key() < self.a[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.a.swap(i, smallest);
            i = smallest;
        }
        out
    }

    /// The backing array in heap order (checkpoint section source).
    #[inline]
    fn as_slice(&self) -> &[ExpiryEvent] {
        &self.a
    }

    /// Re-adopts a backing array captured by [`EventHeap::as_slice`].
    /// The caller guarantees `a` is in heap order (it always is when the
    /// bytes come from a CRC-validated checkpoint section).
    fn from_heap_array(a: Vec<ExpiryEvent>) -> Self {
        debug_assert!(
            (1..a.len()).all(|i| a[(i - 1) / 2].key() <= a[i].key()),
            "restored event array violates the heap invariant"
        );
        EventHeap { a }
    }
}

/// Tombstone record for a forgotten id: how many queued expiry events it
/// still owns. `repr(C)`: 16 bytes, no padding (checkpoint section).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct DeadEntry {
    /// The forgotten path.
    pub id: PathId,
    /// Queued events awaiting reclamation (widened `u32`).
    pub events: u64,
}

/// The hotness table plus expiry queue.
#[derive(Clone, Debug)]
pub struct Hotness {
    window: SlidingWindow,
    /// Contiguous per-path records; order is maintenance order (inserts
    /// append, deaths `swap_remove`) and is part of the checkpointed
    /// state, so a restored table continues identically.
    heat: Vec<HeatEntry>,
    /// Path id -> slot in `heat`.
    slot_of: FxHashMap<PathId, u32>,
    /// Incremental top-k: every hot path, ordered hottest-first.
    rank: BTreeSet<RankKey>,
    /// Min-heap of `(expiry, id)`; head is the next interval to expire.
    queue: EventHeap,
    /// Tombstones for [`Hotness::forget`]-ed ids: how many queued events
    /// belong to each forgotten id, so [`Hotness::advance`] can reclaim
    /// them instead of decrementing a live counter.
    dead: FxHashMap<PathId, u32>,
    /// Total events covered by `dead` (kept in sync for O(1) accounting).
    dead_events: usize,
    /// Total crossings ever recorded (diagnostics).
    recorded: u64,
}

impl Hotness {
    /// Creates an empty table over the given window.
    pub fn new(window: SlidingWindow) -> Self {
        Hotness {
            window,
            heat: Vec::new(),
            slot_of: FxHashMap::default(),
            rank: BTreeSet::new(),
            queue: EventHeap::default(),
            dead: FxHashMap::default(),
            dead_events: 0,
            recorded: 0,
        }
    }

    /// The sliding window in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// Records that an object crossed `id`, exiting at `te`: the counter
    /// is incremented and `<te + W, id>` en-heaped (Section 5.2).
    /// `length` is the path's length — the top-k tie-break key — and is
    /// pinned at the first recording of each id (geometry is immutable).
    pub fn record_crossing(&mut self, id: PathId, te: Timestamp, length: f64) {
        debug_assert!(length >= 0.0 && length.is_finite(), "bad path length {length}");
        let slot = *self.slot_of.entry(id).or_insert_with(|| {
            self.heat.push(HeatEntry { id, len_bits: length.to_bits(), count: 0 });
            (self.heat.len() - 1) as u32
        });
        let heat = &mut self.heat[slot as usize];
        if heat.count > 0 {
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
        }
        heat.count += 1;
        self.rank.insert(rank_key(heat.count as u32, heat.len_bits, id));
        self.queue.push(ExpiryEvent { expiry: self.window.expiry_of(te), id });
        self.recorded += 1;
    }

    /// Current hotness of `id` (zero when unknown).
    #[inline]
    pub fn get(&self, id: PathId) -> u32 {
        self.slot_of.get(&id).map(|&s| self.heat[s as usize].count as u32).unwrap_or(0)
    }

    /// Number of paths with positive hotness.
    pub fn len(&self) -> usize {
        self.heat.len()
    }

    /// True when nothing is hot.
    pub fn is_empty(&self) -> bool {
        self.heat.is_empty()
    }

    /// Iterates over `(id, hotness)` pairs with positive hotness.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.heat.iter().map(|e| (e.id, e.count as u32))
    }

    /// Removes the slab record at `slot`, keeping `slot_of` consistent
    /// with the `swap_remove` relocation.
    fn remove_slot(&mut self, slot: u32) {
        let removed = self.heat.swap_remove(slot as usize);
        self.slot_of.remove(&removed.id);
        if let Some(moved) = self.heat.get(slot as usize) {
            self.slot_of.insert(moved.id, slot);
        }
    }

    /// Iterates over `(id, hotness)` pairs hottest-first — the order of
    /// the incremental rank structure: `(hotness desc, length desc,
    /// id asc)`. Taking the first `k` answers a top-k query in
    /// O(k + log P); no sort, no allocation.
    pub fn top_iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.rank.iter().map(|&(Reverse(count), _, id)| (id, count))
    }

    /// Audits the incremental rank structure against the counter table:
    /// the two must describe the same multiset of `(id, hotness,
    /// length)` triples at all times.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.rank.len() != self.heat.len() {
            return Err(format!(
                "rank set has {} entries for {} hot paths",
                self.rank.len(),
                self.heat.len()
            ));
        }
        if self.slot_of.len() != self.heat.len() {
            return Err(format!(
                "slot map has {} entries for {} slab records",
                self.slot_of.len(),
                self.heat.len()
            ));
        }
        for (slot, heat) in self.heat.iter().enumerate() {
            if self.slot_of.get(&heat.id) != Some(&(slot as u32)) {
                return Err(format!("slot map lost {} (slab slot {slot})", heat.id));
            }
            if !self.rank.contains(&rank_key(heat.count as u32, heat.len_bits, heat.id)) {
                return Err(format!("rank set lost {} (hotness {})", heat.id, heat.count));
            }
        }
        // Live-event accounting: every unit of hotness has exactly one
        // pending expiry event (tombstoned events are excluded by
        // `pending_events`).
        let total: usize = self.heat.iter().map(|h| h.count as usize).sum();
        if total != self.pending_events() {
            return Err(format!(
                "{total} units of hotness vs {} pending expiry events",
                self.pending_events()
            ));
        }
        Ok(())
    }

    /// Pending *live* expiry events (diagnostics; equals the sum of
    /// counters). Events tombstoned by [`Hotness::forget`] are excluded
    /// even while they still occupy the queue awaiting reclamation.
    pub fn pending_events(&self) -> usize {
        self.queue.len() - self.dead_events
    }

    /// Physical queue occupancy including not-yet-reclaimed tombstoned
    /// events (diagnostics for leak tests).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Total crossings ever recorded.
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Advances the clock to `now`: de-heaps every event with
    /// `expiry <= now`, decrements the counters, and returns the ids
    /// whose hotness dropped to zero (the caller deletes those paths
    /// from the index).
    pub fn advance(&mut self, now: Timestamp) -> Vec<PathId> {
        let mut died = Vec::new();
        while let Some(&ExpiryEvent { expiry, id }) = self.queue.peek() {
            // Reclaim tombstoned events whenever they surface at the
            // head, regardless of their expiry — forgotten ids must not
            // keep the queue inflated for a whole window.
            if let Some(n) = self.dead.get_mut(&id) {
                self.queue.pop();
                *n -= 1;
                self.dead_events -= 1;
                if *n == 0 {
                    self.dead.remove(&id);
                }
                continue;
            }
            if expiry > now {
                break;
            }
            self.queue.pop();
            // Defensive: a counter should always exist for a live event.
            let Some(&slot) = self.slot_of.get(&id) else { continue };
            let heat = &mut self.heat[slot as usize];
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
            heat.count -= 1;
            if heat.count == 0 {
                self.remove_slot(slot);
                died.push(id);
            } else {
                let heat = *heat;
                self.rank.insert(rank_key(heat.count as u32, heat.len_bits, id));
            }
        }
        died
    }

    /// Drops a path outright (used when the caller removes a path for
    /// reasons other than expiry). The counter's outstanding expiry
    /// events are tombstoned and reclaimed by [`Hotness::advance`] as
    /// they surface at the queue head, so long runs with many forgotten
    /// paths do not accumulate stale events for a whole window.
    ///
    /// Only call this for ids that will never be recorded again: events
    /// carry no generation, so a crossing recorded after `forget` whose
    /// expiry precedes a tombstoned event's would be reclaimed in its
    /// place, letting the stale event keep the counter alive too long.
    pub fn forget(&mut self, id: PathId) {
        if let Some(&slot) = self.slot_of.get(&id) {
            let heat = self.heat[slot as usize];
            self.remove_slot(slot);
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
            if heat.count > 0 {
                *self.dead.entry(id).or_insert(0) += heat.count as u32;
                self.dead_events += heat.count as usize;
            }
        }
    }

    // ---- checkpoint surface -------------------------------------------

    /// The contiguous per-path heat slab (checkpoint section source; the
    /// slab order is state and must be restored verbatim).
    pub fn heat_slice(&self) -> &[HeatEntry] {
        &self.heat
    }

    /// The expiry heap's backing array in heap order (checkpoint section
    /// source; restored verbatim).
    pub fn events_slice(&self) -> &[ExpiryEvent] {
        self.queue.as_slice()
    }

    /// Tombstone records sorted by id (small; collected per checkpoint).
    pub fn dead_entries(&self) -> Vec<DeadEntry> {
        let mut out: Vec<DeadEntry> =
            self.dead.iter().map(|(&id, &n)| DeadEntry { id, events: n as u64 }).collect();
        out.sort_unstable_by_key(|d| d.id);
        out
    }

    /// Rebuilds a table from checkpointed sections: the heat slab and
    /// event array are adopted verbatim; the slot map and rank set are
    /// derived (their contents are pure functions of the slab).
    ///
    /// # Errors
    /// Returns a description when the sections are structurally invalid
    /// (duplicate ids, zero counts, event/counter imbalance) — possible
    /// only for a checkpoint written by a buggy or hostile producer,
    /// since CRC validation happens before this runs.
    pub fn from_checkpoint_parts(
        window: SlidingWindow,
        heat: Vec<HeatEntry>,
        events: Vec<ExpiryEvent>,
        dead: Vec<DeadEntry>,
        recorded: u64,
    ) -> Result<Self, String> {
        let mut slot_of = FxHashMap::default();
        let mut rank = BTreeSet::new();
        for (slot, e) in heat.iter().enumerate() {
            if e.count == 0 || e.count > u64::from(u32::MAX) {
                return Err(format!("heat slab entry {} has count {}", e.id, e.count));
            }
            if slot_of.insert(e.id, slot as u32).is_some() {
                return Err(format!("duplicate heat slab entry for {}", e.id));
            }
            rank.insert(rank_key(e.count as u32, e.len_bits, e.id));
        }
        if (1..events.len()).any(|i| events[(i - 1) / 2].key() > events[i].key()) {
            return Err("event array violates the heap invariant".into());
        }
        let mut dead_map = FxHashMap::default();
        let mut dead_events = 0usize;
        for d in &dead {
            if d.events == 0 || d.events > u64::from(u32::MAX) {
                return Err(format!("tombstone for {} has {} events", d.id, d.events));
            }
            if slot_of.contains_key(&d.id) || dead_map.insert(d.id, d.events as u32).is_some() {
                return Err(format!("conflicting tombstone for {}", d.id));
            }
            dead_events += d.events as usize;
        }
        let live: usize = heat.iter().map(|h| h.count as usize).sum();
        if live + dead_events != events.len() {
            return Err(format!(
                "{live} live + {dead_events} tombstoned events vs {} queued",
                events.len()
            ));
        }
        Ok(Hotness {
            window,
            heat,
            slot_of,
            rank,
            queue: EventHeap::from_heap_array(events),
            dead: dead_map,
            dead_events,
            recorded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(window: u64) -> Hotness {
        Hotness::new(SlidingWindow::new(window))
    }

    #[test]
    fn crossings_accumulate() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        hot.record_crossing(PathId(1), Timestamp(20), 1.0);
        hot.record_crossing(PathId(2), Timestamp(15), 1.0);
        assert_eq!(hot.get(PathId(1)), 2);
        assert_eq!(hot.get(PathId(2)), 1);
        assert_eq!(hot.get(PathId(3)), 0);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot.pending_events(), 3);
        assert_eq!(hot.total_recorded(), 3);
    }

    #[test]
    fn expiry_at_te_plus_w() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        // Still hot one granule before expiry.
        assert!(hot.advance(Timestamp(109)).is_empty());
        assert_eq!(hot.get(PathId(1)), 1);
        // Dies exactly at te + W = 110.
        let died = hot.advance(Timestamp(110));
        assert_eq!(died, vec![PathId(1)]);
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn staggered_crossings_expire_independently() {
        let mut hot = h(50);
        hot.record_crossing(PathId(7), Timestamp(0), 1.0);
        hot.record_crossing(PathId(7), Timestamp(30), 1.0);
        // First crossing expires at 50; path stays hot.
        assert!(hot.advance(Timestamp(50)).is_empty());
        assert_eq!(hot.get(PathId(7)), 1);
        // Second expires at 80; path dies.
        assert_eq!(hot.advance(Timestamp(80)), vec![PathId(7)]);
    }

    #[test]
    fn advance_handles_batched_expiries() {
        let mut hot = h(10);
        for i in 0..5u64 {
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
        }
        let mut died = hot.advance(Timestamp(100));
        died.sort_unstable();
        assert_eq!(died, (0..5).map(PathId).collect::<Vec<_>>());
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn advance_is_idempotent_per_timestamp() {
        let mut hot = h(10);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        assert_eq!(hot.advance(Timestamp(10)), vec![PathId(1)]);
        assert!(hot.advance(Timestamp(10)).is_empty());
        assert!(hot.advance(Timestamp(11)).is_empty());
    }

    #[test]
    fn matches_brute_force_recount() {
        // Property-style check on a deterministic pseudo-random schedule:
        // hotness(id) at time t equals the number of crossings with
        // te <= t < te + W.
        let w = 37u64;
        let mut hot = h(w);
        let mut crossings: Vec<(u64, Timestamp)> = Vec::new();
        let mut state = 12345u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..500 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = rand() % 8;
            // te must not precede now in our usage (crossings end at or
            // before the current epoch); allow small past offsets.
            let te = Timestamp(now.saturating_sub(rand() % 5));
            hot.record_crossing(PathId(id), te, 1.0);
            crossings.push((id, te));

            for check_id in 0..8u64 {
                let expect = crossings
                    .iter()
                    .filter(|&&(i, te)| i == check_id && te.raw() + w > now)
                    .count() as u32;
                assert_eq!(
                    hot.get(PathId(check_id)),
                    expect,
                    "mismatch for id {check_id} at t={now}"
                );
            }
        }
    }

    /// The naive full-sort reference the rank structure must track:
    /// `(hotness desc, length desc, id asc)`.
    fn oracle_order(hot: &Hotness, lengths: &dyn Fn(PathId) -> f64) -> Vec<(PathId, u32)> {
        let mut all: Vec<(PathId, u32)> = hot.iter().collect();
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| lengths(b.0).total_cmp(&lengths(a.0)))
                .then_with(|| a.0.cmp(&b.0))
        });
        all
    }

    #[test]
    fn top_iter_orders_by_hotness_length_id() {
        let mut hot = h(100);
        let len = |id: PathId| [30.0, 10.0, 30.0, 50.0][id.0 as usize];
        for (id, crossings) in [(0u64, 2), (1, 2), (2, 1), (3, 1)] {
            for _ in 0..crossings {
                hot.record_crossing(PathId(id), Timestamp(0), len(PathId(id)));
            }
        }
        // Hotness 2 beats 1; equal hotness breaks to longer; equal
        // length (none here at equal hotness) would break to lower id.
        let got: Vec<(PathId, u32)> = hot.top_iter().collect();
        assert_eq!(got, vec![(PathId(0), 2), (PathId(1), 2), (PathId(3), 1), (PathId(2), 1)]);
        assert_eq!(got, oracle_order(&hot, &len));
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_tracks_advance_and_forget() {
        let mut hot = h(50);
        let len = |_: PathId| 1.0;
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expires at 50
        hot.record_crossing(PathId(1), Timestamp(40), 1.0); // expires at 90
        hot.record_crossing(PathId(2), Timestamp(40), 1.0);
        hot.record_crossing(PathId(3), Timestamp(40), 1.0);
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 2)));

        // First crossing of 1 expires: 1 drops to hotness 1, and the
        // rank falls back to id order among the three singletons.
        hot.advance(Timestamp(50));
        assert_eq!(hot.top_iter().collect::<Vec<_>>(), oracle_order(&hot, &len));
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 1)));

        hot.forget(PathId(1));
        assert_eq!(hot.top_iter().next(), Some((PathId(2), 1)));
        assert_eq!(hot.top_iter().count(), 2);
        hot.check_consistency().unwrap();

        // Everything expires; the rank set drains with the counters.
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.top_iter().count(), 0);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_matches_oracle_under_random_churn() {
        // Deterministic pseudo-random schedule of record / advance /
        // forget; the incremental order must equal the full sort at
        // every step (the sort-based oracle of the old top_n).
        let mut hot = h(23);
        let len = |id: PathId| ((id.0 * 37) % 101) as f64;
        let mut state = 7u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for step in 0..600 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
            }
            assert_eq!(
                hot.top_iter().collect::<Vec<_>>(),
                oracle_order(&hot, &len),
                "divergence at step {step}, t={now}"
            );
            hot.check_consistency().unwrap();
        }
    }

    #[test]
    fn forget_removes_counter() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        hot.forget(PathId(1));
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn forget_reclaims_pending_events() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expiry 100
        hot.record_crossing(PathId(1), Timestamp(5), 1.0); // expiry 105
        hot.record_crossing(PathId(2), Timestamp(3), 1.0); // expiry 103
        assert_eq!(hot.pending_events(), 3);

        hot.forget(PathId(1));
        // Tombstoned events stop counting as pending immediately...
        assert_eq!(hot.pending_events(), 1);
        assert_eq!(hot.queued_events(), 3);

        // ...and advance reclaims them from the queue head long before
        // their natural expiry (here at t = 4, expiries are 100+).
        assert!(hot.advance(Timestamp(4)).is_empty());
        assert_eq!(hot.queued_events(), 2, "head tombstone not reclaimed");
        assert_eq!(hot.pending_events(), 1);

        // The live path expires normally; the buried tombstone goes with
        // it once it reaches the head.
        assert_eq!(hot.advance(Timestamp(103)), vec![PathId(2)]);
        assert_eq!(hot.queued_events(), 0);
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn checkpoint_parts_roundtrip_continues_identically() {
        // Drive a table through deterministic churn, snapshot its slab /
        // heap / tombstones, rebuild, and check both copies stay in
        // lock-step through further churn — the in-crate version of the
        // restart-parity property the checkpoint module relies on.
        let mut hot = h(23);
        let len = |id: PathId| ((id.0 * 37) % 101) as f64;
        let mut state = 99u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..300 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
            }
        }
        let mut copy = Hotness::from_checkpoint_parts(
            hot.window(),
            hot.heat_slice().to_vec(),
            hot.events_slice().to_vec(),
            hot.dead_entries(),
            hot.total_recorded(),
        )
        .unwrap();
        copy.check_consistency().unwrap();
        assert_eq!(copy.heat_slice(), hot.heat_slice());
        assert_eq!(copy.events_slice(), hot.events_slice());
        for _ in 0..300 {
            now += rand() % 3;
            assert_eq!(hot.advance(Timestamp(now)), copy.advance(Timestamp(now)));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
                copy.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
                copy.record_crossing(id, Timestamp(now), len(id));
            }
            assert_eq!(hot.heat_slice(), copy.heat_slice());
            assert_eq!(hot.events_slice(), copy.events_slice());
            assert_eq!(hot.top_iter().collect::<Vec<_>>(), copy.top_iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn checkpoint_parts_reject_structural_corruption() {
        let mut hot = h(10);
        hot.record_crossing(PathId(1), Timestamp(0), 2.0);
        hot.record_crossing(PathId(2), Timestamp(1), 3.0);
        let heat = hot.heat_slice().to_vec();
        let events = hot.events_slice().to_vec();
        let w = hot.window();

        // Duplicate slab id.
        let mut dup = heat.clone();
        dup.push(heat[0]);
        assert!(Hotness::from_checkpoint_parts(w, dup, events.clone(), vec![], 3).is_err());
        // Zero count.
        let mut zero = heat.clone();
        zero[0].count = 0;
        assert!(Hotness::from_checkpoint_parts(w, zero, events.clone(), vec![], 2).is_err());
        // Heap order violated.
        let mut bad = events.clone();
        bad.reverse();
        if bad != events {
            assert!(Hotness::from_checkpoint_parts(w, heat.clone(), bad, vec![], 2).is_err());
        }
        // Event/counter imbalance.
        assert!(Hotness::from_checkpoint_parts(w, heat.clone(), vec![], vec![], 2).is_err());
        // Tombstone colliding with a live id.
        assert!(Hotness::from_checkpoint_parts(
            w,
            heat,
            events,
            vec![DeadEntry { id: PathId(1), events: 1 }],
            2
        )
        .is_err());
    }

    #[test]
    fn layouts_are_padding_free() {
        assert_eq!(std::mem::size_of::<HeatEntry>(), 24);
        assert_eq!(std::mem::size_of::<ExpiryEvent>(), 16);
        assert_eq!(std::mem::size_of::<DeadEntry>(), 16);
        assert_eq!(std::mem::align_of::<HeatEntry>(), 8);
    }

    #[test]
    fn forget_heavy_churn_does_not_leak() {
        // A long run that records and immediately forgets distinct ids:
        // without reclamation the queue would hold every event for a
        // whole window (here 10_000 timestamps deep).
        let mut hot = h(10_000);
        for i in 0..1_000u64 {
            hot.advance(Timestamp(i));
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
            hot.forget(PathId(i));
        }
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.pending_events(), 0);
        // Everything reclaimable from the head has been reclaimed; the
        // queue is empty even though no event has naturally expired.
        assert_eq!(hot.queued_events(), 0);
        assert!(hot.is_empty());
    }
}
