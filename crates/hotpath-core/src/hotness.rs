//! Sliding-window hotness maintenance (Section 5.2).
//!
//! A hash table keeps, per motion path, the number of crossings within
//! the last `W` time units; an event queue (min-heap on expiry time)
//! decrements counters as crossings age out. When a counter reaches
//! zero the path id is surfaced so the caller can delete the path from
//! the MotionPath index.
//!
//! Alongside the counters the table maintains an **incremental rank
//! structure**: an ordered set keyed by `(hotness desc, length desc,
//! id asc)` — exactly the coordinator's top-k order — updated on every
//! [`Hotness::record_crossing`], [`Hotness::advance`], and
//! [`Hotness::forget`]. Top-k queries walk the first `k` entries in
//! O(k + log P) instead of materializing and sorting the whole hot set.

use crate::fxhash::FxHashMap;
use crate::motion_path::PathId;
use crate::time::{SlidingWindow, Timestamp};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Rank-set key: `(hotness desc, length desc, id asc)`. Lengths are
/// non-negative finite floats, so their IEEE-754 bit patterns order the
/// same way `f64::total_cmp` does.
type RankKey = (Reverse<u32>, Reverse<u64>, PathId);

#[inline]
fn rank_key(count: u32, len_bits: u64, id: PathId) -> RankKey {
    (Reverse(count), Reverse(len_bits), id)
}

/// Per-path state: the live crossing count and the path's length (bit
/// pattern), pinned at first recording — path geometry is immutable, so
/// every crossing of one id carries the same length.
#[derive(Clone, Copy, Debug)]
struct PathHeat {
    count: u32,
    len_bits: u64,
}

/// The hotness table plus expiry queue.
#[derive(Clone, Debug)]
pub struct Hotness {
    window: SlidingWindow,
    counts: FxHashMap<PathId, PathHeat>,
    /// Incremental top-k: every hot path, ordered hottest-first.
    rank: BTreeSet<RankKey>,
    /// Min-heap of `(expiry, id)`; head is the next interval to expire.
    queue: BinaryHeap<Reverse<(Timestamp, PathId)>>,
    /// Tombstones for [`Hotness::forget`]-ed ids: how many queued events
    /// belong to each forgotten id, so [`Hotness::advance`] can reclaim
    /// them instead of decrementing a live counter.
    dead: FxHashMap<PathId, u32>,
    /// Total events covered by `dead` (kept in sync for O(1) accounting).
    dead_events: usize,
    /// Total crossings ever recorded (diagnostics).
    recorded: u64,
}

impl Hotness {
    /// Creates an empty table over the given window.
    pub fn new(window: SlidingWindow) -> Self {
        Hotness {
            window,
            counts: FxHashMap::default(),
            rank: BTreeSet::new(),
            queue: BinaryHeap::new(),
            dead: FxHashMap::default(),
            dead_events: 0,
            recorded: 0,
        }
    }

    /// The sliding window in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// Records that an object crossed `id`, exiting at `te`: the counter
    /// is incremented and `<te + W, id>` en-heaped (Section 5.2).
    /// `length` is the path's length — the top-k tie-break key — and is
    /// pinned at the first recording of each id (geometry is immutable).
    pub fn record_crossing(&mut self, id: PathId, te: Timestamp, length: f64) {
        debug_assert!(length >= 0.0 && length.is_finite(), "bad path length {length}");
        let heat =
            self.counts.entry(id).or_insert(PathHeat { count: 0, len_bits: length.to_bits() });
        if heat.count > 0 {
            self.rank.remove(&rank_key(heat.count, heat.len_bits, id));
        }
        heat.count += 1;
        self.rank.insert(rank_key(heat.count, heat.len_bits, id));
        self.queue.push(Reverse((self.window.expiry_of(te), id)));
        self.recorded += 1;
    }

    /// Current hotness of `id` (zero when unknown).
    #[inline]
    pub fn get(&self, id: PathId) -> u32 {
        self.counts.get(&id).map(|h| h.count).unwrap_or(0)
    }

    /// Number of paths with positive hotness.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing is hot.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(id, hotness)` pairs with positive hotness.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.counts.iter().map(|(&id, &h)| (id, h.count))
    }

    /// Iterates over `(id, hotness)` pairs hottest-first — the order of
    /// the incremental rank structure: `(hotness desc, length desc,
    /// id asc)`. Taking the first `k` answers a top-k query in
    /// O(k + log P); no sort, no allocation.
    pub fn top_iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.rank.iter().map(|&(Reverse(count), _, id)| (id, count))
    }

    /// Audits the incremental rank structure against the counter table:
    /// the two must describe the same multiset of `(id, hotness,
    /// length)` triples at all times.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.rank.len() != self.counts.len() {
            return Err(format!(
                "rank set has {} entries for {} hot paths",
                self.rank.len(),
                self.counts.len()
            ));
        }
        for (&id, heat) in &self.counts {
            if !self.rank.contains(&rank_key(heat.count, heat.len_bits, id)) {
                return Err(format!("rank set lost {id} (hotness {})", heat.count));
            }
        }
        // Live-event accounting: every unit of hotness has exactly one
        // pending expiry event (tombstoned events are excluded by
        // `pending_events`).
        let total: usize = self.counts.values().map(|h| h.count as usize).sum();
        if total != self.pending_events() {
            return Err(format!(
                "{total} units of hotness vs {} pending expiry events",
                self.pending_events()
            ));
        }
        Ok(())
    }

    /// Pending *live* expiry events (diagnostics; equals the sum of
    /// counters). Events tombstoned by [`Hotness::forget`] are excluded
    /// even while they still occupy the queue awaiting reclamation.
    pub fn pending_events(&self) -> usize {
        self.queue.len() - self.dead_events
    }

    /// Physical queue occupancy including not-yet-reclaimed tombstoned
    /// events (diagnostics for leak tests).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Total crossings ever recorded.
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Advances the clock to `now`: de-heaps every event with
    /// `expiry <= now`, decrements the counters, and returns the ids
    /// whose hotness dropped to zero (the caller deletes those paths
    /// from the index).
    pub fn advance(&mut self, now: Timestamp) -> Vec<PathId> {
        let mut died = Vec::new();
        while let Some(&Reverse((expiry, id))) = self.queue.peek() {
            // Reclaim tombstoned events whenever they surface at the
            // head, regardless of their expiry — forgotten ids must not
            // keep the queue inflated for a whole window.
            if let Some(n) = self.dead.get_mut(&id) {
                self.queue.pop();
                *n -= 1;
                self.dead_events -= 1;
                if *n == 0 {
                    self.dead.remove(&id);
                }
                continue;
            }
            if expiry > now {
                break;
            }
            self.queue.pop();
            // Defensive: a counter should always exist for a live event.
            let Some(heat) = self.counts.get_mut(&id) else { continue };
            self.rank.remove(&rank_key(heat.count, heat.len_bits, id));
            heat.count -= 1;
            if heat.count == 0 {
                self.counts.remove(&id);
                died.push(id);
            } else {
                let heat = *heat;
                self.rank.insert(rank_key(heat.count, heat.len_bits, id));
            }
        }
        died
    }

    /// Drops a path outright (used when the caller removes a path for
    /// reasons other than expiry). The counter's outstanding expiry
    /// events are tombstoned and reclaimed by [`Hotness::advance`] as
    /// they surface at the queue head, so long runs with many forgotten
    /// paths do not accumulate stale events for a whole window.
    ///
    /// Only call this for ids that will never be recorded again: events
    /// carry no generation, so a crossing recorded after `forget` whose
    /// expiry precedes a tombstoned event's would be reclaimed in its
    /// place, letting the stale event keep the counter alive too long.
    pub fn forget(&mut self, id: PathId) {
        if let Some(heat) = self.counts.remove(&id) {
            self.rank.remove(&rank_key(heat.count, heat.len_bits, id));
            if heat.count > 0 {
                *self.dead.entry(id).or_insert(0) += heat.count;
                self.dead_events += heat.count as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(window: u64) -> Hotness {
        Hotness::new(SlidingWindow::new(window))
    }

    #[test]
    fn crossings_accumulate() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        hot.record_crossing(PathId(1), Timestamp(20), 1.0);
        hot.record_crossing(PathId(2), Timestamp(15), 1.0);
        assert_eq!(hot.get(PathId(1)), 2);
        assert_eq!(hot.get(PathId(2)), 1);
        assert_eq!(hot.get(PathId(3)), 0);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot.pending_events(), 3);
        assert_eq!(hot.total_recorded(), 3);
    }

    #[test]
    fn expiry_at_te_plus_w() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        // Still hot one granule before expiry.
        assert!(hot.advance(Timestamp(109)).is_empty());
        assert_eq!(hot.get(PathId(1)), 1);
        // Dies exactly at te + W = 110.
        let died = hot.advance(Timestamp(110));
        assert_eq!(died, vec![PathId(1)]);
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn staggered_crossings_expire_independently() {
        let mut hot = h(50);
        hot.record_crossing(PathId(7), Timestamp(0), 1.0);
        hot.record_crossing(PathId(7), Timestamp(30), 1.0);
        // First crossing expires at 50; path stays hot.
        assert!(hot.advance(Timestamp(50)).is_empty());
        assert_eq!(hot.get(PathId(7)), 1);
        // Second expires at 80; path dies.
        assert_eq!(hot.advance(Timestamp(80)), vec![PathId(7)]);
    }

    #[test]
    fn advance_handles_batched_expiries() {
        let mut hot = h(10);
        for i in 0..5u64 {
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
        }
        let mut died = hot.advance(Timestamp(100));
        died.sort_unstable();
        assert_eq!(died, (0..5).map(PathId).collect::<Vec<_>>());
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn advance_is_idempotent_per_timestamp() {
        let mut hot = h(10);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        assert_eq!(hot.advance(Timestamp(10)), vec![PathId(1)]);
        assert!(hot.advance(Timestamp(10)).is_empty());
        assert!(hot.advance(Timestamp(11)).is_empty());
    }

    #[test]
    fn matches_brute_force_recount() {
        // Property-style check on a deterministic pseudo-random schedule:
        // hotness(id) at time t equals the number of crossings with
        // te <= t < te + W.
        let w = 37u64;
        let mut hot = h(w);
        let mut crossings: Vec<(u64, Timestamp)> = Vec::new();
        let mut state = 12345u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..500 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = rand() % 8;
            // te must not precede now in our usage (crossings end at or
            // before the current epoch); allow small past offsets.
            let te = Timestamp(now.saturating_sub(rand() % 5));
            hot.record_crossing(PathId(id), te, 1.0);
            crossings.push((id, te));

            for check_id in 0..8u64 {
                let expect = crossings
                    .iter()
                    .filter(|&&(i, te)| i == check_id && te.raw() + w > now)
                    .count() as u32;
                assert_eq!(
                    hot.get(PathId(check_id)),
                    expect,
                    "mismatch for id {check_id} at t={now}"
                );
            }
        }
    }

    /// The naive full-sort reference the rank structure must track:
    /// `(hotness desc, length desc, id asc)`.
    fn oracle_order(hot: &Hotness, lengths: &dyn Fn(PathId) -> f64) -> Vec<(PathId, u32)> {
        let mut all: Vec<(PathId, u32)> = hot.iter().collect();
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| lengths(b.0).total_cmp(&lengths(a.0)))
                .then_with(|| a.0.cmp(&b.0))
        });
        all
    }

    #[test]
    fn top_iter_orders_by_hotness_length_id() {
        let mut hot = h(100);
        let len = |id: PathId| [30.0, 10.0, 30.0, 50.0][id.0 as usize];
        for (id, crossings) in [(0u64, 2), (1, 2), (2, 1), (3, 1)] {
            for _ in 0..crossings {
                hot.record_crossing(PathId(id), Timestamp(0), len(PathId(id)));
            }
        }
        // Hotness 2 beats 1; equal hotness breaks to longer; equal
        // length (none here at equal hotness) would break to lower id.
        let got: Vec<(PathId, u32)> = hot.top_iter().collect();
        assert_eq!(got, vec![(PathId(0), 2), (PathId(1), 2), (PathId(3), 1), (PathId(2), 1)]);
        assert_eq!(got, oracle_order(&hot, &len));
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_tracks_advance_and_forget() {
        let mut hot = h(50);
        let len = |_: PathId| 1.0;
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expires at 50
        hot.record_crossing(PathId(1), Timestamp(40), 1.0); // expires at 90
        hot.record_crossing(PathId(2), Timestamp(40), 1.0);
        hot.record_crossing(PathId(3), Timestamp(40), 1.0);
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 2)));

        // First crossing of 1 expires: 1 drops to hotness 1, and the
        // rank falls back to id order among the three singletons.
        hot.advance(Timestamp(50));
        assert_eq!(hot.top_iter().collect::<Vec<_>>(), oracle_order(&hot, &len));
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 1)));

        hot.forget(PathId(1));
        assert_eq!(hot.top_iter().next(), Some((PathId(2), 1)));
        assert_eq!(hot.top_iter().count(), 2);
        hot.check_consistency().unwrap();

        // Everything expires; the rank set drains with the counters.
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.top_iter().count(), 0);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_matches_oracle_under_random_churn() {
        // Deterministic pseudo-random schedule of record / advance /
        // forget; the incremental order must equal the full sort at
        // every step (the sort-based oracle of the old top_n).
        let mut hot = h(23);
        let len = |id: PathId| ((id.0 * 37) % 101) as f64;
        let mut state = 7u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for step in 0..600 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
            }
            assert_eq!(
                hot.top_iter().collect::<Vec<_>>(),
                oracle_order(&hot, &len),
                "divergence at step {step}, t={now}"
            );
            hot.check_consistency().unwrap();
        }
    }

    #[test]
    fn forget_removes_counter() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        hot.forget(PathId(1));
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn forget_reclaims_pending_events() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expiry 100
        hot.record_crossing(PathId(1), Timestamp(5), 1.0); // expiry 105
        hot.record_crossing(PathId(2), Timestamp(3), 1.0); // expiry 103
        assert_eq!(hot.pending_events(), 3);

        hot.forget(PathId(1));
        // Tombstoned events stop counting as pending immediately...
        assert_eq!(hot.pending_events(), 1);
        assert_eq!(hot.queued_events(), 3);

        // ...and advance reclaims them from the queue head long before
        // their natural expiry (here at t = 4, expiries are 100+).
        assert!(hot.advance(Timestamp(4)).is_empty());
        assert_eq!(hot.queued_events(), 2, "head tombstone not reclaimed");
        assert_eq!(hot.pending_events(), 1);

        // The live path expires normally; the buried tombstone goes with
        // it once it reaches the head.
        assert_eq!(hot.advance(Timestamp(103)), vec![PathId(2)]);
        assert_eq!(hot.queued_events(), 0);
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn forget_heavy_churn_does_not_leak() {
        // A long run that records and immediately forgets distinct ids:
        // without reclamation the queue would hold every event for a
        // whole window (here 10_000 timestamps deep).
        let mut hot = h(10_000);
        for i in 0..1_000u64 {
            hot.advance(Timestamp(i));
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
            hot.forget(PathId(i));
        }
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.pending_events(), 0);
        // Everything reclaimable from the head has been reclaimed; the
        // queue is empty even though no event has naturally expired.
        assert_eq!(hot.queued_events(), 0);
        assert!(hot.is_empty());
    }
}
