//! Sliding-window hotness maintenance (Section 5.2).
//!
//! A hash table keeps, per motion path, the number of crossings within
//! the last `W` time units; a hierarchical timer wheel fires expiry
//! events that decrement counters as crossings age out. When a counter
//! reaches zero the path id is surfaced so the caller can delete the
//! path from the MotionPath index.
//!
//! Alongside the counters the table maintains an **incremental rank
//! structure**: an ordered set keyed by `(hotness desc, length desc,
//! id asc)` — exactly the coordinator's top-k order — updated on every
//! [`Hotness::record_crossing`], [`Hotness::advance`], and
//! [`Hotness::forget`]. Top-k queries walk the first `k` entries in
//! O(k + log P) instead of materializing and sorting the whole hot set.
//!
//! # Why a timer wheel
//!
//! The expiry queue used to be a binary min-heap: every `advance` paid
//! O(expired · log pending) pops, and at 100k paths the per-epoch
//! expiry walk dominated window maintenance. The wheel makes `advance`
//! amortized **O(expired)**: events hash into 64-slot levels by the
//! position of the highest bit in which their expiry differs from the
//! wheel clock, occupancy bitmaps locate the next non-empty bucket in
//! a few instructions, and each event cascades toward finer levels at
//! most `LEVELS` times over its whole lifetime. Cost no longer scales
//! with the pending-set size at all — only with what actually expires.

use crate::fxhash::FxHashMap;
use crate::motion_path::PathId;
use crate::time::{SlidingWindow, Timestamp};
use crate::wheel::{TimerWheel, WheelEvent};
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// Rank-set key: `(hotness desc, length desc, id asc)`. Lengths are
/// non-negative finite floats, so their IEEE-754 bit patterns order the
/// same way `f64::total_cmp` does.
type RankKey = (Reverse<u32>, Reverse<u64>, PathId);

#[inline]
fn rank_key(count: u32, len_bits: u64, id: PathId) -> RankKey {
    (Reverse(count), Reverse(len_bits), id)
}

/// Per-path hotness record: the live crossing count and the path's
/// length (IEEE-754 bit pattern), pinned at first recording — path
/// geometry is immutable, so every crossing of one id carries the same
/// length. Records live in a contiguous slab so the checkpoint's heat
/// section is a direct memcpy of the backing array.
///
/// `repr(C)`: three consecutive `u64`s, 24 bytes, no padding. The count
/// is widened to `u64` here purely for layout; it never exceeds `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct HeatEntry {
    /// The hot path.
    pub id: PathId,
    /// Path length bit pattern (`f64::to_bits`), the rank tie-break key.
    pub len_bits: u64,
    /// Live crossing count within the window (always `>= 1` in the slab).
    pub count: u64,
}

/// One pending expiry: the counter of `id` decrements at `expiry`
/// (`te + W`, Section 5.2). `repr(C)`: 16 bytes, no padding — the
/// checkpoint's event section is a memcpy of the canonically sorted
/// event list (see [`Hotness::events_vec`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct ExpiryEvent {
    /// Expiry timestamp `te + W`.
    pub expiry: Timestamp,
    /// The path whose counter decrements then.
    pub id: PathId,
}

impl ExpiryEvent {
    #[inline]
    fn key(&self) -> (Timestamp, PathId) {
        (self.expiry, self.id)
    }
}

impl WheelEvent for ExpiryEvent {
    type Key = (Timestamp, PathId);

    #[inline]
    fn expiry_raw(&self) -> u64 {
        self.expiry.raw()
    }

    #[inline]
    fn sort_key(&self) -> Self::Key {
        self.key()
    }
}

/// Tombstone record for a forgotten id: how many queued expiry events it
/// still owns. `repr(C)`: 16 bytes, no padding (checkpoint section).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct DeadEntry {
    /// The forgotten path.
    pub id: PathId,
    /// Queued events awaiting reclamation (widened `u32`).
    pub events: u64,
}

/// The hotness table plus expiry wheel.
#[derive(Clone, Debug)]
pub struct Hotness {
    window: SlidingWindow,
    /// Contiguous per-path records; order is maintenance order (inserts
    /// append, deaths `swap_remove`) and is part of the checkpointed
    /// state, so a restored table continues identically.
    heat: Vec<HeatEntry>,
    /// Path id -> slot in `heat`.
    slot_of: FxHashMap<PathId, u32>,
    /// Incremental top-k: every hot path, ordered hottest-first.
    rank: BTreeSet<RankKey>,
    /// Timer wheel of `(expiry, id)` events keyed by the epoch clock.
    queue: TimerWheel<ExpiryEvent>,
    /// Tombstones for [`Hotness::forget`]-ed ids: how many queued events
    /// belong to each forgotten id, so [`Hotness::advance`] can reclaim
    /// them instead of decrementing a live counter.
    dead: FxHashMap<PathId, u32>,
    /// Total events covered by `dead` (kept in sync for O(1) accounting).
    dead_events: usize,
    /// Total crossings ever recorded (diagnostics).
    recorded: u64,
}

impl Hotness {
    /// Creates an empty table over the given window.
    pub fn new(window: SlidingWindow) -> Self {
        Hotness {
            window,
            heat: Vec::new(),
            slot_of: FxHashMap::default(),
            rank: BTreeSet::new(),
            queue: TimerWheel::default(),
            dead: FxHashMap::default(),
            dead_events: 0,
            recorded: 0,
        }
    }

    /// The sliding window in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// The expiry wheel's clock: the largest [`Hotness::advance`] time
    /// seen (or the clock the table was restored against).
    pub fn clock(&self) -> Timestamp {
        Timestamp(self.queue.clock())
    }

    /// Records that an object crossed `id`, exiting at `te`: the counter
    /// is incremented and `<te + W, id>` enqueued on the expiry wheel
    /// (Section 5.2). `length` is the path's length — the top-k
    /// tie-break key — and is pinned at the first recording of each id
    /// (geometry is immutable).
    pub fn record_crossing(&mut self, id: PathId, te: Timestamp, length: f64) {
        debug_assert!(length >= 0.0 && length.is_finite(), "bad path length {length}");
        let slot = *self.slot_of.entry(id).or_insert_with(|| {
            self.heat.push(HeatEntry { id, len_bits: length.to_bits(), count: 0 });
            (self.heat.len() - 1) as u32
        });
        let heat = &mut self.heat[slot as usize];
        if heat.count > 0 {
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
        }
        heat.count += 1;
        self.rank.insert(rank_key(heat.count as u32, heat.len_bits, id));
        self.queue.insert(ExpiryEvent { expiry: self.window.expiry_of(te), id });
        self.recorded += 1;
    }

    /// Current hotness of `id` (zero when unknown).
    #[inline]
    pub fn get(&self, id: PathId) -> u32 {
        self.slot_of.get(&id).map(|&s| self.heat[s as usize].count as u32).unwrap_or(0)
    }

    /// Number of paths with positive hotness.
    pub fn len(&self) -> usize {
        self.heat.len()
    }

    /// True when nothing is hot.
    pub fn is_empty(&self) -> bool {
        self.heat.is_empty()
    }

    /// Iterates over `(id, hotness)` pairs with positive hotness.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.heat.iter().map(|e| (e.id, e.count as u32))
    }

    /// Removes the slab record at `slot`, keeping `slot_of` consistent
    /// with the `swap_remove` relocation.
    fn remove_slot(&mut self, slot: u32) {
        let removed = self.heat.swap_remove(slot as usize);
        self.slot_of.remove(&removed.id);
        if let Some(moved) = self.heat.get(slot as usize) {
            self.slot_of.insert(moved.id, slot);
        }
    }

    /// Iterates over `(id, hotness)` pairs hottest-first — the order of
    /// the incremental rank structure: `(hotness desc, length desc,
    /// id asc)`. Taking the first `k` answers a top-k query in
    /// O(k + log P); no sort, no allocation.
    pub fn top_iter(&self) -> impl Iterator<Item = (PathId, u32)> + '_ {
        self.rank.iter().map(|&(Reverse(count), _, id)| (id, count))
    }

    /// Audits the incremental rank structure against the counter table
    /// (the two must describe the same multiset of `(id, hotness,
    /// length)` triples at all times) and the timer wheel's structural
    /// invariants.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.rank.len() != self.heat.len() {
            return Err(format!(
                "rank set has {} entries for {} hot paths",
                self.rank.len(),
                self.heat.len()
            ));
        }
        if self.slot_of.len() != self.heat.len() {
            return Err(format!(
                "slot map has {} entries for {} slab records",
                self.slot_of.len(),
                self.heat.len()
            ));
        }
        for (slot, heat) in self.heat.iter().enumerate() {
            if self.slot_of.get(&heat.id) != Some(&(slot as u32)) {
                return Err(format!("slot map lost {} (slab slot {slot})", heat.id));
            }
            if !self.rank.contains(&rank_key(heat.count as u32, heat.len_bits, heat.id)) {
                return Err(format!("rank set lost {} (hotness {})", heat.id, heat.count));
            }
        }
        self.queue.check()?;
        // Live-event accounting: every unit of hotness has exactly one
        // pending expiry event (tombstoned events are excluded by
        // `pending_events`).
        let total: usize = self.heat.iter().map(|h| h.count as usize).sum();
        if total != self.pending_events() {
            return Err(format!(
                "{total} units of hotness vs {} pending expiry events",
                self.pending_events()
            ));
        }
        Ok(())
    }

    /// Pending *live* expiry events (diagnostics; equals the sum of
    /// counters). Events tombstoned by [`Hotness::forget`] are excluded
    /// even while they still occupy the wheel awaiting reclamation or
    /// compaction.
    pub fn pending_events(&self) -> usize {
        self.queue.len() - self.dead_events
    }

    /// Physical wheel occupancy including not-yet-reclaimed tombstoned
    /// events (diagnostics for leak tests).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Total crossings ever recorded.
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Advances the clock to `now`: collects every event with
    /// `expiry <= now` from the wheel, decrements the counters in
    /// `(expiry, id)` order, and returns the ids whose hotness dropped
    /// to zero (the caller deletes those paths from the index).
    /// Amortized O(expired) — cost is independent of the pending-set
    /// size.
    pub fn advance(&mut self, now: Timestamp) -> Vec<PathId> {
        self.queue.advance_collect(now.raw());
        let mut expired = self.queue.take_expired();
        // Apply in `(expiry, id)` order — exactly the order the old
        // min-heap popped in — so `died` (and every downstream removal
        // order, hence checkpoint bytes) is independent of the wheel's
        // internal bucket layout.
        expired.sort_unstable_by_key(|e| e.key());
        let mut died = Vec::new();
        for &ExpiryEvent { id, .. } in &expired {
            // Tombstoned events are reclaimed instead of decrementing a
            // live counter (an id re-recorded after `forget` sheds its
            // earliest-expiring events first, same as the heap did).
            if let Some(n) = self.dead.get_mut(&id) {
                *n -= 1;
                self.dead_events -= 1;
                if *n == 0 {
                    self.dead.remove(&id);
                }
                continue;
            }
            // Defensive: a counter should always exist for a live event.
            let Some(&slot) = self.slot_of.get(&id) else { continue };
            let heat = &mut self.heat[slot as usize];
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
            heat.count -= 1;
            if heat.count == 0 {
                self.remove_slot(slot);
                died.push(id);
            } else {
                let heat = *heat;
                self.rank.insert(rank_key(heat.count as u32, heat.len_bits, id));
            }
        }
        self.queue.give_expired(expired); // hand the allocation back
        died
    }

    /// Drops a path outright (used when the caller removes a path for
    /// reasons other than expiry). The counter's outstanding expiry
    /// events are tombstoned; they are reclaimed when they fire, or
    /// swept eagerly by compaction once tombstones outnumber live
    /// events — so long runs with many forgotten paths do not
    /// accumulate stale events for a whole window.
    ///
    /// Only call this for ids that will never be recorded again: events
    /// carry no generation, so a crossing recorded after `forget` whose
    /// expiry precedes a tombstoned event's would be reclaimed in its
    /// place, letting the stale event keep the counter alive too long.
    pub fn forget(&mut self, id: PathId) {
        if let Some(&slot) = self.slot_of.get(&id) {
            let heat = self.heat[slot as usize];
            self.remove_slot(slot);
            self.rank.remove(&rank_key(heat.count as u32, heat.len_bits, id));
            if heat.count > 0 {
                *self.dead.entry(id).or_insert(0) += heat.count as u32;
                self.dead_events += heat.count as usize;
                self.maybe_compact();
            }
        }
    }

    /// Sweeps tombstoned events out of the wheel once they outnumber
    /// live events. Only ids that are fully dead (not re-recorded since
    /// `forget`) are purged — a relived id keeps its tombstones in the
    /// wheel so expiry-order aliasing stays exact. The sweep is
    /// O(occupancy) but doubling-triggered, so amortized O(1) per
    /// forget.
    fn maybe_compact(&mut self) {
        if self.dead_events * 2 <= self.queue.len() {
            return;
        }
        let dead = &self.dead;
        let slot_of = &self.slot_of;
        let removed = self
            .queue
            .retain_events(|ev| !dead.contains_key(&ev.id) || slot_of.contains_key(&ev.id));
        let mut reclaimed = 0usize;
        self.dead.retain(|id, n| {
            if slot_of.contains_key(id) {
                true
            } else {
                reclaimed += *n as usize;
                false
            }
        });
        debug_assert_eq!(removed, reclaimed, "compaction ledger out of balance");
        self.dead_events -= reclaimed;
    }

    // ---- checkpoint surface -------------------------------------------

    /// The contiguous per-path heat slab (checkpoint section source; the
    /// slab order is state and must be restored verbatim).
    pub fn heat_slice(&self) -> &[HeatEntry] {
        &self.heat
    }

    /// Every pending expiry event in canonical `(expiry, id)` order
    /// (checkpoint section source). The canonical sort makes the
    /// section a pure function of the event multiset — independent of
    /// the wheel's internal bucket layout — so a checkpoint taken after
    /// a restore reproduces the image byte for byte.
    pub fn events_vec(&self) -> Vec<ExpiryEvent> {
        self.queue.sorted_events()
    }

    /// Tombstone records sorted by id (small; collected per checkpoint).
    pub fn dead_entries(&self) -> Vec<DeadEntry> {
        let mut out: Vec<DeadEntry> =
            self.dead.iter().map(|(&id, &n)| DeadEntry { id, events: n as u64 }).collect();
        out.sort_unstable_by_key(|d| d.id);
        out
    }

    /// Rebuilds a table from checkpointed sections: the heat slab is
    /// adopted verbatim; the event list (canonically sorted, see
    /// [`Hotness::events_vec`]) is re-inserted into a fresh wheel keyed
    /// by `clock` — the checkpoint header's epoch clock; the slot map
    /// and rank set are derived (their contents are pure functions of
    /// the slab).
    ///
    /// # Errors
    /// Returns a description when the sections are structurally invalid
    /// (duplicate ids, zero counts, unsorted events, event/counter
    /// imbalance) — possible only for a checkpoint written by a buggy
    /// or hostile producer, since CRC validation happens before this
    /// runs.
    pub fn from_checkpoint_parts(
        window: SlidingWindow,
        heat: Vec<HeatEntry>,
        events: Vec<ExpiryEvent>,
        dead: Vec<DeadEntry>,
        recorded: u64,
        clock: Timestamp,
    ) -> Result<Self, String> {
        let mut slot_of = FxHashMap::default();
        let mut rank = BTreeSet::new();
        for (slot, e) in heat.iter().enumerate() {
            if e.count == 0 || e.count > u64::from(u32::MAX) {
                return Err(format!("heat slab entry {} has count {}", e.id, e.count));
            }
            if slot_of.insert(e.id, slot as u32).is_some() {
                return Err(format!("duplicate heat slab entry for {}", e.id));
            }
            rank.insert(rank_key(e.count as u32, e.len_bits, e.id));
        }
        if events.windows(2).any(|w| w[0].key() > w[1].key()) {
            return Err("event section is not sorted by (expiry, id)".into());
        }
        let mut dead_map = FxHashMap::default();
        let mut dead_events = 0usize;
        for d in &dead {
            if d.events == 0 || d.events > u64::from(u32::MAX) {
                return Err(format!("tombstone for {} has {} events", d.id, d.events));
            }
            if slot_of.contains_key(&d.id) || dead_map.insert(d.id, d.events as u32).is_some() {
                return Err(format!("conflicting tombstone for {}", d.id));
            }
            dead_events += d.events as usize;
        }
        let live: usize = heat.iter().map(|h| h.count as usize).sum();
        if live + dead_events != events.len() {
            return Err(format!(
                "{live} live + {dead_events} tombstoned events vs {} queued",
                events.len()
            ));
        }
        let mut queue = TimerWheel::new(clock.raw());
        for &ev in &events {
            queue.insert(ev);
        }
        Ok(Hotness { window, heat, slot_of, rank, queue, dead: dead_map, dead_events, recorded })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(window: u64) -> Hotness {
        Hotness::new(SlidingWindow::new(window))
    }

    #[test]
    fn crossings_accumulate() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        hot.record_crossing(PathId(1), Timestamp(20), 1.0);
        hot.record_crossing(PathId(2), Timestamp(15), 1.0);
        assert_eq!(hot.get(PathId(1)), 2);
        assert_eq!(hot.get(PathId(2)), 1);
        assert_eq!(hot.get(PathId(3)), 0);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot.pending_events(), 3);
        assert_eq!(hot.total_recorded(), 3);
    }

    #[test]
    fn expiry_at_te_plus_w() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(10), 1.0);
        // Still hot one granule before expiry.
        assert!(hot.advance(Timestamp(109)).is_empty());
        assert_eq!(hot.get(PathId(1)), 1);
        // Dies exactly at te + W = 110.
        let died = hot.advance(Timestamp(110));
        assert_eq!(died, vec![PathId(1)]);
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn staggered_crossings_expire_independently() {
        let mut hot = h(50);
        hot.record_crossing(PathId(7), Timestamp(0), 1.0);
        hot.record_crossing(PathId(7), Timestamp(30), 1.0);
        // First crossing expires at 50; path stays hot.
        assert!(hot.advance(Timestamp(50)).is_empty());
        assert_eq!(hot.get(PathId(7)), 1);
        // Second expires at 80; path dies.
        assert_eq!(hot.advance(Timestamp(80)), vec![PathId(7)]);
    }

    #[test]
    fn advance_handles_batched_expiries() {
        let mut hot = h(10);
        for i in 0..5u64 {
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
        }
        let mut died = hot.advance(Timestamp(100));
        died.sort_unstable();
        assert_eq!(died, (0..5).map(PathId).collect::<Vec<_>>());
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn advance_is_idempotent_per_timestamp() {
        let mut hot = h(10);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        assert_eq!(hot.advance(Timestamp(10)), vec![PathId(1)]);
        assert!(hot.advance(Timestamp(10)).is_empty());
        assert!(hot.advance(Timestamp(11)).is_empty());
    }

    #[test]
    fn advance_backwards_is_a_no_op() {
        // A non-monotone `now` must not fire events early or corrupt the
        // wheel clock.
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(50), 1.0); // expiry 150
        assert!(hot.advance(Timestamp(120)).is_empty());
        assert_eq!(hot.clock(), Timestamp(120));
        assert!(hot.advance(Timestamp(40)).is_empty());
        assert_eq!(hot.clock(), Timestamp(120), "clock must be monotone");
        assert_eq!(hot.advance(Timestamp(150)), vec![PathId(1)]);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn matches_brute_force_recount() {
        // Property-style check on a deterministic pseudo-random schedule:
        // hotness(id) at time t equals the number of crossings with
        // te <= t < te + W.
        let w = 37u64;
        let mut hot = h(w);
        let mut crossings: Vec<(u64, Timestamp)> = Vec::new();
        let mut state = 12345u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..500 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = rand() % 8;
            // te must not precede now in our usage (crossings end at or
            // before the current epoch); allow small past offsets.
            let te = Timestamp(now.saturating_sub(rand() % 5));
            hot.record_crossing(PathId(id), te, 1.0);
            crossings.push((id, te));

            for check_id in 0..8u64 {
                let expect = crossings
                    .iter()
                    .filter(|&&(i, te)| i == check_id && te.raw() + w > now)
                    .count() as u32;
                assert_eq!(
                    hot.get(PathId(check_id)),
                    expect,
                    "mismatch for id {check_id} at t={now}"
                );
            }
        }
    }

    /// The naive full-sort reference the rank structure must track:
    /// `(hotness desc, length desc, id asc)`.
    fn oracle_order(hot: &Hotness, lengths: &dyn Fn(PathId) -> f64) -> Vec<(PathId, u32)> {
        let mut all: Vec<(PathId, u32)> = hot.iter().collect();
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| lengths(b.0).total_cmp(&lengths(a.0)))
                .then_with(|| a.0.cmp(&b.0))
        });
        all
    }

    #[test]
    fn top_iter_orders_by_hotness_length_id() {
        let mut hot = h(100);
        let len = |id: PathId| [30.0, 10.0, 30.0, 50.0][id.0 as usize];
        for (id, crossings) in [(0u64, 2), (1, 2), (2, 1), (3, 1)] {
            for _ in 0..crossings {
                hot.record_crossing(PathId(id), Timestamp(0), len(PathId(id)));
            }
        }
        // Hotness 2 beats 1; equal hotness breaks to longer; equal
        // length (none here at equal hotness) would break to lower id.
        let got: Vec<(PathId, u32)> = hot.top_iter().collect();
        assert_eq!(got, vec![(PathId(0), 2), (PathId(1), 2), (PathId(3), 1), (PathId(2), 1)]);
        assert_eq!(got, oracle_order(&hot, &len));
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_tracks_advance_and_forget() {
        let mut hot = h(50);
        let len = |_: PathId| 1.0;
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expires at 50
        hot.record_crossing(PathId(1), Timestamp(40), 1.0); // expires at 90
        hot.record_crossing(PathId(2), Timestamp(40), 1.0);
        hot.record_crossing(PathId(3), Timestamp(40), 1.0);
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 2)));

        // First crossing of 1 expires: 1 drops to hotness 1, and the
        // rank falls back to id order among the three singletons.
        hot.advance(Timestamp(50));
        assert_eq!(hot.top_iter().collect::<Vec<_>>(), oracle_order(&hot, &len));
        assert_eq!(hot.top_iter().next(), Some((PathId(1), 1)));

        hot.forget(PathId(1));
        assert_eq!(hot.top_iter().next(), Some((PathId(2), 1)));
        assert_eq!(hot.top_iter().count(), 2);
        hot.check_consistency().unwrap();

        // Everything expires; the rank set drains with the counters.
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.top_iter().count(), 0);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn rank_matches_oracle_under_random_churn() {
        // Deterministic pseudo-random schedule of record / advance /
        // forget; the incremental order must equal the full sort at
        // every step (the sort-based oracle of the old top_n).
        let mut hot = h(23);
        let len = |id: PathId| ((id.0 * 37) % 101) as f64;
        let mut state = 7u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for step in 0..600 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
            }
            assert_eq!(
                hot.top_iter().collect::<Vec<_>>(),
                oracle_order(&hot, &len),
                "divergence at step {step}, t={now}"
            );
            hot.check_consistency().unwrap();
        }
    }

    #[test]
    fn forget_removes_counter() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0);
        hot.forget(PathId(1));
        assert_eq!(hot.get(PathId(1)), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn forget_tombstones_reclaim_or_compact() {
        let mut hot = h(100);
        hot.record_crossing(PathId(1), Timestamp(0), 1.0); // expiry 100
        hot.record_crossing(PathId(1), Timestamp(5), 1.0); // expiry 105
        hot.record_crossing(PathId(2), Timestamp(3), 1.0); // expiry 103
        assert_eq!(hot.pending_events(), 3);

        // Forgetting 1 tombstones its two events; they now outnumber the
        // single live event, so compaction sweeps them out of the wheel
        // immediately — no waiting for their natural expiry.
        hot.forget(PathId(1));
        assert_eq!(hot.pending_events(), 1);
        assert_eq!(hot.queued_events(), 1, "tombstones not compacted");
        hot.check_consistency().unwrap();

        // The live path expires normally.
        assert_eq!(hot.advance(Timestamp(103)), vec![PathId(2)]);
        assert_eq!(hot.queued_events(), 0);
        assert_eq!(hot.pending_events(), 0);
    }

    #[test]
    fn forget_tombstones_below_threshold_reclaim_on_expiry() {
        // With tombstones a minority, compaction does not trigger: the
        // dead events stay bucketed and are reclaimed as they fire.
        let mut hot = h(100);
        for i in 0..5u64 {
            hot.record_crossing(PathId(i), Timestamp(i), 1.0); // expiries 100..105
        }
        hot.forget(PathId(0));
        assert_eq!(hot.pending_events(), 4);
        assert_eq!(hot.queued_events(), 5, "minority tombstone swept too eagerly");
        hot.check_consistency().unwrap();

        // The tombstoned event fires at t=100 and is reclaimed silently;
        // nobody dies until the live paths expire.
        assert!(hot.advance(Timestamp(100)).is_empty());
        assert_eq!(hot.queued_events(), 4);
        assert_eq!(hot.pending_events(), 4);
        let mut died = hot.advance(Timestamp(200));
        died.sort_unstable();
        assert_eq!(died, (1..5).map(PathId).collect::<Vec<_>>());
        hot.check_consistency().unwrap();
    }

    #[test]
    fn same_timestamp_events_expire_in_id_order() {
        // Many events sharing one expiry instant: `died` must come back
        // ordered by id — the `(expiry, id)` order the heap produced.
        let mut hot = h(10);
        for id in [9u64, 3, 7, 1, 5] {
            hot.record_crossing(PathId(id), Timestamp(4), 1.0); // all expire at 14
        }
        assert_eq!(hot.advance(Timestamp(14)), [1u64, 3, 5, 7, 9].map(PathId).to_vec());
        hot.check_consistency().unwrap();
    }

    #[test]
    fn far_future_events_cascade_across_levels() {
        // A huge window puts the expiry many wheel levels above the
        // clock; advancing in uneven steps must cascade it down without
        // firing early, and fire it exactly on time.
        let w = (1u64 << 40) + 12345;
        let mut hot = h(w);
        hot.record_crossing(PathId(1), Timestamp(7), 1.0);
        let expiry = 7 + w;
        let mut now = 0u64;
        // Uneven exponential-ish steps that cross several level
        // boundaries, stopping just short of the expiry.
        while now + (now / 2) + 13 < expiry {
            now += now / 2 + 13;
            assert!(hot.advance(Timestamp(now)).is_empty(), "fired early at t={now}");
            assert_eq!(hot.get(PathId(1)), 1);
            hot.check_consistency().unwrap();
        }
        assert!(hot.advance(Timestamp(expiry - 1)).is_empty());
        assert_eq!(hot.advance(Timestamp(expiry)), vec![PathId(1)]);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn late_events_land_in_ready_and_fire_next_advance() {
        // A crossing whose expiry is at or before the wheel clock (the
        // window already slid past it) must still fire — on the next
        // advance that reaches its expiry, not before.
        let mut hot = h(10);
        hot.advance(Timestamp(100));
        hot.record_crossing(PathId(1), Timestamp(85), 1.0); // expiry 95 <= clock 100
        assert_eq!(hot.pending_events(), 1);
        hot.check_consistency().unwrap();
        // Clock is already past the expiry; the event fires immediately.
        assert_eq!(hot.advance(Timestamp(100)), vec![PathId(1)]);
        assert_eq!(hot.pending_events(), 0);
        hot.check_consistency().unwrap();
    }

    #[test]
    fn checkpoint_parts_roundtrip_continues_identically() {
        // Drive a table through deterministic churn, snapshot its slab /
        // events / tombstones, rebuild, and check both copies stay in
        // lock-step through further churn — the in-crate version of the
        // restart-parity property the checkpoint module relies on.
        let mut hot = h(23);
        let len = |id: PathId| ((id.0 * 37) % 101) as f64;
        let mut state = 99u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..300 {
            now += rand() % 3;
            hot.advance(Timestamp(now));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
            }
        }
        let mut copy = Hotness::from_checkpoint_parts(
            hot.window(),
            hot.heat_slice().to_vec(),
            hot.events_vec(),
            hot.dead_entries(),
            hot.total_recorded(),
            hot.clock(),
        )
        .unwrap();
        copy.check_consistency().unwrap();
        assert_eq!(copy.heat_slice(), hot.heat_slice());
        assert_eq!(copy.events_vec(), hot.events_vec());
        for _ in 0..300 {
            now += rand() % 3;
            assert_eq!(hot.advance(Timestamp(now)), copy.advance(Timestamp(now)));
            let id = PathId(rand() % 12);
            if rand() % 7 == 0 {
                hot.forget(id);
                copy.forget(id);
            } else {
                hot.record_crossing(id, Timestamp(now), len(id));
                copy.record_crossing(id, Timestamp(now), len(id));
            }
            assert_eq!(hot.heat_slice(), copy.heat_slice());
            assert_eq!(hot.events_vec(), copy.events_vec());
            assert_eq!(hot.top_iter().collect::<Vec<_>>(), copy.top_iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn checkpoint_restore_is_byte_idempotent() {
        // The canonical event order makes checkpoint-of-restore
        // reproduce the original sections exactly, even though the
        // restored wheel's internal bucket layout differs from the
        // original's (restore inserts against the final clock; the
        // original cascaded its way there).
        let mut hot = h(1 << 20);
        let mut state = 3u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for _ in 0..200 {
            now += rand() % 1000;
            hot.advance(Timestamp(now));
            hot.record_crossing(PathId(rand() % 40), Timestamp(now), 1.0);
        }
        let restore = |h: &Hotness| {
            Hotness::from_checkpoint_parts(
                h.window(),
                h.heat_slice().to_vec(),
                h.events_vec(),
                h.dead_entries(),
                h.total_recorded(),
                h.clock(),
            )
            .unwrap()
        };
        let once = restore(&hot);
        let twice = restore(&once);
        assert_eq!(once.events_vec(), hot.events_vec());
        assert_eq!(twice.events_vec(), hot.events_vec());
        assert_eq!(once.heat_slice(), hot.heat_slice());
        assert_eq!(once.dead_entries(), hot.dead_entries());
        assert_eq!(once.clock(), hot.clock());
        once.check_consistency().unwrap();
        twice.check_consistency().unwrap();
    }

    #[test]
    fn checkpoint_parts_reject_structural_corruption() {
        let mut hot = h(10);
        hot.record_crossing(PathId(1), Timestamp(0), 2.0);
        hot.record_crossing(PathId(2), Timestamp(1), 3.0);
        let heat = hot.heat_slice().to_vec();
        let events = hot.events_vec();
        let w = hot.window();
        let t0 = Timestamp(0);

        // Duplicate slab id.
        let mut dup = heat.clone();
        dup.push(heat[0]);
        assert!(Hotness::from_checkpoint_parts(w, dup, events.clone(), vec![], 3, t0).is_err());
        // Zero count.
        let mut zero = heat.clone();
        zero[0].count = 0;
        assert!(Hotness::from_checkpoint_parts(w, zero, events.clone(), vec![], 2, t0).is_err());
        // Canonical (expiry, id) order violated.
        let mut bad = events.clone();
        bad.reverse();
        if bad != events {
            assert!(Hotness::from_checkpoint_parts(w, heat.clone(), bad, vec![], 2, t0).is_err());
        }
        // Event/counter imbalance.
        assert!(Hotness::from_checkpoint_parts(w, heat.clone(), vec![], vec![], 2, t0).is_err());
        // Tombstone colliding with a live id.
        assert!(Hotness::from_checkpoint_parts(
            w,
            heat,
            events,
            vec![DeadEntry { id: PathId(1), events: 1 }],
            2,
            t0
        )
        .is_err());
    }

    #[test]
    fn layouts_are_padding_free() {
        assert_eq!(std::mem::size_of::<HeatEntry>(), 24);
        assert_eq!(std::mem::size_of::<ExpiryEvent>(), 16);
        assert_eq!(std::mem::size_of::<DeadEntry>(), 16);
        assert_eq!(std::mem::align_of::<HeatEntry>(), 8);
    }

    #[test]
    fn forget_heavy_churn_does_not_leak() {
        // A long run that records and immediately forgets distinct ids:
        // without compaction the wheel would hold every event for a
        // whole window (here 10_000 timestamps deep).
        let mut hot = h(10_000);
        for i in 0..1_000u64 {
            hot.advance(Timestamp(i));
            hot.record_crossing(PathId(i), Timestamp(i), 1.0);
            hot.forget(PathId(i));
        }
        hot.advance(Timestamp(1_000));
        assert_eq!(hot.pending_events(), 0);
        // Compaction has swept every tombstone; the wheel is empty even
        // though no event has naturally expired.
        assert_eq!(hot.queued_events(), 0);
        assert!(hot.is_empty());
    }

    /// A minimal `(expiry, id)` min-heap — the semantics the wheel must
    /// reproduce — driven side by side with the wheel-backed table
    /// through adversarial schedules. This is the in-module complement
    /// to the whole-table model proptest in `tests/props.rs`.
    #[test]
    fn wheel_matches_heap_reference_side_by_side() {
        use std::collections::BinaryHeap;
        let w = 97u64;
        let mut hot = h(w);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
        let mut state = 2024u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        for step in 0..2_000 {
            // Occasional large jumps exercise multi-level cascades.
            now += if rand() % 50 == 0 { 1 + rand() % 500 } else { rand() % 4 };
            // Reference: pop everything due, in (expiry, id) order.
            let mut ref_died: Vec<u64> = Vec::new();
            while let Some(&Reverse((exp, id))) = heap.peek() {
                if exp > now {
                    break;
                }
                heap.pop();
                let c = counts.get_mut(&id).unwrap();
                *c -= 1;
                if *c == 0 {
                    counts.remove(&id);
                    ref_died.push(id);
                }
            }
            let died: Vec<u64> = hot.advance(Timestamp(now)).iter().map(|p| p.0).collect();
            assert_eq!(died, ref_died, "died order diverged at step {step}, t={now}");

            let id = rand() % 16;
            hot.record_crossing(PathId(id), Timestamp(now), 1.0);
            heap.push(Reverse((now + w, id)));
            *counts.entry(id).or_insert(0) += 1;

            for check in 0..16u64 {
                assert_eq!(
                    hot.get(PathId(check)),
                    counts.get(&check).copied().unwrap_or(0),
                    "count diverged for {check} at step {step}"
                );
            }
            assert_eq!(hot.pending_events(), heap.len(), "pending diverged at step {step}");
            if step % 64 == 0 {
                hot.check_consistency().unwrap();
            }
        }
    }
}
