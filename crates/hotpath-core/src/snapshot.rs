//! Lock-free publication of [`HotSnapshot`]s: the serving-side read
//! path.
//!
//! A [`SnapshotCell`] holds the currently published snapshot behind one
//! `AtomicPtr`. The writer (the engine's publish stage) installs a new
//! snapshot with [`SnapshotCell::publish`]; readers go through a
//! [`SnapshotHandle`] whose [`read`](SnapshotHandle::read) is
//! *lock-free and allocation-free*: two atomic loads and one atomic
//! store on the fast path, no reference-count traffic, no mutex, and no
//! way for any number of readers to block the publish stage.
//!
//! ## How reclamation works (hazard pointers)
//!
//! The published pointer is a leaked `Arc<HotSnapshot>`. A reader
//! cannot simply bump the refcount after loading the pointer — between
//! the load and the increment the writer may have swapped and dropped
//! the snapshot (the classic use-after-free window). Instead every
//! handle owns one *hazard slot*:
//!
//! 1. the reader loads the published pointer and stores it in its slot;
//! 2. it re-loads the published pointer; if unchanged, the slot is
//!    visible to any future publish and the snapshot cannot be freed
//!    while the guard lives — the read is done (no retry in the absence
//!    of a concurrent publish);
//! 3. dropping the [`SnapshotGuard`] clears the slot.
//!
//! The writer retires swapped-out pointers to a graveyard and, on each
//! publish, frees every retired snapshot no hazard slot still protects.
//! Both the slot registry and the graveyard live behind `Mutex`es, but
//! those are touched only by the writer and by handle registration —
//! never on the read path.
//!
//! A seqlock was rejected: validating *after* cloning a non-`Copy`
//! payload (the snapshot's `Arc` fields) already touches freed memory
//! on a torn read, so it cannot be made sound here without the same
//! deferred reclamation this design provides anyway.

use crate::coordinator::HotSnapshot;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// One reader's hazard slot: the snapshot pointer it is currently
/// dereferencing (null when idle). `active` is cleared when the owning
/// handle drops, letting the writer prune the registry.
struct HazardSlot {
    protected: AtomicPtr<HotSnapshot>,
    active: std::sync::atomic::AtomicBool,
}

/// The atomically swapped publication point for [`HotSnapshot`]s.
///
/// One writer (the engine) publishes; any number of [`SnapshotHandle`]
/// readers observe, wait-free in the absence of a concurrent publish
/// and lock-free always. Publishing never waits for readers: an old
/// snapshot still under a guard is parked in the graveyard and freed by
/// a later publish (or by the cell's drop).
pub struct SnapshotCell {
    /// The published snapshot, as a leaked `Arc` pointer. Never null.
    current: AtomicPtr<HotSnapshot>,
    /// Every hazard slot ever registered (writer/registration only).
    slots: Mutex<Vec<Arc<HazardSlot>>>,
    /// Swapped-out snapshots awaiting reclamation (writer only).
    graveyard: Mutex<Vec<*const HotSnapshot>>,
}

// SAFETY: the raw pointers are leaked `Arc<HotSnapshot>`s (HotSnapshot
// is Send + Sync); all cross-thread access goes through atomics or the
// mutexes, and reclamation only frees pointers no hazard slot protects.
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl SnapshotCell {
    /// A cell publishing the empty epoch-0 snapshot.
    pub fn new() -> Arc<Self> {
        Arc::new(SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(Arc::new(HotSnapshot::empty())) as *mut _),
            slots: Mutex::new(Vec::new()),
            graveyard: Mutex::new(Vec::new()),
        })
    }

    /// Registers a new reader. Registration takes a lock (it is not the
    /// read path); the returned handle reads without ever locking.
    pub fn register(self: &Arc<Self>) -> SnapshotHandle {
        let slot = Arc::new(HazardSlot {
            protected: AtomicPtr::new(std::ptr::null_mut()),
            active: std::sync::atomic::AtomicBool::new(true),
        });
        self.slots.lock().expect("slot registry poisoned").push(slot.clone());
        SnapshotHandle { cell: self.clone(), slot }
    }

    /// Installs `snap` as the published snapshot and reclaims every
    /// previously retired snapshot no reader still protects. Writer
    /// side only; never blocks on readers.
    pub fn publish(&self, snap: Arc<HotSnapshot>) {
        let fresh = Arc::into_raw(snap) as *mut HotSnapshot;
        // SeqCst pairs with the readers' protect/validate sequence: a
        // reader that validated against the old pointer has its slot
        // store ordered before our scan below observes the slots.
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let mut graveyard = self.graveyard.lock().expect("graveyard poisoned");
        graveyard.push(old as *const HotSnapshot);
        let mut slots = self.slots.lock().expect("slot registry poisoned");
        slots.retain(|s| {
            s.active.load(Ordering::Acquire) || !s.protected.load(Ordering::SeqCst).is_null()
        });
        graveyard.retain(|&retired| {
            let hazarded =
                slots.iter().any(|s| std::ptr::eq(s.protected.load(Ordering::SeqCst), retired));
            if !hazarded {
                // SAFETY: `retired` came from Arc::into_raw in publish
                // or new, was removed from `current`, and no hazard
                // slot protects it — this drop is the last reference
                // the cell holds.
                unsafe { drop(Arc::from_raw(retired)) };
            }
            hazarded
        });
    }

    /// The published snapshot as an owned `Arc` (refcounted; allocates
    /// nothing but does touch the count). For the hot path, prefer
    /// [`SnapshotHandle::read`].
    pub fn load(self: &Arc<Self>) -> Arc<HotSnapshot> {
        // Borrow protection from a throwaway slot: registration locks,
        // so this is the convenience path, not the serving path.
        let mut handle = self.register();
        let guard = handle.read();
        let ptr = guard.ptr;
        // SAFETY: the hazard guard keeps `ptr` alive across the
        // increment; from_raw then adopts the new count.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Epoch stamp of the published snapshot (a full hazard-protected
    /// read, exposed for cheap progress checks).
    pub fn epoch(self: &Arc<Self>) -> u64 {
        self.load().epoch
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // Handles hold an Arc to the cell, so no reader can be active
        // here; everything retired plus the current snapshot is ours.
        let current = *self.current.get_mut();
        // SAFETY: sole owner at drop; both pointers came from into_raw.
        unsafe { drop(Arc::from_raw(current as *const HotSnapshot)) };
        for &retired in self.graveyard.lock().expect("graveyard poisoned").iter() {
            unsafe { drop(Arc::from_raw(retired)) };
        }
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell").finish_non_exhaustive()
    }
}

/// A registered reader of a [`SnapshotCell`]. Cheap to create (one
/// registration lock), free to read: [`read`](Self::read) is
/// lock-free, allocation-free, and leaves the `Arc` count untouched.
///
/// One handle serves one thread at a time (`read` takes `&mut self` so
/// at most one guard per handle exists); spawn one handle per reader
/// thread.
#[derive(Debug)]
pub struct SnapshotHandle {
    cell: Arc<SnapshotCell>,
    slot: Arc<HazardSlot>,
}

impl std::fmt::Debug for HazardSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardSlot").finish_non_exhaustive()
    }
}

impl SnapshotHandle {
    /// The published snapshot, borrowed under hazard protection. Two
    /// atomic loads and one store on the uncontended path; retries only
    /// while a publish races the protect/validate pair.
    pub fn read(&mut self) -> SnapshotGuard<'_> {
        loop {
            let ptr = self.cell.current.load(Ordering::SeqCst);
            self.slot.protected.store(ptr, Ordering::SeqCst);
            if std::ptr::eq(self.cell.current.load(Ordering::SeqCst), ptr) {
                // The slot was visible before any publish that could
                // retire `ptr` scans — the snapshot is pinned.
                return SnapshotGuard { slot: &self.slot, ptr };
            }
            // A publish won the race; drop the stale protection and
            // try again against the new pointer.
            self.slot.protected.store(std::ptr::null_mut(), Ordering::SeqCst);
        }
    }

    /// The published snapshot as an owned `Arc`, for readers that need
    /// to hold it past the guard (refcount traffic, still no lock).
    pub fn load(&mut self) -> Arc<HotSnapshot> {
        let guard = self.read();
        let ptr = guard.ptr;
        // SAFETY: the guard pins `ptr` across the increment.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Epoch stamp of the published snapshot.
    pub fn epoch(&mut self) -> u64 {
        self.read().epoch
    }
}

impl Drop for SnapshotHandle {
    fn drop(&mut self) {
        self.slot.protected.store(std::ptr::null_mut(), Ordering::SeqCst);
        self.slot.active.store(false, Ordering::Release);
    }
}

/// A hazard-protected borrow of the published snapshot. Dereferences to
/// [`HotSnapshot`]; dropping it releases the protection. While any
/// guard lives, its snapshot cannot be reclaimed — but the writer never
/// waits: it publishes past the guard and defers the free.
pub struct SnapshotGuard<'a> {
    slot: &'a Arc<HazardSlot>,
    ptr: *const HotSnapshot,
}

impl std::ops::Deref for SnapshotGuard<'_> {
    type Target = HotSnapshot;

    fn deref(&self) -> &HotSnapshot {
        // SAFETY: `ptr` is a live leaked Arc pinned by this guard's
        // hazard slot until drop.
        unsafe { &*self.ptr }
    }
}

impl Drop for SnapshotGuard<'_> {
    fn drop(&mut self) {
        self.slot.protected.store(std::ptr::null_mut(), Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SnapshotGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotGuard").field("epoch", &self.epoch).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    /// A snapshot whose every stamped field is a function of `epoch`,
    /// so readers can detect torn or stale-mixed images.
    fn stamped(epoch: u64) -> Arc<HotSnapshot> {
        let mut s = HotSnapshot::empty();
        s.epoch = epoch;
        s.timestamp = Timestamp(epoch * 10);
        s.hot_count = epoch as usize;
        s.index_size = (epoch * 3) as usize;
        Arc::new(s)
    }

    #[test]
    fn publish_and_read_round_trip() {
        let cell = SnapshotCell::new();
        let mut handle = cell.register();
        assert_eq!(handle.read().epoch, 0);
        cell.publish(stamped(7));
        let guard = handle.read();
        assert_eq!(guard.epoch, 7);
        assert_eq!(guard.timestamp, Timestamp(70));
        drop(guard);
        assert_eq!(cell.epoch(), 7);
        assert_eq!(handle.load().epoch, 7);
    }

    #[test]
    fn guard_reads_do_not_touch_the_refcount() {
        let cell = SnapshotCell::new();
        let snap = stamped(1);
        let baseline = Arc::strong_count(&snap);
        cell.publish(snap.clone());
        let mut handle = cell.register();
        let guard = handle.read();
        assert_eq!(guard.epoch, 1);
        // The cell leaked one count for its published pointer; the
        // guard itself added none.
        assert_eq!(Arc::strong_count(&snap), baseline + 1, "guard bumped the refcount");
        drop(guard);
        assert_eq!(Arc::strong_count(&snap), baseline + 1);
    }

    #[test]
    fn held_guard_pins_its_snapshot_across_publishes() {
        let cell = SnapshotCell::new();
        let mut handle = cell.register();
        cell.publish(stamped(1));
        let guard = handle.read();
        for e in 2..=20 {
            cell.publish(stamped(e));
        }
        // The pinned snapshot is intact even though 19 newer ones were
        // published over it (its memory must not have been reclaimed).
        assert_eq!(guard.epoch, 1);
        assert_eq!(guard.index_size, 3);
        drop(guard);
        assert_eq!(handle.read().epoch, 20);
        // The next publish may now reclaim epoch 1's snapshot.
        cell.publish(stamped(21));
        assert_eq!(handle.read().epoch, 21);
    }

    #[test]
    fn retired_snapshots_are_freed_once_unprotected() {
        let cell = SnapshotCell::new();
        let snap = stamped(1);
        let weak = Arc::downgrade(&snap);
        cell.publish(snap);
        assert!(weak.upgrade().is_some());
        cell.publish(stamped(2)); // retires epoch 1
        cell.publish(stamped(3)); // reclaims it (no hazards)
        assert!(weak.upgrade().is_none(), "unprotected retired snapshot leaked");
    }

    #[test]
    fn dropping_the_cell_frees_everything() {
        let cell = SnapshotCell::new();
        let a = stamped(1);
        let b = stamped(2);
        let (wa, wb) = (Arc::downgrade(&a), Arc::downgrade(&b));
        cell.publish(a);
        cell.publish(b);
        drop(cell);
        assert!(wa.upgrade().is_none() && wb.upgrade().is_none(), "cell leaked snapshots");
    }

    /// The spawn-and-hammer consistency pin: reader threads spin on
    /// `read()` while the writer publishes continuously. Every observed
    /// image must be internally consistent (all fields agree with its
    /// epoch stamp — no torn or mixed snapshots) and each reader's
    /// epoch sequence must be monotone non-decreasing.
    #[test]
    fn hammered_readers_always_see_consistent_monotone_snapshots() {
        let cell = SnapshotCell::new();
        let readers = 4;
        let publishes = 3_000u64;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for _ in 0..readers {
                let mut handle = cell.register();
                let stop = stop.clone();
                joins.push(scope.spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = handle.read();
                        let e = snap.epoch;
                        assert_eq!(snap.timestamp, Timestamp(e * 10), "torn read at epoch {e}");
                        assert_eq!(snap.hot_count, e as usize, "torn read at epoch {e}");
                        assert_eq!(snap.index_size, (e * 3) as usize, "torn read at epoch {e}");
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                        reads += 1;
                    }
                    reads
                }));
            }
            for e in 1..=publishes {
                cell.publish(stamped(e));
            }
            stop.store(true, Ordering::Relaxed);
            let total: u64 = joins.into_iter().map(|j| j.join().expect("reader panicked")).sum();
            assert!(total > 0, "readers never ran");
        });
        assert_eq!(cell.epoch(), publishes);
    }
}
