//! Communication and processing accounting.
//!
//! The evaluation's efficiency metrics — messages exchanged, bytes on the
//! wire, and coordinator processing time per epoch — are collected here
//! so both the simulation harness and the benches read one source of
//! truth.

use std::time::Duration;

/// Monotone counters for client/coordinator traffic.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CommStats {
    /// State messages from objects to the coordinator.
    pub uplink_msgs: u64,
    /// Uplink payload bytes.
    pub uplink_bytes: u64,
    /// Endpoint responses from the coordinator to objects.
    pub downlink_msgs: u64,
    /// Downlink payload bytes.
    pub downlink_bytes: u64,
}

impl CommStats {
    /// Records one uplink message of `bytes` payload.
    #[inline]
    pub fn record_uplink(&mut self, bytes: usize) {
        self.uplink_msgs += 1;
        self.uplink_bytes += bytes as u64;
    }

    /// Records one downlink message of `bytes` payload.
    #[inline]
    pub fn record_downlink(&mut self, bytes: usize) {
        self.downlink_msgs += 1;
        self.downlink_bytes += bytes as u64;
    }

    /// Total messages in both directions.
    #[inline]
    pub fn total_msgs(&self) -> u64 {
        self.uplink_msgs + self.downlink_msgs
    }

    /// Total bytes in both directions.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            uplink_msgs: self.uplink_msgs - earlier.uplink_msgs,
            uplink_bytes: self.uplink_bytes - earlier.uplink_bytes,
            downlink_msgs: self.downlink_msgs - earlier.downlink_msgs,
            downlink_bytes: self.downlink_bytes - earlier.downlink_bytes,
        }
    }
}

/// Monotone admission-control counters: what the drain-ingest stage
/// did with overload. All zeros while the ingest bound is off (the
/// default), so the paper pipeline reads as fully admitted.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct AdmissionStats {
    /// States admitted into epoch processing.
    pub admitted: u64,
    /// States refused at the cap under the `Reject` policy.
    pub rejected: u64,
    /// States shed from the queue front under `ShedOldest`.
    pub shed: u64,
    /// States removed because their client was ejected under
    /// `EjectSlowest`.
    pub ejected: u64,
    /// Epochs that shed Phase B refinement under overload.
    pub degraded_epochs: u64,
}

impl AdmissionStats {
    /// Total states turned away, under any policy.
    #[inline]
    pub fn turned_away(&self) -> u64 {
        self.rejected + self.shed + self.ejected
    }
}

/// Coordinator-side processing accounting.
#[derive(Clone, Copy, Default, Debug)]
pub struct ProcessingStats {
    /// Epochs processed.
    pub epochs: u64,
    /// States processed across all epochs.
    pub states_processed: u64,
    /// Accumulated SinglePath wall time.
    pub strategy_time: Duration,
    /// Accumulated hotness-expiry wall time.
    pub expiry_time: Duration,
    /// Accumulated snapshot-publish wall time (the epoch pipeline's
    /// publish stage; the pipelined engine overlaps it with ingest).
    pub publish_time: Duration,
    /// Case-1 selections (existing path reused).
    pub case1: u64,
    /// Case-2 selections (existing vertex reused).
    pub case2: u64,
    /// Case-3 selections (fresh vertex generated).
    pub case3: u64,
}

impl ProcessingStats {
    /// Mean strategy time per epoch.
    pub fn mean_epoch_time(&self) -> Duration {
        if self.epochs == 0 {
            Duration::ZERO
        } else {
            self.strategy_time / self.epochs as u32
        }
    }

    /// Fraction of selections that reused an existing path (Case 1).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.case1 + self.case2 + self.case3;
        if total == 0 {
            0.0
        } else {
            self.case1 as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_counters_accumulate() {
        let mut c = CommStats::default();
        c.record_uplink(72);
        c.record_uplink(72);
        c.record_downlink(24);
        assert_eq!(c.uplink_msgs, 2);
        assert_eq!(c.uplink_bytes, 144);
        assert_eq!(c.downlink_msgs, 1);
        assert_eq!(c.total_msgs(), 3);
        assert_eq!(c.total_bytes(), 168);
    }

    #[test]
    fn since_computes_deltas() {
        let mut c = CommStats::default();
        c.record_uplink(10);
        let snap = c;
        c.record_uplink(10);
        c.record_downlink(5);
        let d = c.since(&snap);
        assert_eq!(d.uplink_msgs, 1);
        assert_eq!(d.uplink_bytes, 10);
        assert_eq!(d.downlink_msgs, 1);
        assert_eq!(d.downlink_bytes, 5);
    }

    #[test]
    fn processing_means_and_ratios() {
        let mut p = ProcessingStats::default();
        assert_eq!(p.mean_epoch_time(), Duration::ZERO);
        assert_eq!(p.reuse_ratio(), 0.0);
        p.epochs = 4;
        p.strategy_time = Duration::from_millis(100);
        p.case1 = 6;
        p.case2 = 3;
        p.case3 = 1;
        assert_eq!(p.mean_epoch_time(), Duration::from_millis(25));
        assert!((p.reuse_ratio() - 0.6).abs() < 1e-12);
    }
}
