//! The engine layer: epoch execution behind one interface, with a
//! synchronous backend and a pipelined (double-buffered) backend.
//!
//! [`Coordinator::process_epoch`] is internally four named stages —
//! *drain-ingest* → *Phase A* → *Phase B* → *publish* — and an
//! [`Engine`] decides how those stages are scheduled against ingest:
//!
//! * [`SyncEngine`] — today's behavior at any shard count: `submit` goes
//!   straight to the coordinator, every stage runs on the caller's
//!   thread inside `process_epoch`.
//! * [`PipelinedEngine`] — double-buffers the ingest: `submit` /
//!   `submit_batch` land in an engine-side *front* buffer (pre-routed
//!   per shard with the coordinator's own [`ShardRouter`] rule) while a
//!   dedicated worker thread owns the coordinator and runs the epoch
//!   stages against the sealed *back* buffer. `process_epoch` blocks
//!   only until the respond stage — the worker then finishes the
//!   *publish* stage (top-k merge, snapshot build) and the per-tick
//!   window expiry in the background, overlapped with the caller's next
//!   ticks of ingest. Reads go through the epoch-stamped
//!   [`HotSnapshot`], never through live coordinator state.
//!
//! Both backends are observationally identical, bit for bit: same
//! responses in the same order, same snapshots, same communication
//! accounting, same final coordinator (pinned by the engine-parity
//! proptests and `tests/scenario_parity.rs`). Responses are causally
//! required at the epoch boundary — clients seed their next SSA from
//! them — so the strategy stages cannot move off the boundary's
//! critical path without changing behavior; what the pipeline overlaps
//! is everything after the respond stage plus all between-epoch
//! maintenance. Going further (speculative strategy evaluation,
//! cross-process shards) is future work recorded in the ROADMAP.

use crate::config::Config;
use crate::coordinator::{Coordinator, EndpointResponse, HotSnapshot, ShardRouter};
use crate::raytrace::ClientState;
use crate::time::Timestamp;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which epoch-execution backend to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Every stage on the caller's thread (today's behavior).
    #[default]
    Sync,
    /// Double-buffered ingest with the epoch stages on a worker thread.
    Pipelined,
}

impl EngineKind {
    /// Parses a CLI tag (`sync` / `pipelined`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "sync" => Some(EngineKind::Sync),
            "pipelined" => Some(EngineKind::Pipelined),
            _ => None,
        }
    }

    /// Wraps a coordinator in this backend.
    pub fn build(self, coordinator: Coordinator) -> Box<dyn Engine> {
        match self {
            EngineKind::Sync => Box::new(SyncEngine::new(coordinator)),
            EngineKind::Pipelined => Box::new(PipelinedEngine::spawn(coordinator)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Sync => "sync",
            EngineKind::Pipelined => "pipelined",
        })
    }
}

/// Epoch execution behind one interface: buffered ingest, the epoch
/// boundary, and snapshot-based reads. Both backends are bit-for-bit
/// identical; only the thread the stages run on differs.
pub trait Engine {
    /// Which backend this is.
    fn kind(&self) -> EngineKind;
    /// The configuration in force.
    fn config(&self) -> &Config;
    /// Accepts one state message for the next epoch.
    fn submit(&mut self, state: ClientState);
    /// Accepts a batch of state messages, in order — equivalent to a
    /// `submit` loop.
    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>);
    /// States buffered for the next epoch.
    fn pending_len(&self) -> usize;
    /// Advances the sliding-window clock (expiry). The pipelined
    /// backend runs the expiry on its worker, overlapped with ingest.
    fn advance_time(&mut self, now: Timestamp);
    /// Runs the epoch ending at `now` and returns its endpoint
    /// responses. The pipelined backend returns as soon as the respond
    /// stage completes; publish finishes in the background.
    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse>;
    /// The snapshot published by the last `process_epoch` (an empty
    /// epoch-0 snapshot before the first). Blocks until the publish
    /// stage lands if it is still in flight.
    fn snapshot(&mut self) -> Arc<HotSnapshot>;
    /// Tears the engine down and returns the final coordinator (any
    /// still-buffered ingest is transferred into its pending batch, so
    /// the result is identical to the sync backend's coordinator).
    fn finish(self: Box<Self>) -> Coordinator;
}

// ---------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------

/// The synchronous backend: a thin adapter over [`Coordinator`] that
/// captures the published snapshot at each boundary.
pub struct SyncEngine {
    coordinator: Coordinator,
    last: Arc<HotSnapshot>,
}

impl SyncEngine {
    /// Wraps a coordinator.
    pub fn new(coordinator: Coordinator) -> Self {
        SyncEngine { coordinator, last: Arc::new(HotSnapshot::empty()) }
    }
}

impl Engine for SyncEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sync
    }

    fn config(&self) -> &Config {
        self.coordinator.config()
    }

    fn submit(&mut self, state: ClientState) {
        self.coordinator.submit(state);
    }

    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>) {
        for state in states {
            self.coordinator.submit(state);
        }
    }

    fn pending_len(&self) -> usize {
        self.coordinator.pending_len()
    }

    fn advance_time(&mut self, now: Timestamp) {
        self.coordinator.advance_time(now);
    }

    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        let responses = self.coordinator.process_epoch(now);
        // `process_epoch` ends with the publish stage, so this is the
        // freshly published snapshot (comm as of the publish — before
        // any boundary resubmissions land).
        self.last = self.coordinator.snapshot();
        responses
    }

    fn snapshot(&mut self) -> Arc<HotSnapshot> {
        self.last.clone()
    }

    fn finish(self: Box<Self>) -> Coordinator {
        self.coordinator
    }
}

// ---------------------------------------------------------------------
// PipelinedEngine
// ---------------------------------------------------------------------

/// Work sent to the engine worker, in program order.
enum ToWorker {
    /// Advance the window clock (per-tick expiry, run overlapped).
    Advance(Timestamp),
    /// A sealed epoch: the back buffer, its per-shard routing, the
    /// uplink accounting accumulated at submit time, and the boundary.
    Seal {
        states: Vec<ClientState>,
        parts: Vec<Vec<u32>>,
        uplink_msgs: u64,
        uplink_bytes: u64,
        now: Timestamp,
    },
    /// Tear down: transfer any residual front buffer and hand the
    /// coordinator back.
    Finish { states: Vec<ClientState>, parts: Vec<Vec<u32>>, uplink_msgs: u64, uplink_bytes: u64 },
}

/// Replies from the worker. For each `Seal` the worker sends `Epoch`
/// (as soon as the respond stage completes) and then `Published` (when
/// the overlapped publish stage lands); `Finish` is answered with
/// `Done`.
enum FromWorker {
    Epoch {
        responses: Vec<EndpointResponse>,
        /// The previous epoch's drained buffers, recycled as the next
        /// front buffer.
        states_buf: Vec<ClientState>,
        parts_buf: Vec<Vec<u32>>,
    },
    Published(Arc<HotSnapshot>),
    Done(Box<Coordinator>),
}

/// The pipelined backend: ingest double-buffering in front, the epoch
/// stages on a dedicated worker thread that owns the coordinator.
pub struct PipelinedEngine {
    config: Config,
    router: ShardRouter,
    shards: usize,
    /// The front buffer: states submitted since the last seal.
    front: Vec<ClientState>,
    /// Per-shard batch positions of the front buffer (sharded only).
    parts: Vec<Vec<u32>>,
    /// Uplink accounting for the front buffer (merged at seal, exactly
    /// as `Coordinator::submit` would have recorded it).
    uplink_msgs: u64,
    uplink_bytes: u64,
    tx: Option<Sender<ToWorker>>,
    rx: Receiver<FromWorker>,
    worker: Option<JoinHandle<()>>,
    last: Arc<HotSnapshot>,
    /// A `Published` reply is still in flight for the last sealed epoch.
    publish_pending: bool,
}

impl PipelinedEngine {
    /// Moves `coordinator` onto a worker thread and returns the engine.
    pub fn spawn(coordinator: Coordinator) -> Self {
        let config = *coordinator.config();
        let shards = config.shards;
        let router = ShardRouter::new(&config);
        let (tx, work_rx) = channel::<ToWorker>();
        let (reply_tx, rx) = channel::<FromWorker>();
        let worker = std::thread::Builder::new()
            .name("hotpath-engine".into())
            .spawn(move || worker_loop(coordinator, work_rx, reply_tx))
            .expect("spawn engine worker");
        PipelinedEngine {
            config,
            router,
            shards,
            front: Vec::new(),
            parts: if shards > 1 { vec![Vec::new(); shards] } else { Vec::new() },
            uplink_msgs: 0,
            uplink_bytes: 0,
            tx: Some(tx),
            rx,
            worker: Some(worker),
            last: Arc::new(HotSnapshot::empty()),
            publish_pending: false,
        }
    }

    fn send(&self, msg: ToWorker) {
        self.tx.as_ref().expect("engine already finished").send(msg).expect("engine worker died");
    }

    /// Consumes the in-flight `Published` reply, if any (the join point
    /// of the overlapped publish stage).
    fn drain_publish(&mut self) {
        if !self.publish_pending {
            return;
        }
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Published(snap) => self.last = snap,
            _ => unreachable!("protocol: Seal is answered by Epoch then Published"),
        }
        self.publish_pending = false;
    }
}

impl Engine for PipelinedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Pipelined
    }

    fn config(&self) -> &Config {
        &self.config
    }

    fn submit(&mut self, state: ClientState) {
        // Mirrors `Coordinator::submit` exactly: same wire accounting,
        // same shard routing, same batch order.
        self.uplink_msgs += 1;
        self.uplink_bytes += ClientState::WIRE_BYTES as u64;
        if self.shards > 1 {
            let seq = self.front.len() as u32;
            self.parts[self.router.shard_of(&state.start)].push(seq);
        }
        self.front.push(state);
    }

    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>) {
        for state in states {
            self.submit(state);
        }
    }

    fn pending_len(&self) -> usize {
        self.front.len()
    }

    fn advance_time(&mut self, now: Timestamp) {
        // Expiry runs on the worker, overlapped with whatever the
        // caller does next (typically the next tick's ingest).
        self.send(ToWorker::Advance(now));
    }

    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        // Join the previous epoch's publish before re-sealing, so at
        // most one epoch is ever in flight.
        self.drain_publish();
        let states = std::mem::take(&mut self.front);
        let parts = std::mem::take(&mut self.parts);
        let msg = ToWorker::Seal {
            states,
            parts,
            uplink_msgs: std::mem::take(&mut self.uplink_msgs),
            uplink_bytes: std::mem::take(&mut self.uplink_bytes),
            now,
        };
        self.send(msg);
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Epoch { responses, states_buf, parts_buf } => {
                // Double-buffer swap: the worker handed back the other
                // buffer pair, drained and cleared.
                self.front = states_buf;
                self.parts = parts_buf;
                self.publish_pending = true;
                responses
            }
            _ => unreachable!("protocol: Seal is answered by Epoch first"),
        }
    }

    fn snapshot(&mut self) -> Arc<HotSnapshot> {
        self.drain_publish();
        self.last.clone()
    }

    fn finish(mut self: Box<Self>) -> Coordinator {
        self.drain_publish();
        let msg = ToWorker::Finish {
            states: std::mem::take(&mut self.front),
            parts: std::mem::take(&mut self.parts),
            uplink_msgs: std::mem::take(&mut self.uplink_msgs),
            uplink_bytes: std::mem::take(&mut self.uplink_bytes),
        };
        self.send(msg);
        let coordinator = match self.rx.recv().expect("engine worker died") {
            FromWorker::Done(c) => *c,
            _ => unreachable!("protocol: Finish is answered by Done"),
        };
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            worker.join().expect("engine worker panicked");
        }
        coordinator
    }
}

impl Drop for PipelinedEngine {
    fn drop(&mut self) {
        // Close the channel so the worker exits, then reap it. A normal
        // `finish` already took both; this only runs on abandonment.
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: owns the coordinator, applies overlapped expiry, and
/// runs the epoch stages for every sealed batch — replying with the
/// responses before the publish stage so the caller resumes early.
fn worker_loop(mut coordinator: Coordinator, work: Receiver<ToWorker>, reply: Sender<FromWorker>) {
    while let Ok(msg) = work.recv() {
        match msg {
            ToWorker::Advance(now) => coordinator.advance_time(now),
            ToWorker::Seal { states, parts, uplink_msgs, uplink_bytes, now } => {
                let (states_buf, parts_buf) =
                    coordinator.install_routed_batch(states, parts, uplink_msgs, uplink_bytes);
                let batch = coordinator.stage_drain_ingest(now);
                let selections = coordinator.stage_strategy(&batch);
                let responses = coordinator.stage_respond(&selections);
                if reply.send(FromWorker::Epoch { responses, states_buf, parts_buf }).is_err() {
                    break; // engine dropped mid-epoch
                }
                // Overlapped tail: the caller is already ingesting the
                // next epoch while we recycle and publish.
                coordinator.stage_recycle(batch);
                let snap = coordinator.stage_publish();
                if reply.send(FromWorker::Published(snap)).is_err() {
                    break;
                }
            }
            ToWorker::Finish { states, parts, uplink_msgs, uplink_bytes } => {
                let _ = coordinator.install_routed_batch(states, parts, uplink_msgs, uplink_bytes);
                let _ = reply.send(FromWorker::Done(Box::new(coordinator)));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Point, Rect};
    use crate::ObjectId;

    fn cfg(shards: usize) -> Config {
        Config::paper_defaults().with_epoch(10).with_window(100).with_shards(shards)
    }

    fn state(obj: u64, start: (f64, f64), end: (f64, f64), te: u64) -> ClientState {
        let e = Point::new(end.0, end.1);
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(te.saturating_sub(8)),
            fsa: Rect::new(e - Point::new(2.0, 2.0), e + Point::new(2.0, 2.0)),
            te: Timestamp(te),
        }
    }

    /// Drives one engine through a deterministic multi-epoch workload
    /// with mixed single/batch submits and mid-epoch time advances;
    /// returns everything observable.
    #[allow(clippy::type_complexity)]
    fn drive(kind: EngineKind, shards: usize) -> (Vec<Vec<(u64, u64)>>, Vec<(u64, u64, u32)>, u64) {
        let mut engine = kind.build(Coordinator::new(cfg(shards)));
        let mut responses_log = Vec::new();
        let mut s = 7u64;
        let mut rand = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for epoch in 1..=8u64 {
            for tick in 1..=10u64 {
                let now = Timestamp((epoch - 1) * 10 + tick);
                let n = 3 + (rand() % 5) as usize;
                let mk = |i: usize, r: u64| {
                    let corridor = r % 6;
                    let x = (corridor * 500) as f64;
                    let y = ((r / 7) % 4 * 300) as f64;
                    state(i as u64, (x, y), (x + 50.0, y), now.raw())
                };
                if rand() % 2 == 0 {
                    for i in 0..n {
                        let r = rand();
                        engine.submit(mk(i, r));
                    }
                } else {
                    let states: Vec<ClientState> =
                        (0..n).map(|i| (i, rand())).map(|(i, r)| mk(i, r)).collect();
                    engine.submit_batch(&mut states.into_iter());
                }
                engine.advance_time(now);
                if tick == 10 {
                    let resp = engine.process_epoch(now);
                    responses_log
                        .push(resp.iter().map(|r| (r.object.0, r.endpoint.t.raw())).collect());
                }
            }
        }
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 8);
        let coordinator = engine.finish();
        coordinator.check_consistency().unwrap();
        let top: Vec<(u64, u64, u32)> = coordinator
            .top_n(10)
            .iter()
            .map(|h| (h.path.id.0, h.score.to_bits(), h.hotness))
            .collect();
        (responses_log, top, coordinator.comm_stats().uplink_msgs)
    }

    #[test]
    fn pipelined_matches_sync_bit_for_bit() {
        for shards in [1usize, 4] {
            let sync = drive(EngineKind::Sync, shards);
            let pipelined = drive(EngineKind::Pipelined, shards);
            assert_eq!(sync, pipelined, "engines diverged at {shards} shards");
        }
    }

    #[test]
    fn snapshot_is_stamped_and_stable_between_epochs() {
        let mut engine = EngineKind::Pipelined.build(Coordinator::new(cfg(1)));
        assert_eq!(engine.snapshot().epoch, 0);
        engine.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
        assert_eq!(engine.pending_len(), 1);
        let _ = engine.process_epoch(Timestamp(10));
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.timestamp, Timestamp(10));
        assert_eq!(snap.index_size, 1);
        assert_eq!(snap.top_k.len(), 1);
        assert_eq!(snap.comm.uplink_msgs, 1);
        // Ingest after the boundary does not disturb the published view.
        engine.submit(state(2, (0.0, 0.0), (50.0, 0.0), 19));
        let again = engine.snapshot();
        assert_eq!(again.comm.uplink_msgs, 1);
        assert_eq!(engine.pending_len(), 1);
        let coordinator = engine.finish();
        // ...but the residual ingest reached the final coordinator.
        assert_eq!(coordinator.pending_len(), 1);
        assert_eq!(coordinator.comm_stats().uplink_msgs, 2);
    }

    #[test]
    fn dropping_an_unfinished_engine_reaps_the_worker() {
        let mut engine = PipelinedEngine::spawn(Coordinator::new(cfg(2)));
        engine.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
        let _ = engine.process_epoch(Timestamp(10));
        drop(engine); // must not hang or leak the worker
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!(EngineKind::parse("sync"), Some(EngineKind::Sync));
        assert_eq!(EngineKind::parse("pipelined"), Some(EngineKind::Pipelined));
        assert_eq!(EngineKind::parse("nope"), None);
        assert_eq!(EngineKind::Sync.to_string(), "sync");
        assert_eq!(EngineKind::Pipelined.to_string(), "pipelined");
    }
}
