//! The engine layer: epoch execution behind one interface, with a
//! synchronous backend and a pipelined (double-buffered) backend.
//!
//! [`Coordinator::process_epoch`] is internally four named stages —
//! *drain-ingest* → *Phase A* → *Phase B* → *publish* — and an
//! [`Engine`] decides how those stages are scheduled against ingest:
//!
//! * [`SyncEngine`] — today's behavior at any shard count: `submit` goes
//!   straight to the coordinator, every stage runs on the caller's
//!   thread inside `process_epoch`.
//! * [`PipelinedEngine`] — double-buffers the ingest: `submit` /
//!   `submit_batch` land in an engine-side *front* buffer (pre-routed
//!   per shard with the coordinator's own `ShardRouter` rule) while a
//!   dedicated worker thread owns the coordinator and runs the epoch
//!   stages against the sealed *back* buffer. `process_epoch` blocks
//!   only until the respond stage — the worker then finishes the
//!   *publish* stage (top-k merge, snapshot build) and the per-tick
//!   window expiry in the background, overlapped with the caller's next
//!   ticks of ingest. Reads go through the epoch-stamped
//!   [`HotSnapshot`], never through live coordinator state.
//!
//! Both backends are observationally identical, bit for bit: same
//! responses in the same order, same snapshots, same communication
//! accounting, same final coordinator (pinned by the engine-parity
//! proptests and `tests/scenario_parity.rs`). Responses are causally
//! required at the epoch boundary — clients seed their next SSA from
//! them — so the strategy stages cannot move off the boundary's
//! critical path without changing behavior; what the pipeline overlaps
//! is everything after the respond stage plus all between-epoch
//! maintenance. Going further (speculative strategy evaluation,
//! cross-process shards) is future work recorded in the ROADMAP.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::{Config, ParseError};
use crate::coordinator::{Coordinator, EndpointResponse, HotSnapshot, ShardRouter};
use crate::raytrace::ClientState;
use crate::snapshot::SnapshotCell;
use crate::time::Timestamp;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which epoch-execution backend to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Every stage on the caller's thread (today's behavior).
    #[default]
    Sync,
    /// Double-buffered ingest with the epoch stages on a worker thread.
    Pipelined,
}

impl EngineKind {
    /// Parses a CLI tag (`sync` / `pipelined`). Thin shim over the
    /// [`FromStr`](std::str::FromStr) impl, kept for callers that only
    /// care about success.
    pub fn parse(s: &str) -> Option<EngineKind> {
        s.parse().ok()
    }

    /// Wraps a coordinator in this backend.
    pub fn build(self, coordinator: Coordinator) -> Box<dyn Engine> {
        match self {
            EngineKind::Sync => Box::new(SyncEngine::new(coordinator)),
            EngineKind::Pipelined => Box::new(PipelinedEngine::spawn(coordinator)),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<EngineKind, ParseError> {
        match s {
            "sync" => Ok(EngineKind::Sync),
            "pipelined" => Ok(EngineKind::Pipelined),
            other => Err(ParseError::new("engine", other, "sync | pipelined")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Sync => "sync",
            EngineKind::Pipelined => "pipelined",
        })
    }
}

/// Epoch execution behind one interface: buffered ingest, the epoch
/// boundary, and snapshot-based reads. Both backends are bit-for-bit
/// identical; only the thread the stages run on differs.
///
/// `Send` is a supertrait: a server moves its engine onto a dedicated
/// writer thread (see the `hotpath-serve` crate), so every backend must
/// be transferable.
pub trait Engine: Send {
    /// Which backend this is.
    fn kind(&self) -> EngineKind;
    /// The configuration in force.
    fn config(&self) -> &Config;
    /// Accepts one state message for the next epoch.
    fn submit(&mut self, state: ClientState);
    /// Accepts a batch of state messages, in order — equivalent to a
    /// `submit` loop.
    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>);
    /// States buffered for the next epoch.
    fn pending_len(&self) -> usize;
    /// Advances the sliding-window clock (expiry). The pipelined
    /// backend runs the expiry on its worker, overlapped with ingest.
    fn advance_time(&mut self, now: Timestamp);
    /// Runs the epoch ending at `now` and returns its endpoint
    /// responses. The pipelined backend returns as soon as the respond
    /// stage completes; publish finishes in the background.
    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse>;
    /// The snapshot published by the last `process_epoch` (an empty
    /// epoch-0 snapshot before the first). Blocks until the publish
    /// stage lands if it is still in flight.
    fn snapshot(&mut self) -> Arc<HotSnapshot>;
    /// Attaches a [`SnapshotCell`]: from now on every publish stage
    /// also installs its snapshot into the cell, so any number of
    /// [`SnapshotHandle`](crate::snapshot::SnapshotHandle) readers
    /// observe each epoch lock-free, without ever calling into the
    /// engine. The current snapshot is published into the cell
    /// immediately, and a restore re-publishes the restored state (the
    /// cell never serves pre-restore data). The pipelined backend
    /// publishes from its worker thread, overlapped with ingest — cell
    /// readers never block, and never make the epoch loop wait.
    fn attach_cell(&mut self, cell: Arc<SnapshotCell>);
    /// Serializes the engine's complete state — the coordinator plus any
    /// engine-side front buffer — into a validated [`Checkpoint`] image.
    /// The pipelined backend first drains to a quiescent epoch boundary
    /// (joins the in-flight publish stage), so the image is always a
    /// consistent cut; the engine continues unchanged afterwards.
    ///
    /// Images are backend-portable: a checkpoint taken from one backend
    /// restores into the other, and re-checkpointing the replica
    /// reproduces the image byte for byte.
    ///
    /// ```
    /// use hotpath_core::prelude::*;
    ///
    /// let config = Config::paper_defaults().with_epoch(5).with_window(50);
    /// let mut engine = SyncEngine::new(Coordinator::new(config));
    /// engine.submit(ClientState {
    ///     object: ObjectId(1),
    ///     start: Point::new(0.0, 0.0),
    ///     ts: Timestamp(1),
    ///     fsa: Rect::new(Point::new(9.0, -1.0), Point::new(11.0, 1.0)),
    ///     te: Timestamp(4),
    /// });
    /// engine.process_epoch(Timestamp(5));
    ///
    /// let image = engine.checkpoint();
    /// let mut replica = PipelinedEngine::spawn(Coordinator::new(config));
    /// replica.restore(&image).expect("image validates");
    /// assert_eq!(replica.snapshot().epoch, engine.snapshot().epoch);
    /// assert_eq!(replica.checkpoint().as_bytes(), image.as_bytes());
    /// # Box::new(replica).finish();
    /// ```
    fn checkpoint(&mut self) -> Checkpoint;
    /// Replaces the engine's state with the checkpoint's, discarding
    /// whatever it held: the restored engine continues bit-for-bit where
    /// the checkpointed one stood, including its buffered pending batch
    /// (see [`Engine::checkpoint`] for a runnable round-trip example).
    /// The published snapshot is rebuilt from the restored state, so
    /// reads never serve pre-restore data. The pipelined backend drains
    /// any in-flight epoch before swapping the worker's coordinator.
    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError>;
    /// Tears the engine down and returns the final coordinator (any
    /// still-buffered ingest is transferred into its pending batch, so
    /// the result is identical to the sync backend's coordinator).
    fn finish(self: Box<Self>) -> Coordinator;
    /// Advisory backpressure signal: true when buffered ingest already
    /// exceeds the configured admission queue cap, so well-behaved
    /// clients can slow down *before* the boundary cap starts turning
    /// states away. Always false while the cap is off. Advisory only —
    /// enforcement happens in the drain-ingest stage, identically on
    /// every backend.
    fn is_saturated(&self) -> bool {
        let cap = self.config().admission.queue_cap;
        cap > 0 && self.pending_len() > cap
    }
}

// ---------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------

/// The synchronous backend: a thin adapter over [`Coordinator`] that
/// captures the published snapshot at each boundary.
pub struct SyncEngine {
    coordinator: Coordinator,
    last: Arc<HotSnapshot>,
    cell: Option<Arc<SnapshotCell>>,
}

impl SyncEngine {
    /// Wraps a coordinator.
    pub fn new(coordinator: Coordinator) -> Self {
        SyncEngine { coordinator, last: Arc::new(HotSnapshot::empty()), cell: None }
    }

    fn publish_to_cell(&self) {
        if let Some(cell) = &self.cell {
            cell.publish(self.last.clone());
        }
    }
}

impl Engine for SyncEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sync
    }

    fn config(&self) -> &Config {
        self.coordinator.config()
    }

    fn submit(&mut self, state: ClientState) {
        self.coordinator.submit(state);
    }

    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>) {
        for state in states {
            self.coordinator.submit(state);
        }
    }

    fn pending_len(&self) -> usize {
        self.coordinator.pending_len()
    }

    fn advance_time(&mut self, now: Timestamp) {
        self.coordinator.advance_time(now);
    }

    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        let responses = self.coordinator.process_epoch(now);
        // `process_epoch` ends with the publish stage, so this is the
        // freshly published snapshot (comm as of the publish — before
        // any boundary resubmissions land).
        self.last = self.coordinator.snapshot();
        self.publish_to_cell();
        responses
    }

    fn snapshot(&mut self) -> Arc<HotSnapshot> {
        self.last.clone()
    }

    fn attach_cell(&mut self, cell: Arc<SnapshotCell>) {
        cell.publish(self.last.clone());
        self.cell = Some(cell);
    }

    fn checkpoint(&mut self) -> Checkpoint {
        self.coordinator.checkpoint()
    }

    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        self.coordinator = Coordinator::from_checkpoint(*self.coordinator.config(), ck)?;
        // Rebuild the published view from the restored state: the old
        // `last` snapshot must never survive a restore.
        self.last = self.coordinator.snapshot();
        self.publish_to_cell();
        Ok(())
    }

    fn finish(self: Box<Self>) -> Coordinator {
        self.coordinator
    }
}

// ---------------------------------------------------------------------
// PipelinedEngine
// ---------------------------------------------------------------------

/// Work sent to the engine worker, in program order.
enum ToWorker {
    /// Advance the window clock (per-tick expiry, run overlapped).
    Advance(Timestamp),
    /// Attach a snapshot cell: the worker publishes into it right after
    /// every publish stage (and immediately on attach/restore), so cell
    /// readers observe new epochs without the engine's caller-side join.
    Attach(Arc<SnapshotCell>),
    /// A sealed epoch: the back buffer, its per-shard routing, the
    /// uplink accounting accumulated at submit time, and the boundary.
    Seal {
        states: Vec<ClientState>,
        parts: Vec<Vec<u32>>,
        uplink_msgs: u64,
        uplink_bytes: u64,
        now: Timestamp,
    },
    /// Serialize the coordinator plus the (not yet installed) front
    /// buffer into a checkpoint image, without mutating either; the
    /// buffers are handed back with the image.
    Checkpoint {
        states: Vec<ClientState>,
        parts: Vec<Vec<u32>>,
        uplink_msgs: u64,
        uplink_bytes: u64,
    },
    /// Replace the coordinator with a restored one; its pending batch is
    /// handed back to become the engine's front buffer.
    Restore(Box<Coordinator>),
    /// Tear down: transfer any residual front buffer and hand the
    /// coordinator back.
    Finish { states: Vec<ClientState>, parts: Vec<Vec<u32>>, uplink_msgs: u64, uplink_bytes: u64 },
}

/// Replies from the worker. For each `Seal` the worker sends `Epoch`
/// (as soon as the respond stage completes) and then `Published` (when
/// the overlapped publish stage lands); `Finish` is answered with
/// `Done`.
enum FromWorker {
    Epoch {
        responses: Vec<EndpointResponse>,
        /// The previous epoch's drained buffers, recycled as the next
        /// front buffer.
        states_buf: Vec<ClientState>,
        parts_buf: Vec<Vec<u32>>,
    },
    Published(Arc<HotSnapshot>),
    Checkpointed {
        image: Box<Checkpoint>,
        /// The untouched front buffers, returned to the engine.
        states_buf: Vec<ClientState>,
        parts_buf: Vec<Vec<u32>>,
    },
    Restored {
        /// The restored pending batch, moved into the engine's front.
        states_buf: Vec<ClientState>,
        parts_buf: Vec<Vec<u32>>,
        /// The snapshot of the restored state (never pre-restore data).
        snapshot: Arc<HotSnapshot>,
    },
    Done(Box<Coordinator>),
}

/// The pipelined backend: ingest double-buffering in front, the epoch
/// stages on a dedicated worker thread that owns the coordinator.
pub struct PipelinedEngine {
    config: Config,
    router: ShardRouter,
    shards: usize,
    /// The front buffer: states submitted since the last seal.
    front: Vec<ClientState>,
    /// Per-shard batch positions of the front buffer (sharded only).
    parts: Vec<Vec<u32>>,
    /// Uplink accounting for the front buffer (merged at seal, exactly
    /// as `Coordinator::submit` would have recorded it).
    uplink_msgs: u64,
    uplink_bytes: u64,
    tx: Option<Sender<ToWorker>>,
    rx: Receiver<FromWorker>,
    worker: Option<JoinHandle<()>>,
    last: Arc<HotSnapshot>,
    /// A `Published` reply is still in flight for the last sealed epoch.
    publish_pending: bool,
}

impl PipelinedEngine {
    /// Moves `coordinator` onto a worker thread and returns the engine.
    pub fn spawn(coordinator: Coordinator) -> Self {
        let config = *coordinator.config();
        let shards = config.shards;
        let router = ShardRouter::new(&config);
        let (tx, work_rx) = channel::<ToWorker>();
        let (reply_tx, rx) = channel::<FromWorker>();
        let worker = std::thread::Builder::new()
            .name("hotpath-engine".into())
            .spawn(move || worker_loop(coordinator, work_rx, reply_tx))
            .expect("spawn engine worker");
        PipelinedEngine {
            config,
            router,
            shards,
            front: Vec::new(),
            parts: if shards > 1 { vec![Vec::new(); shards] } else { Vec::new() },
            uplink_msgs: 0,
            uplink_bytes: 0,
            tx: Some(tx),
            rx,
            worker: Some(worker),
            last: Arc::new(HotSnapshot::empty()),
            publish_pending: false,
        }
    }

    fn send(&self, msg: ToWorker) {
        self.tx.as_ref().expect("engine already finished").send(msg).expect("engine worker died");
    }

    /// Consumes the in-flight `Published` reply, if any (the join point
    /// of the overlapped publish stage).
    fn drain_publish(&mut self) {
        if !self.publish_pending {
            return;
        }
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Published(snap) => self.last = snap,
            _ => unreachable!("protocol: Seal is answered by Epoch then Published"),
        }
        self.publish_pending = false;
    }
}

impl Engine for PipelinedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Pipelined
    }

    fn config(&self) -> &Config {
        &self.config
    }

    fn submit(&mut self, state: ClientState) {
        // Mirrors `Coordinator::submit` exactly: same wire accounting,
        // same shard routing, same batch order.
        self.uplink_msgs += 1;
        self.uplink_bytes += ClientState::WIRE_BYTES as u64;
        if self.shards > 1 {
            let seq = self.front.len() as u32;
            self.parts[self.router.shard_of(&state.start)].push(seq);
        }
        self.front.push(state);
    }

    fn submit_batch(&mut self, states: &mut dyn Iterator<Item = ClientState>) {
        for state in states {
            self.submit(state);
        }
    }

    fn pending_len(&self) -> usize {
        self.front.len()
    }

    fn advance_time(&mut self, now: Timestamp) {
        // Expiry runs on the worker, overlapped with whatever the
        // caller does next (typically the next tick's ingest).
        self.send(ToWorker::Advance(now));
    }

    fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        // Join the previous epoch's publish before re-sealing, so at
        // most one epoch is ever in flight.
        self.drain_publish();
        let states = std::mem::take(&mut self.front);
        let parts = std::mem::take(&mut self.parts);
        let msg = ToWorker::Seal {
            states,
            parts,
            uplink_msgs: std::mem::take(&mut self.uplink_msgs),
            uplink_bytes: std::mem::take(&mut self.uplink_bytes),
            now,
        };
        self.send(msg);
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Epoch { responses, states_buf, parts_buf } => {
                // Double-buffer swap: the worker handed back the other
                // buffer pair, drained and cleared.
                self.front = states_buf;
                self.parts = parts_buf;
                self.publish_pending = true;
                responses
            }
            _ => unreachable!("protocol: Seal is answered by Epoch first"),
        }
    }

    fn snapshot(&mut self) -> Arc<HotSnapshot> {
        self.drain_publish();
        self.last.clone()
    }

    fn attach_cell(&mut self, cell: Arc<SnapshotCell>) {
        // Queued in program order: the worker attaches after whatever
        // epoch is in flight, then publishes its current state.
        self.send(ToWorker::Attach(cell));
    }

    fn checkpoint(&mut self) -> Checkpoint {
        // Quiesce: join the in-flight publish so the worker has fully
        // retired the last sealed epoch before it serializes.
        self.drain_publish();
        let msg = ToWorker::Checkpoint {
            states: std::mem::take(&mut self.front),
            parts: std::mem::take(&mut self.parts),
            uplink_msgs: self.uplink_msgs,
            uplink_bytes: self.uplink_bytes,
        };
        self.send(msg);
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Checkpointed { image, states_buf, parts_buf } => {
                // The front buffer comes back untouched; the uplink
                // counters were only copied, so ingest continues as if
                // nothing happened.
                self.front = states_buf;
                self.parts = parts_buf;
                *image
            }
            _ => unreachable!("protocol: Checkpoint is answered by Checkpointed"),
        }
    }

    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        // Quiesce the in-flight epoch first, then build the replacement
        // on the caller's thread so a bad image errors out before
        // anything is torn down.
        self.drain_publish();
        let restored = Coordinator::from_checkpoint(self.config, ck)?;
        // The engine's own buffered ingest is superseded by the
        // checkpoint's pending batch (its uplink is already accounted in
        // the restored comm counters).
        self.front.clear();
        for p in &mut self.parts {
            p.clear();
        }
        self.uplink_msgs = 0;
        self.uplink_bytes = 0;
        self.send(ToWorker::Restore(Box::new(restored)));
        match self.rx.recv().expect("engine worker died") {
            FromWorker::Restored { states_buf, parts_buf, snapshot } => {
                self.front = states_buf;
                self.parts = parts_buf;
                self.last = snapshot;
                Ok(())
            }
            _ => unreachable!("protocol: Restore is answered by Restored"),
        }
    }

    fn finish(mut self: Box<Self>) -> Coordinator {
        self.drain_publish();
        let msg = ToWorker::Finish {
            states: std::mem::take(&mut self.front),
            parts: std::mem::take(&mut self.parts),
            uplink_msgs: std::mem::take(&mut self.uplink_msgs),
            uplink_bytes: std::mem::take(&mut self.uplink_bytes),
        };
        self.send(msg);
        let coordinator = match self.rx.recv().expect("engine worker died") {
            FromWorker::Done(c) => *c,
            _ => unreachable!("protocol: Finish is answered by Done"),
        };
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            worker.join().expect("engine worker panicked");
        }
        coordinator
    }
}

impl Drop for PipelinedEngine {
    fn drop(&mut self) {
        // Close the channel so the worker exits, then reap it. A normal
        // `finish` already took both; this only runs on abandonment.
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: owns the coordinator, applies overlapped expiry, and
/// runs the epoch stages for every sealed batch — replying with the
/// responses before the publish stage so the caller resumes early.
fn worker_loop(mut coordinator: Coordinator, work: Receiver<ToWorker>, reply: Sender<FromWorker>) {
    let mut cell: Option<Arc<SnapshotCell>> = None;
    while let Ok(msg) = work.recv() {
        match msg {
            ToWorker::Advance(now) => coordinator.advance_time(now),
            ToWorker::Attach(c) => {
                c.publish(coordinator.snapshot());
                cell = Some(c);
            }
            ToWorker::Seal { states, parts, uplink_msgs, uplink_bytes, now } => {
                let (states_buf, parts_buf) =
                    coordinator.install_routed_batch(states, parts, uplink_msgs, uplink_bytes);
                let batch = coordinator.stage_drain_ingest(now);
                let selections = coordinator.stage_strategy(&batch);
                let responses = coordinator.stage_respond(&selections);
                if reply.send(FromWorker::Epoch { responses, states_buf, parts_buf }).is_err() {
                    break; // engine dropped mid-epoch
                }
                // Overlapped tail: the caller is already ingesting the
                // next epoch while we recycle and publish.
                coordinator.stage_recycle(batch);
                let snap = coordinator.stage_publish();
                // Cell publication happens here on the worker — the
                // caller never joins for it, and readers never wait.
                if let Some(c) = &cell {
                    c.publish(snap.clone());
                }
                if reply.send(FromWorker::Published(snap)).is_err() {
                    break;
                }
            }
            ToWorker::Checkpoint { states, parts, uplink_msgs, uplink_bytes } => {
                let image =
                    Box::new(coordinator.checkpoint_with_extra(&states, uplink_msgs, uplink_bytes));
                if reply
                    .send(FromWorker::Checkpointed { image, states_buf: states, parts_buf: parts })
                    .is_err()
                {
                    break;
                }
            }
            ToWorker::Restore(restored) => {
                coordinator = *restored;
                let (states_buf, parts_buf) = coordinator.take_pending();
                let snapshot = coordinator.snapshot();
                if let Some(c) = &cell {
                    c.publish(snapshot.clone());
                }
                if reply.send(FromWorker::Restored { states_buf, parts_buf, snapshot }).is_err() {
                    break;
                }
            }
            ToWorker::Finish { states, parts, uplink_msgs, uplink_bytes } => {
                let _ = coordinator.install_routed_batch(states, parts, uplink_msgs, uplink_bytes);
                let _ = reply.send(FromWorker::Done(Box::new(coordinator)));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Point, Rect};
    use crate::ObjectId;

    fn cfg(shards: usize) -> Config {
        Config::paper_defaults().with_epoch(10).with_window(100).with_shards(shards)
    }

    fn state(obj: u64, start: (f64, f64), end: (f64, f64), te: u64) -> ClientState {
        let e = Point::new(end.0, end.1);
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(te.saturating_sub(8)),
            fsa: Rect::new(e - Point::new(2.0, 2.0), e + Point::new(2.0, 2.0)),
            te: Timestamp(te),
        }
    }

    /// Drives one engine through a deterministic multi-epoch workload
    /// with mixed single/batch submits and mid-epoch time advances;
    /// returns everything observable.
    #[allow(clippy::type_complexity)]
    fn drive(kind: EngineKind, shards: usize) -> (Vec<Vec<(u64, u64)>>, Vec<(u64, u64, u32)>, u64) {
        let mut engine = kind.build(Coordinator::new(cfg(shards)));
        let mut responses_log = Vec::new();
        let mut s = 7u64;
        let mut rand = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for epoch in 1..=8u64 {
            for tick in 1..=10u64 {
                let now = Timestamp((epoch - 1) * 10 + tick);
                let n = 3 + (rand() % 5) as usize;
                let mk = |i: usize, r: u64| {
                    let corridor = r % 6;
                    let x = (corridor * 500) as f64;
                    let y = ((r / 7) % 4 * 300) as f64;
                    state(i as u64, (x, y), (x + 50.0, y), now.raw())
                };
                if rand() % 2 == 0 {
                    for i in 0..n {
                        let r = rand();
                        engine.submit(mk(i, r));
                    }
                } else {
                    let states: Vec<ClientState> =
                        (0..n).map(|i| (i, rand())).map(|(i, r)| mk(i, r)).collect();
                    engine.submit_batch(&mut states.into_iter());
                }
                engine.advance_time(now);
                if tick == 10 {
                    let resp = engine.process_epoch(now);
                    responses_log
                        .push(resp.iter().map(|r| (r.object.0, r.endpoint.t.raw())).collect());
                }
            }
        }
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 8);
        let coordinator = engine.finish();
        coordinator.check_consistency().unwrap();
        let top: Vec<(u64, u64, u32)> = coordinator
            .top_n(10)
            .iter()
            .map(|h| (h.path.id.0, h.score.to_bits(), h.hotness))
            .collect();
        (responses_log, top, coordinator.comm_stats().uplink_msgs)
    }

    #[test]
    fn pipelined_matches_sync_bit_for_bit() {
        for shards in [1usize, 4] {
            let sync = drive(EngineKind::Sync, shards);
            let pipelined = drive(EngineKind::Pipelined, shards);
            assert_eq!(sync, pipelined, "engines diverged at {shards} shards");
        }
    }

    /// The same cross-backend contract with the robustness layer on: a
    /// workload where clients go silent mid-run, the admission cap
    /// fires, and epochs degrade under overload. Responses, the
    /// session-event stream, and every admission/session counter must
    /// be identical on both backends at every shard count.
    #[test]
    fn engines_agree_with_sessions_and_admission_on() {
        use crate::config::AdmissionPolicy;
        use crate::session::SessionTransition;
        #[allow(clippy::type_complexity)]
        fn drive_robust(
            kind: EngineKind,
            shards: usize,
        ) -> (Vec<Vec<(u64, u64)>>, Vec<(u64, u64, u8)>, Vec<u64>, Vec<u64>, bool) {
            let config = cfg(shards)
                .with_lease(30, 10)
                .with_admission_cap(24, AdmissionPolicy::ShedOldest)
                .with_degrade_threshold(20);
            let mut engine = kind.build(Coordinator::new(config));
            let mut responses_log = Vec::new();
            let mut events = Vec::new();
            let mut saw_saturation = false;
            let mut s = 11u64;
            let mut rand = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            for epoch in 1..=8u64 {
                // Half the client pool falls silent after epoch 4, so
                // leases expire and the grace period ejects.
                let pool = if epoch <= 4 { 12 } else { 5 };
                for tick in 1..=10u64 {
                    let now = Timestamp((epoch - 1) * 10 + tick);
                    for _ in 0..3 + (rand() % 3) as usize {
                        let obj = rand() % pool;
                        let x = ((rand() % 6) * 500) as f64;
                        let y = ((rand() % 3) * 300) as f64;
                        engine.submit(state(obj, (x, y), (x + 50.0, y), now.raw()));
                    }
                    saw_saturation |= engine.is_saturated();
                    engine.advance_time(now);
                    if tick == 10 {
                        let resp = engine.process_epoch(now);
                        responses_log
                            .push(resp.iter().map(|r| (r.object.0, r.endpoint.t.raw())).collect());
                        for ev in engine.snapshot().session_events.iter() {
                            let tag = match ev.transition {
                                SessionTransition::Connected => 0u8,
                                SessionTransition::Dropped => 1,
                                SessionTransition::Reconnected => 2,
                                SessionTransition::Ejected => 3,
                            };
                            events.push((ev.object.0, ev.at.raw(), tag));
                        }
                    }
                }
            }
            let snap = engine.snapshot();
            let adm = snap.admission;
            let coordinator = engine.finish();
            coordinator.check_consistency().unwrap();
            let sc = coordinator.sessions().unwrap().counters();
            (
                responses_log,
                events,
                vec![adm.admitted, adm.rejected, adm.shed, adm.ejected, adm.degraded_epochs],
                vec![sc.connects, sc.drops, sc.reconnects, sc.ejections],
                saw_saturation,
            )
        }

        let base = drive_robust(EngineKind::Sync, 1);
        assert!(!base.1.is_empty(), "the workload must produce session events");
        assert!(base.2[2] > 0, "the cap must shed states");
        assert!(base.2[4] > 0, "overload must degrade epochs");
        assert!(base.3[1] > 0 && base.3[3] > 0, "silent clients must drop and eject");
        assert!(base.4, "the advisory saturation signal must fire");
        for (kind, shards) in
            [(EngineKind::Sync, 4), (EngineKind::Pipelined, 1), (EngineKind::Pipelined, 4)]
        {
            assert_eq!(drive_robust(kind, shards), base, "{kind} diverged at {shards} shards");
        }
    }

    #[test]
    fn snapshot_is_stamped_and_stable_between_epochs() {
        let mut engine = EngineKind::Pipelined.build(Coordinator::new(cfg(1)));
        assert_eq!(engine.snapshot().epoch, 0);
        engine.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
        assert_eq!(engine.pending_len(), 1);
        let _ = engine.process_epoch(Timestamp(10));
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.timestamp, Timestamp(10));
        assert_eq!(snap.index_size, 1);
        assert_eq!(snap.top_k.len(), 1);
        assert_eq!(snap.comm.uplink_msgs, 1);
        // Ingest after the boundary does not disturb the published view.
        engine.submit(state(2, (0.0, 0.0), (50.0, 0.0), 19));
        let again = engine.snapshot();
        assert_eq!(again.comm.uplink_msgs, 1);
        assert_eq!(engine.pending_len(), 1);
        let coordinator = engine.finish();
        // ...but the residual ingest reached the final coordinator.
        assert_eq!(coordinator.pending_len(), 1);
        assert_eq!(coordinator.comm_stats().uplink_msgs, 2);
    }

    #[test]
    fn dropping_an_unfinished_engine_reaps_the_worker() {
        let mut engine = PipelinedEngine::spawn(Coordinator::new(cfg(2)));
        engine.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
        let _ = engine.process_epoch(Timestamp(10));
        drop(engine); // must not hang or leak the worker
    }

    /// Deterministic per-epoch batch shared by the checkpoint tests.
    fn workload(epoch: u64) -> Vec<ClientState> {
        let mut out = Vec::new();
        let mut s = epoch.wrapping_mul(1799).wrapping_add(5);
        for i in 0..12u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = s >> 33;
            let x = ((r % 6) * 500) as f64;
            let y = ((r % 3) * 300) as f64;
            out.push(state(i, (x, y), (x + 50.0, y), epoch * 10 - 1));
        }
        out
    }

    /// `checkpoint()` must be a pure observer — a run with a mid-run
    /// checkpoint equals one without — and an engine restored from that
    /// image must replay the remaining epochs bit-for-bit, front buffer
    /// included, on both backends at 1 shard and several.
    #[test]
    fn checkpoint_is_transparent_and_restore_resumes_bit_for_bit() {
        type EpochLog = Vec<(Vec<(u64, u64)>, u64, u64, u64)>;
        for shards in [1usize, 4] {
            for kind in [EngineKind::Sync, EngineKind::Pipelined] {
                let observe = |engine: &mut Box<dyn Engine>, now: Timestamp| {
                    let resp: Vec<(u64, u64)> = engine
                        .process_epoch(now)
                        .iter()
                        .map(|r| (r.object.0, r.endpoint.p.x.to_bits()))
                        .collect();
                    let snap = engine.snapshot();
                    (resp, snap.epoch, snap.top_k_score.to_bits(), snap.comm.uplink_msgs)
                };
                let run = |interrupt: Option<u64>| -> (EpochLog, Option<Checkpoint>) {
                    let mut engine = kind.build(Coordinator::new(cfg(shards)));
                    let mut log = Vec::new();
                    let mut image = None;
                    for epoch in 1..=8u64 {
                        let now = Timestamp(epoch * 10);
                        engine.submit_batch(&mut workload(epoch).into_iter());
                        if interrupt == Some(epoch) {
                            // The epoch's batch is still buffered: the
                            // image must carry it.
                            image = Some(engine.checkpoint());
                        }
                        engine.advance_time(now);
                        log.push(observe(&mut engine, now));
                    }
                    engine.finish().check_consistency().unwrap();
                    (log, image)
                };

                let (base, _) = run(None);
                let (with_ck, image) = run(Some(4));
                assert_eq!(base, with_ck, "checkpoint perturbed {kind} at {shards} shards");

                // Resume: restore into a *dirtied* fresh engine and
                // replay epochs 4..=8 (epoch 4's batch rides in the
                // image's pending section).
                let image = image.unwrap();
                assert_eq!(image.epoch(), 3);
                let mut engine = kind.build(Coordinator::new(cfg(shards)));
                engine.submit(state(77, (0.0, 0.0), (50.0, 0.0), 9));
                let _ = engine.process_epoch(Timestamp(10));
                engine.restore(&image).unwrap();
                assert_eq!(engine.pending_len(), 12, "pending batch lost in restore");
                for epoch in 4..=8u64 {
                    let now = Timestamp(epoch * 10);
                    if epoch > 4 {
                        engine.submit_batch(&mut workload(epoch).into_iter());
                    }
                    engine.advance_time(now);
                    assert_eq!(
                        observe(&mut engine, now),
                        base[(epoch - 1) as usize],
                        "restored {kind} diverged at epoch {epoch}, {shards} shards"
                    );
                }
                engine.finish().check_consistency().unwrap();
            }
        }
    }

    /// Regression: after `restore()` the cached snapshot must be
    /// invalidated — `snapshot()`/top-k never serve pre-restore data.
    #[test]
    fn restore_invalidates_the_snapshot_cache() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let mut engine = kind.build(Coordinator::new(cfg(1)));
            // Epoch 1: corridor A is the only hot path.
            for obj in 0..3u64 {
                engine.submit(state(obj, (0.0, 0.0), (50.0, 0.0), 9));
            }
            let _ = engine.process_epoch(Timestamp(10));
            let image = engine.checkpoint();
            // Epoch 2: corridor B overtakes it.
            for obj in 0..5u64 {
                engine.submit(state(obj, (1000.0, 0.0), (1080.0, 0.0), 19));
            }
            let _ = engine.process_epoch(Timestamp(20));
            let before = engine.snapshot();
            assert_eq!(before.epoch, 2);
            assert_eq!(before.top_k[0].hotness, 5, "corridor B should lead pre-restore");

            engine.restore(&image).unwrap();
            let after = engine.snapshot();
            assert_eq!(after.epoch, 1, "stale snapshot survived the restore ({kind})");
            assert_eq!(after.top_k.len(), 1);
            assert_eq!(after.top_k[0].hotness, 3, "top-k served pre-restore data ({kind})");
            assert_eq!(after.index_size, 1);
            engine.finish().check_consistency().unwrap();
        }
    }

    /// Interleaving `submit_batch`, `checkpoint`, `restore`, and
    /// `finish` against the pipelined backend: a back buffer in flight
    /// (publish not yet joined) must be drained before the worker
    /// serializes or swaps its coordinator.
    #[test]
    fn pipelined_checkpoint_and_restore_drain_inflight_epochs() {
        let mut engine = PipelinedEngine::spawn(Coordinator::new(cfg(2)));
        let mut batch = vec![state(1, (0.0, 0.0), (50.0, 0.0), 9)];
        engine.submit_batch(&mut batch.drain(..));
        let _ = engine.process_epoch(Timestamp(10)); // publish now in flight
        let image = engine.checkpoint(); // must join it first
        assert_eq!(image.epoch(), 1);

        engine.submit(state(2, (500.0, 0.0), (550.0, 0.0), 19));
        let _ = engine.process_epoch(Timestamp(20)); // in flight again
        engine.restore(&image).unwrap(); // must join before swapping
        assert_eq!(engine.snapshot().epoch, 1);
        assert_eq!(engine.pending_len(), 0);

        let coordinator = Box::new(engine).finish();
        assert_eq!(coordinator.processing_stats().epochs, 1);
        coordinator.check_consistency().unwrap();
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!(EngineKind::parse("sync"), Some(EngineKind::Sync));
        assert_eq!(EngineKind::parse("pipelined"), Some(EngineKind::Pipelined));
        assert_eq!(EngineKind::parse("nope"), None);
        assert_eq!(EngineKind::Sync.to_string(), "sync");
        assert_eq!(EngineKind::Pipelined.to_string(), "pipelined");
        let err = "nope".parse::<EngineKind>().unwrap_err().to_string();
        assert!(err.contains("sync | pipelined"), "error must list the accepted values: {err}");
    }

    /// Attaching a cell publishes immediately, tracks every epoch, and
    /// a restore re-publishes the restored state — on both backends.
    #[test]
    fn attached_cell_tracks_epochs_and_restores() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let mut engine = kind.build(Coordinator::new(cfg(1)));
            engine.submit(state(1, (0.0, 0.0), (50.0, 0.0), 9));
            let _ = engine.process_epoch(Timestamp(10));
            let image = engine.checkpoint();

            let cell = SnapshotCell::new();
            let mut reader = cell.register();
            engine.attach_cell(cell.clone());
            // The attach-time publish carries the current state — but on
            // the pipelined backend it lands asynchronously, so observe
            // it via the next boundary join below.
            let _ = engine.process_epoch(Timestamp(20));
            let joined = engine.snapshot();
            assert_eq!(joined.epoch, 2);
            assert_eq!(reader.read().epoch, 2, "{kind}: cell missed the publish stage");

            for epoch in 3..=5u64 {
                engine.submit(state(epoch, (0.0, 0.0), (50.0, 0.0), epoch * 10 - 1));
                let _ = engine.process_epoch(Timestamp(epoch * 10));
            }
            engine.snapshot();
            assert_eq!(reader.read().epoch, 5, "{kind}: cell fell behind the epoch loop");

            engine.restore(&image).unwrap();
            engine.snapshot(); // pipelined: join so the worker has processed Restore
            let snap = reader.read();
            assert_eq!(snap.epoch, 1, "{kind}: cell served pre-restore data");
            drop(snap);
            engine.finish().check_consistency().unwrap();
        }
    }

    /// Spawn-and-hammer consistency: reader threads poll the cell while
    /// the writer drives real epochs. The workload adds exactly one
    /// traversal of one corridor per epoch under a non-expiring window,
    /// so any consistent image at epoch `e >= 1` has exactly one hot
    /// path of hotness `e` — a torn or stale-mixed snapshot cannot
    /// satisfy that. Epochs must also be monotone per reader.
    #[test]
    fn cell_readers_see_epoch_consistent_images_under_continuous_publish() {
        for kind in [EngineKind::Sync, EngineKind::Pipelined] {
            let config = Config::paper_defaults().with_epoch(10).with_window(10_000);
            let mut engine = kind.build(Coordinator::new(config));
            let cell = SnapshotCell::new();
            engine.attach_cell(cell.clone());
            let epochs = 300u64;
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            std::thread::scope(|scope| {
                let mut joins = Vec::new();
                for _ in 0..3 {
                    let mut handle = cell.register();
                    let stop = stop.clone();
                    joins.push(scope.spawn(move || {
                        let mut last = 0u64;
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let snap = handle.read();
                            let e = snap.epoch;
                            assert!(e >= last, "epoch went backwards: {last} -> {e}");
                            if e >= 1 {
                                assert_eq!(snap.timestamp, Timestamp(e * 10), "inconsistent image");
                                assert_eq!(snap.top_k.len(), 1, "inconsistent image at epoch {e}");
                                assert_eq!(
                                    snap.top_k[0].hotness, e as u32,
                                    "top-k contents disagree with the epoch stamp"
                                );
                            }
                            last = e;
                        }
                    }));
                }
                for epoch in 1..=epochs {
                    engine.submit(state(epoch, (0.0, 0.0), (50.0, 0.0), epoch * 10 - 1));
                    let _ = engine.process_epoch(Timestamp(epoch * 10));
                }
                engine.snapshot(); // join the last publish before stopping readers
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                for j in joins {
                    j.join().expect("reader panicked");
                }
            });
            assert_eq!(cell.epoch(), epochs, "{kind}: cell missed the final epoch");
            engine.finish().check_consistency().unwrap();
        }
    }
}
