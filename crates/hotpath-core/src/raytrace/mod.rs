//! The client-side RayTrace filter (Section 4): SSA maintenance, the
//! Algorithm 1 state machine, and the Section 7 hinted extension.

mod filter;
pub mod hinted;
mod ssa;

pub use filter::{ClientState, FilterStats, RayTraceCore, RayTraceFilter, UncertainRayTraceFilter};
pub use ssa::Ssa;
