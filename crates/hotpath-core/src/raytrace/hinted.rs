//! Feedback-aware RayTrace (the Section 7 "future work" extension).
//!
//! The paper's conclusions sketch an improvement: give clients knowledge
//! of nearby hot motion paths so their splitting decisions favor path
//! reuse. We implement the lightest-weight variant: along with the
//! endpoint response, the coordinator piggybacks the hottest path
//! *leaving* that endpoint (the "hint"). While the hint stays consistent
//! with the object's measurements, the client narrows each tolerance
//! rectangle to the hint's eps-expanded corridor before extending the
//! SSA. Narrower rectangles ⇒ narrower FSAs around the existing path's
//! endpoint ⇒ more Case-1 matches at the coordinator.
//!
//! Correctness is unaffected: a narrowed tolerance rectangle is a subset
//! of the true one, so every SSA invariant still holds; when narrowing
//! would cause a spurious violation the filter transparently falls back
//! to the plain rectangle.

use super::filter::{ClientState, FilterStats, RayTraceCore};
use crate::geometry::{Rect, Segment, TimePoint};
use crate::ObjectId;

/// A hint: the hottest path leaving the endpoint the client resumes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathHint {
    /// The hinted path geometry (start is the resume endpoint).
    pub seg: Segment,
}

/// RayTrace with coordinator feedback.
#[derive(Clone, Debug)]
pub struct HintedRayTraceFilter {
    core: RayTraceCore,
    eps: f64,
    hint: Option<Rect>,
    /// How many observations were narrowed by an active hint.
    narrowed: u64,
}

impl HintedRayTraceFilter {
    /// Creates a hinted filter (no hint active until the first response).
    pub fn new(object: ObjectId, seed: TimePoint, eps: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        HintedRayTraceFilter { core: RayTraceCore::new(object, seed), eps, hint: None, narrowed: 0 }
    }

    /// Feeds a measurement. While a hint is active and consistent, the
    /// tolerance square is first narrowed to the hint corridor.
    pub fn observe(&mut self, tp: TimePoint) -> Option<ClientState> {
        let square = Rect::tolerance_square(tp.p, self.eps);
        if let Some(corridor) = self.hint {
            if let Some(narrow) = square.intersection(&corridor) {
                // Try the narrowed rectangle on a scratch copy: if the
                // narrowing itself causes the violation, retry plain.
                let mut probe = self.core.clone();
                let out = probe.observe_rect(tp.t, narrow);
                if out.is_none() {
                    self.core = probe;
                    self.narrowed += 1;
                    return None;
                }
            } else {
                // Measurement left the corridor for good: drop the hint.
                self.hint = None;
            }
        }
        let out = self.core.observe_rect(tp.t, square);
        if out.is_some() {
            self.hint = None; // hints never survive a violation
        }
        out
    }

    /// Delivers the coordinator's endpoint plus an optional hint.
    pub fn receive_endpoint(
        &mut self,
        endpoint: TimePoint,
        hint: Option<PathHint>,
    ) -> Option<ClientState> {
        self.hint = hint.map(|h| h.seg.mbb().expand(self.eps));
        let out = self.core.receive_endpoint(endpoint);
        if out.is_some() {
            self.hint = None;
        }
        out
    }

    /// True while awaiting a coordinator response.
    pub fn is_waiting(&self) -> bool {
        self.core.is_waiting()
    }

    /// Compression statistics of the underlying core.
    pub fn stats(&self) -> FilterStats {
        self.core.stats()
    }

    /// Observations narrowed by an active hint so far.
    pub fn narrowed_count(&self) -> u64 {
        self.narrowed
    }

    /// The object this filter runs on.
    pub fn object(&self) -> ObjectId {
        self.core.object()
    }

    /// Current FSA (for tests).
    pub fn fsa(&self) -> Rect {
        self.core.ssa().fsa()
    }

    /// Whether a hint corridor is currently active.
    pub fn hint_active(&self) -> bool {
        self.hint.is_some()
    }
}

/// Convenience: the corridor a hint induces for tolerance `eps`.
pub fn hint_corridor(seg: &Segment, eps: f64) -> Rect {
    seg.mbb().expand(eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::time::Timestamp;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn hint_narrows_fsa_toward_path() {
        let eps = 2.0;
        // Two identical filters; one receives a hint along y = 0. A
        // westward feint followed by an eastward jump trips both; the
        // buffered violator (5, 1)@2 then seeds the post-endpoint SSA
        // and the walk continues east at 5 m/granule.
        let mut plain = HintedRayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), eps);
        let mut hinted = HintedRayTraceFilter::new(ObjectId(1), tp(0.0, 0.0, 0), eps);
        for f in [&mut plain, &mut hinted] {
            assert!(f.observe(tp(-5.0, 0.0, 1)).is_none());
            assert!(f.observe(tp(5.0, 1.0, 2)).is_some(), "violation expected");
        }
        let ep = TimePoint::new(Point::new(0.0, 0.0), Timestamp(1));
        assert!(plain.receive_endpoint(ep, None).is_none());
        let hint = PathHint { seg: Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0)) };
        assert!(hinted.receive_endpoint(ep, Some(hint)).is_none());

        // Walk along y slightly above 0 — consistent with the corridor.
        for t in 3..=20u64 {
            let p = tp(5.0 * (t - 1) as f64, 1.0, t);
            assert!(plain.observe(p).is_none(), "plain violated at t={t}");
            assert!(hinted.observe(p).is_none(), "hinted violated at t={t}");
        }
        assert!(hinted.narrowed_count() > 0, "hint never engaged");
        // The hinted FSA is contained in the corridor, hence at least as
        // narrow in y as the plain one.
        let corridor = hint_corridor(&hint.seg, eps);
        assert!(corridor.contains_rect(&hinted.fsa()), "{:?}", hinted.fsa());
        assert!(hinted.fsa().height() <= plain.fsa().height() + 1e-9);
    }

    #[test]
    fn inconsistent_hint_is_dropped_without_spurious_reports() {
        let eps = 2.0;
        let mut f = HintedRayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), eps);
        // Southward feint, then a northward jump trips the filter.
        assert!(f.observe(tp(0.0, -5.0, 1)).is_none());
        let s = f.observe(tp(0.0, 5.0, 2)).expect("violation");
        assert_eq!(s.te, Timestamp(1));
        // Hint eastward, but the object keeps going north.
        let hint = PathHint { seg: Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0)) };
        let ep = TimePoint::new(Point::new(0.0, 0.0), s.te);
        assert!(f.receive_endpoint(ep, Some(hint)).is_none());
        assert!(!f.is_waiting());
        // The corridor caps y at 2; as soon as a square leaves it the
        // hint must drop silently without causing spurious reports.
        for t in 3..=10u64 {
            let out = f.observe(tp(0.0, 5.0 * (t - 1) as f64, t));
            assert!(out.is_none(), "northward walk should not violate at t={t}");
        }
        assert!(!f.hint_active(), "hint should be dropped after leaving corridor");
    }

    #[test]
    fn hint_never_changes_violation_outcome() {
        // Whatever the hint, a genuinely violating point still reports.
        let eps = 1.0;
        let mut f = HintedRayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), eps);
        let hintless_state = {
            let mut g = HintedRayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), eps);
            for t in 1..=5u64 {
                let _ = g.observe(tp(10.0 * t as f64, 0.0, t));
            }
            g.observe(tp(0.0, 0.0, 6)).expect("violation")
        };
        for t in 1..=5u64 {
            let _ = f.observe(tp(10.0 * t as f64, 0.0, t));
        }
        let hinted_state = f.observe(tp(0.0, 0.0, 6)).expect("violation");
        assert_eq!(hintless_state.te, hinted_state.te);
        assert_eq!(hintless_state.start, hinted_state.start);
    }
}
