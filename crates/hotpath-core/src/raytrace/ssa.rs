//! The Spatial Safe Area (SSA).
//!
//! The SSA is a pyramid in `xyt` space: it has its apex at the initial
//! timepoint `<s, ts>` and widens linearly to the *Final Safe Area* (FSA)
//! rectangle at time `te` (Section 4). Its defining property: for every
//! endpoint `e` inside the FSA, the motion path `s -> e` crossed during
//! `[ts, te]` fits the object's movement within tolerance.

use crate::geometry::{Point, Rect, TimePoint};
use crate::time::Timestamp;

/// The time-parameterized safe area maintained by RayTrace.
///
/// Invariant maintained by [`Ssa::try_extend`]: for any `e` in the
/// current FSA and any previously accepted measurement `<p_j, t_j>`, the
/// constant-speed point of `s -> e` at `t_j` lies inside the tolerance
/// rectangle of `<p_j, t_j>`. (Each extension intersects the pyramid's
/// projection with the new tolerance rectangle, and re-anchoring the
/// pyramid through the shrunken FSA only narrows earlier sections.)
#[derive(Clone, Debug)]
pub struct Ssa {
    /// Apex point `s = l(ts)`.
    s: Point,
    /// Apex timestamp `ts`.
    ts: Timestamp,
    /// Final timestamp `te` (`te == ts` while only the apex is known).
    te: Timestamp,
    /// The FSA `(l(te), u(te))`; degenerate at the apex while `te == ts`.
    fsa: Rect,
}

impl Ssa {
    /// Creates the degenerate SSA anchored at `seed` (Alg. 1 lines 5-6 /
    /// 14-15).
    pub fn new(seed: TimePoint) -> Self {
        Ssa { s: seed.p, ts: seed.t, te: seed.t, fsa: Rect::point(seed.p) }
    }

    /// Apex point `s`.
    #[inline]
    pub fn start(&self) -> Point {
        self.s
    }

    /// Apex timestamp `ts`.
    #[inline]
    pub fn start_time(&self) -> Timestamp {
        self.ts
    }

    /// Final timestamp `te`.
    #[inline]
    pub fn end_time(&self) -> Timestamp {
        self.te
    }

    /// The current FSA.
    #[inline]
    pub fn fsa(&self) -> Rect {
        self.fsa
    }

    /// True while the SSA consists of the apex only (no measurement has
    /// been accepted since the last reset).
    #[inline]
    pub fn is_apex_only(&self) -> bool {
        self.te == self.ts
    }

    /// `SSA|ti`: the pyramid's cross-section at `ti >= ts` (Alg. 1
    /// lines 26-27). For `ti > te` this linearly extrapolates past the
    /// FSA, which is how RayTrace probes the next measurement's time.
    pub fn project(&self, ti: Timestamp) -> Rect {
        debug_assert!(ti >= self.ts, "projection before apex");
        if self.is_apex_only() || ti == self.ts {
            return Rect::point(self.s);
        }
        let factor = ti.fraction_of(self.ts, self.te);
        self.fsa.scale_about(self.s, factor)
    }

    /// Attempts to extend the SSA through the tolerance rectangle `q` of
    /// a measurement at `ti` (Alg. 1 lines 20-34).
    ///
    /// Returns `true` and updates `(te, FSA)` when the projection at `ti`
    /// intersects `q`; returns `false` leaving the SSA untouched when the
    /// measurement escapes the safe area (the caller must then report to
    /// the coordinator).
    pub fn try_extend(&mut self, ti: Timestamp, q: &Rect) -> bool {
        debug_assert!(ti > self.te, "measurements must arrive in time order");
        if self.is_apex_only() {
            // First timepoint after the apex: FSA becomes the whole
            // tolerance rectangle (lines 20-23).
            self.te = ti;
            self.fsa = *q;
            return true;
        }
        let projected = self.project(ti);
        match projected.intersection(q) {
            Some(narrowed) => {
                self.te = ti;
                self.fsa = narrowed;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    fn square(cx: f64, cy: f64, eps: f64) -> Rect {
        Rect::tolerance_square(Point::new(cx, cy), eps)
    }

    #[test]
    fn fresh_ssa_is_apex_only() {
        let ssa = Ssa::new(tp(1.0, 2.0, 5));
        assert!(ssa.is_apex_only());
        assert_eq!(ssa.start(), Point::new(1.0, 2.0));
        assert_eq!(ssa.start_time(), Timestamp(5));
        assert_eq!(ssa.end_time(), Timestamp(5));
        assert!(ssa.fsa().is_degenerate());
        assert_eq!(ssa.project(Timestamp(5)), Rect::point(Point::new(1.0, 2.0)));
    }

    /// Mirrors the paper's Example 1 / Figure 3: the first point's
    /// tolerance square becomes the FSA, the second narrows it by
    /// intersection with the projection.
    #[test]
    fn example_1_update_sequence() {
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        // First point: FSA = Q1 entirely.
        let q1 = square(10.0, 0.0, 2.0);
        assert!(ssa.try_extend(Timestamp(1), &q1));
        assert_eq!(ssa.fsa(), q1);
        assert_eq!(ssa.end_time(), Timestamp(1));

        // Second point at t=2: projection doubles the pyramid
        // ([16,24]x[-4,4]), intersect with Q2 around (21, 1).
        let q2 = square(21.0, 1.0, 2.0);
        assert!(ssa.try_extend(Timestamp(2), &q2));
        let fsa = ssa.fsa();
        assert_eq!(fsa.lo(), Point::new(19.0, -1.0));
        assert_eq!(fsa.hi(), Point::new(23.0, 3.0));
        assert_eq!(ssa.end_time(), Timestamp(2));
    }

    #[test]
    fn projection_interpolates_and_extrapolates() {
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        ssa.try_extend(Timestamp(10), &square(10.0, 0.0, 2.0));
        // Halfway: half-size square at half-way center.
        let mid = ssa.project(Timestamp(5));
        assert_eq!(mid.centroid(), Point::new(5.0, 0.0));
        assert_eq!(mid.width(), 2.0);
        // Extrapolation to t=20 doubles everything.
        let ext = ssa.project(Timestamp(20));
        assert_eq!(ext.centroid(), Point::new(20.0, 0.0));
        assert_eq!(ext.width(), 8.0);
    }

    #[test]
    fn violation_leaves_ssa_untouched() {
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        ssa.try_extend(Timestamp(1), &square(10.0, 0.0, 2.0));
        let before_fsa = ssa.fsa();
        let before_te = ssa.end_time();
        // An about-face at t=2: projection is near x=20, square near 0.
        assert!(!ssa.try_extend(Timestamp(2), &square(0.0, 0.0, 2.0)));
        assert_eq!(ssa.fsa(), before_fsa);
        assert_eq!(ssa.end_time(), before_te);
    }

    #[test]
    fn straight_motion_never_violates() {
        // Constant-velocity motion keeps the projection centered on the
        // measurement, so the tolerance squares always intersect.
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        for t in 1..=100u64 {
            let q = square(3.0 * t as f64, 4.0 * t as f64, 1.0);
            assert!(ssa.try_extend(Timestamp(t), &q), "violated at t={t}");
        }
        assert_eq!(ssa.end_time(), Timestamp(100));
    }

    /// The pyramid-safety invariant: any endpoint of the final FSA,
    /// interpolated back at each accepted time, lies within the tolerance
    /// square accepted at that time.
    #[test]
    fn invariant_path_stays_in_all_accepted_squares() {
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        let eps = 2.0;
        // A wavy but tolerant trajectory.
        let measurements: Vec<TimePoint> =
            (1..=20u64).map(|t| tp(5.0 * t as f64, (t as f64 * 0.7).sin() * 1.5, t)).collect();
        let mut accepted: Vec<(Timestamp, Rect)> = Vec::new();
        for m in &measurements {
            let q = Rect::tolerance_square(m.p, eps);
            if ssa.try_extend(m.t, &q) {
                accepted.push((m.t, q));
            } else {
                break;
            }
        }
        assert!(!accepted.is_empty());
        let (s, ts, te) = (ssa.start(), ssa.start_time(), ssa.end_time());
        for corner in ssa.fsa().corners() {
            for &(tj, qj) in &accepted {
                let lambda = tj.fraction_of(ts, te);
                let on_path = s.lerp(&corner, lambda);
                assert!(qj.contains(&on_path), "corner {corner:?} escapes square at {tj:?}");
            }
        }
    }

    #[test]
    fn narrowing_is_monotone() {
        // Re-anchoring through intersections can only narrow earlier
        // sections: FSA area never grows between consecutive accepts at
        // the same timestamp scale.
        let mut ssa = Ssa::new(tp(0.0, 0.0, 0));
        ssa.try_extend(Timestamp(1), &square(1.0, 0.0, 5.0));
        let prev_area_at_1 = ssa.project(Timestamp(1)).area();
        ssa.try_extend(Timestamp(2), &square(2.0, 0.0, 5.0));
        let new_area_at_1 = ssa.project(Timestamp(1)).area();
        assert!(new_area_at_1 <= prev_area_at_1 + 1e-9);
    }
}
