//! The RayTrace client filter (Algorithm 1).
//!
//! RayTrace runs independently on every moving object. It swallows
//! measurements into the SSA for as long as possible; when a measurement
//! escapes, it ships the object's *state* to the coordinator, buffers
//! subsequent points, and resumes from the coordinator-chosen endpoint at
//! the next epoch. Constant space, constant time per point.

use super::ssa::Ssa;
use crate::geometry::{Point, Rect, TimePoint};
use crate::time::Timestamp;
use crate::uncertainty::{GaussianPoint, ToleranceTable2D};
use crate::ObjectId;
use std::collections::VecDeque;

/// The state message `<l(ts), ts, l(te), u(te), te>` sent to the
/// coordinator when the SSA cannot grow (Alg. 1 line 38).
///
/// `repr(C)`: 72 bytes with no padding (object 8, start 16, ts 8,
/// fsa 32, te 8) — matching [`ClientState::WIRE_BYTES`] exactly, so the
/// checkpoint's pending section is a direct cast of the batch buffer.
#[derive(Clone, Copy, PartialEq, Debug)]
#[repr(C)]
pub struct ClientState {
    /// Reporting object.
    pub object: ObjectId,
    /// Start vertex `s = l(ts)` of the path under construction.
    pub start: Point,
    /// Start timestamp `ts`.
    pub ts: Timestamp,
    /// The Final Safe Area `(l(te), u(te))`.
    pub fsa: Rect,
    /// Final timestamp `te`.
    pub te: Timestamp,
}

impl ClientState {
    /// Wire size in bytes: three points and two timestamps (Section 4),
    /// plus the object id. Used by the communication accounting.
    pub const WIRE_BYTES: usize = 3 * 16 + 2 * 8 + 8;
}

/// Per-filter accounting: how much the filter compressed.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FilterStats {
    /// Measurements fed to the filter.
    pub observed: u64,
    /// Measurements accepted into some SSA (suppressed updates).
    pub absorbed: u64,
    /// State messages sent to the coordinator.
    pub reports: u64,
    /// Measurements buffered while waiting for the coordinator.
    pub buffered: u64,
    /// Measurements dropped because no tolerance rectangle existed
    /// (uncertain mode with a rejecting fallback policy).
    pub dropped: u64,
}

impl FilterStats {
    /// Accumulates another filter's counters (fleet-wide aggregation).
    pub fn merge(&mut self, other: &FilterStats) {
        self.observed += other.observed;
        self.absorbed += other.absorbed;
        self.reports += other.reports;
        self.buffered += other.buffered;
        self.dropped += other.dropped;
    }
}

/// A buffered observation: timestamp plus its tolerance rectangle. The
/// SSA machinery only ever needs the rectangle, which lets the crisp and
/// uncertain variants share this core.
#[derive(Clone, Copy, Debug)]
struct Obs {
    t: Timestamp,
    rect: Rect,
}

/// Generic RayTrace core over (timestamp, tolerance-rectangle) streams.
#[derive(Clone, Debug)]
pub struct RayTraceCore {
    object: ObjectId,
    ssa: Ssa,
    waiting: bool,
    buffer: VecDeque<Obs>,
    stats: FilterStats,
}

impl RayTraceCore {
    /// Creates a filter seeded at the object's first known timepoint.
    pub fn new(object: ObjectId, seed: TimePoint) -> Self {
        RayTraceCore {
            object,
            ssa: Ssa::new(seed),
            waiting: false,
            buffer: VecDeque::new(),
            stats: FilterStats::default(),
        }
    }

    /// The object this filter runs on.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// True while awaiting a coordinator response (Alg. 1 "waiting mode").
    pub fn is_waiting(&self) -> bool {
        self.waiting
    }

    /// Compression statistics.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Read access to the current SSA (exposed for tests and the hinted
    /// extension).
    pub fn ssa(&self) -> &Ssa {
        &self.ssa
    }

    /// Number of buffered observations.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one observation with a precomputed tolerance rectangle.
    /// Returns the state message when this observation (or a buffered
    /// predecessor) escapes the SSA.
    pub fn observe_rect(&mut self, t: Timestamp, rect: Rect) -> Option<ClientState> {
        self.stats.observed += 1;
        self.buffer.push_back(Obs { t, rect });
        if self.waiting {
            self.stats.buffered += 1;
            return None;
        }
        self.drain()
    }

    /// Delivers the coordinator's endpoint timepoint (next-epoch reply,
    /// Alg. 1 lines 13-16): resets the SSA and processes the buffered
    /// backlog, which may immediately produce the next report.
    pub fn receive_endpoint(&mut self, endpoint: TimePoint) -> Option<ClientState> {
        debug_assert!(self.waiting, "endpoint delivered to a non-waiting filter");
        self.ssa = Ssa::new(endpoint);
        self.waiting = false;
        self.drain()
    }

    /// Processes buffered observations until one escapes or the buffer
    /// empties (Alg. 1 lines 18-41).
    fn drain(&mut self) -> Option<ClientState> {
        while let Some(obs) = self.buffer.pop_front() {
            debug_assert!(
                obs.t > self.ssa.end_time() || self.ssa.is_apex_only(),
                "observation at {:?} not after SSA end {:?}",
                obs.t,
                self.ssa.end_time()
            );
            if self.ssa.try_extend(obs.t, &obs.rect) {
                self.stats.absorbed += 1;
                continue;
            }
            // Violation: go into waiting mode, keep the violating point
            // for re-processing against the next SSA, report the state.
            self.waiting = true;
            self.buffer.push_front(obs);
            self.stats.reports += 1;
            return Some(ClientState {
                object: self.object,
                start: self.ssa.start(),
                ts: self.ssa.start_time(),
                fsa: self.ssa.fsa(),
                te: self.ssa.end_time(),
            });
        }
        None
    }
}

/// The crisp-tolerance RayTrace filter of Algorithm 1: each measurement
/// contributes the tolerance square of side `2 eps` around itself.
#[derive(Clone, Debug)]
pub struct RayTraceFilter {
    core: RayTraceCore,
    eps: f64,
}

impl RayTraceFilter {
    /// Creates a filter with tolerance `eps`, seeded at the object's
    /// first timepoint.
    pub fn new(object: ObjectId, seed: TimePoint, eps: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        RayTraceFilter { core: RayTraceCore::new(object, seed), eps }
    }

    /// The tolerance radius.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Feeds a measurement; returns a state message when the SSA breaks.
    pub fn observe(&mut self, tp: TimePoint) -> Option<ClientState> {
        self.core.observe_rect(tp.t, Rect::tolerance_square(tp.p, self.eps))
    }

    /// Delivers the coordinator's endpoint (may immediately re-report).
    pub fn receive_endpoint(&mut self, endpoint: TimePoint) -> Option<ClientState> {
        self.core.receive_endpoint(endpoint)
    }

    /// True while awaiting a coordinator response.
    pub fn is_waiting(&self) -> bool {
        self.core.is_waiting()
    }

    /// Compression statistics.
    pub fn stats(&self) -> FilterStats {
        self.core.stats()
    }

    /// The object this filter runs on.
    pub fn object(&self) -> ObjectId {
        self.core.object()
    }

    /// Read access to the SSA.
    pub fn ssa(&self) -> &Ssa {
        self.core.ssa()
    }

    /// Number of buffered observations (non-zero only while waiting).
    pub fn buffered_len(&self) -> usize {
        self.core.buffered_len()
    }
}

/// The `(eps, delta)`-tolerance RayTrace filter of Section 4.1: each
/// Gaussian measurement contributes its solved tolerance rectangle; the
/// SSA update is otherwise identical.
#[derive(Clone, Debug)]
pub struct UncertainRayTraceFilter {
    core: RayTraceCore,
    table: ToleranceTable2D,
}

impl UncertainRayTraceFilter {
    /// Creates an uncertainty-aware filter around a prebuilt per-axis
    /// tolerance table (share one table across all objects).
    pub fn new(object: ObjectId, seed: TimePoint, table: ToleranceTable2D) -> Self {
        UncertainRayTraceFilter { core: RayTraceCore::new(object, seed), table }
    }

    /// Feeds a Gaussian measurement at `t`. Measurements whose noise
    /// makes Equation 2 unsolvable are dropped (or shrunk, per the
    /// table's fallback policy) and counted in
    /// [`FilterStats::dropped`].
    pub fn observe_gaussian(&mut self, g: GaussianPoint, t: Timestamp) -> Option<ClientState> {
        match g.tolerance_rect(&self.table) {
            Some(rect) => self.core.observe_rect(t, rect),
            None => {
                self.core.stats.observed += 1;
                self.core.stats.dropped += 1;
                None
            }
        }
    }

    /// Delivers the coordinator's endpoint.
    pub fn receive_endpoint(&mut self, endpoint: TimePoint) -> Option<ClientState> {
        self.core.receive_endpoint(endpoint)
    }

    /// True while awaiting a coordinator response.
    pub fn is_waiting(&self) -> bool {
        self.core.is_waiting()
    }

    /// Compression statistics.
    pub fn stats(&self) -> FilterStats {
        self.core.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertainty::FallbackPolicy;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn straight_mover_never_reports() {
        let mut f = RayTraceFilter::new(ObjectId(1), tp(0.0, 0.0, 0), 2.0);
        for t in 1..=200u64 {
            assert!(f.observe(tp(t as f64, 0.0, t)).is_none(), "report at t={t}");
        }
        let s = f.stats();
        assert_eq!(s.observed, 200);
        assert_eq!(s.absorbed, 200);
        assert_eq!(s.reports, 0);
        assert!(!f.is_waiting());
    }

    #[test]
    fn sharp_turn_triggers_report_with_correct_state() {
        let mut f = RayTraceFilter::new(ObjectId(7), tp(0.0, 0.0, 0), 1.0);
        // East for 10 steps of size 10 (fits one SSA)...
        for t in 1..=10u64 {
            assert!(f.observe(tp(10.0 * t as f64, 0.0, t)).is_none());
        }
        // ...then an abrupt jump back toward the origin.
        let state = f.observe(tp(0.0, 0.0, 11)).expect("turn must violate");
        assert_eq!(state.object, ObjectId(7));
        assert_eq!(state.start, Point::new(0.0, 0.0));
        assert_eq!(state.ts, Timestamp(0));
        assert_eq!(state.te, Timestamp(10));
        // The FSA must contain the true position at te.
        assert!(state.fsa.contains(&Point::new(100.0, 0.0)));
        assert!(f.is_waiting());
        assert_eq!(f.stats().reports, 1);
    }

    #[test]
    fn waiting_mode_buffers_and_resumes() {
        let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 1.0);
        for t in 1..=5u64 {
            f.observe(tp(10.0 * t as f64, 0.0, t));
        }
        let state = f.observe(tp(0.0, 50.0, 6)).expect("violation");
        // Buffer more while waiting; no reports.
        assert!(f.observe(tp(0.0, 60.0, 7)).is_none());
        assert!(f.observe(tp(0.0, 70.0, 8)).is_none());
        assert_eq!(f.buffered_len(), 3); // violator + two buffered
        assert_eq!(f.stats().buffered, 2);

        // Coordinator picks an endpoint inside the FSA at te.
        let endpoint = TimePoint::new(state.fsa.centroid(), state.te);
        let next = f.receive_endpoint(endpoint);
        // The backlog (jump to (0,50) then northward) may or may not
        // violate the new SSA immediately; in this geometry it must:
        // centroid is near (50,0) and the violator is at (0,50).
        let next = next.expect("backlog must re-violate");
        assert_eq!(next.start, endpoint.p);
        assert_eq!(next.ts, endpoint.t);
        assert!(f.is_waiting());
        assert_eq!(f.stats().reports, 2);
    }

    #[test]
    fn resumed_filter_chains_from_endpoint() {
        let mut f = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), 1.0);
        for t in 1..=5u64 {
            f.observe(tp(10.0 * t as f64, 0.0, t));
        }
        let s1 = f.observe(tp(0.0, 0.0, 6)).expect("violation");
        assert_eq!(s1.te, Timestamp(5));
        let endpoint = TimePoint::new(Point::new(50.0, 0.0), s1.te);
        // After the endpoint, the violator (0,0)@6 seeds a fresh FSA (it
        // is the first point after the apex, so it cannot violate), and
        // subsequent motion consistent with the apex->violator velocity
        // (-50 m/granule) is absorbed.
        assert!(f.receive_endpoint(endpoint).is_none());
        assert!(!f.is_waiting());
        for t in 7..=12u64 {
            let x = 50.0 - 50.0 * (t - 5) as f64;
            assert!(f.observe(tp(x, 0.0, t)).is_none(), "unexpected report at t={t}");
        }
        // The next state's start must be the coordinator endpoint
        // (covering-set chaining).
        let s2 = f.observe(tp(1000.0, 1000.0, 13)).expect("forced violation");
        assert_eq!(s2.start, Point::new(50.0, 0.0));
        assert_eq!(s2.ts, s1.te);
    }

    #[test]
    fn state_wire_size_matches_paper_payload() {
        // 3 points (2 f64 each) + 2 timestamps + object id.
        assert_eq!(ClientState::WIRE_BYTES, 72);
    }

    #[test]
    fn first_report_start_is_seed_point() {
        let seed = tp(5.0, 5.0, 3);
        let mut f = RayTraceFilter::new(ObjectId(2), seed, 1.0);
        f.observe(tp(6.0, 5.0, 4));
        let s = f.observe(tp(-100.0, 5.0, 5)).expect("violation");
        assert_eq!(s.start, seed.p);
        assert_eq!(s.ts, seed.t);
    }

    #[test]
    fn uncertain_filter_tracks_and_drops() {
        let table = ToleranceTable2D::build(10.0, 0.05, 8.0, 128, FallbackPolicy::Reject);
        let mut f = UncertainRayTraceFilter::new(ObjectId(4), tp(0.0, 0.0, 0), table);
        // Accurate measurements along a line: absorbed.
        for t in 1..=20u64 {
            let g = GaussianPoint::isotropic(Point::new(5.0 * t as f64, 0.0), 1.0);
            assert!(f.observe_gaussian(g, Timestamp(t)).is_none(), "report at t={t}");
        }
        // A hopelessly noisy measurement is dropped, not violated.
        let noisy = GaussianPoint::isotropic(Point::new(105.0, 0.0), 50.0);
        assert!(f.observe_gaussian(noisy, Timestamp(21)).is_none());
        assert_eq!(f.stats().dropped, 1);
        assert!(!f.is_waiting());
        // A clean but contradictory measurement violates as usual.
        let back = GaussianPoint::isotropic(Point::new(0.0, 0.0), 1.0);
        assert!(f.observe_gaussian(back, Timestamp(22)).is_some());
        assert!(f.is_waiting());
    }

    #[test]
    fn uncertain_filter_narrower_rects_than_crisp() {
        // With noise, the tolerance rectangle half-width is strictly
        // below eps, so the uncertain filter violates earlier than the
        // crisp one on the same borderline drift.
        let eps = 5.0;
        let table = ToleranceTable2D::build(eps, 0.05, 8.0, 256, FallbackPolicy::Reject);
        let mut crisp = RayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), eps);
        let mut uncertain = UncertainRayTraceFilter::new(ObjectId(0), tp(0.0, 0.0, 0), table);
        let mut crisp_reports = 0u32;
        let mut uncertain_reports = 0u32;
        // Drift with a mild zig-zag that stresses the tolerance.
        for t in 1..=200u64 {
            let y = if t % 2 == 0 { 4.0 } else { -4.0 };
            let p = Point::new(3.0 * t as f64, y);
            if crisp.observe(TimePoint::new(p, Timestamp(t))).is_some() {
                crisp_reports += 1;
                let st = crisp.ssa().clone();
                let _ = st;
                let fsa_center = crisp.core.ssa.fsa().centroid();
                crisp.receive_endpoint(TimePoint::new(fsa_center, crisp.core.ssa.end_time()));
            }
            if uncertain.observe_gaussian(GaussianPoint::isotropic(p, 2.0), Timestamp(t)).is_some()
            {
                uncertain_reports += 1;
                let fsa_center = uncertain.core.ssa.fsa().centroid();
                uncertain
                    .receive_endpoint(TimePoint::new(fsa_center, uncertain.core.ssa.end_time()));
            }
        }
        assert!(
            uncertain_reports >= crisp_reports,
            "uncertain {uncertain_reports} < crisp {crisp_reports}"
        );
        assert!(uncertain_reports > 0);
    }
}
