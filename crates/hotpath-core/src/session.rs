//! Client-session lifecycle: heartbeat leases over the shared timer
//! wheel.
//!
//! The serving front door tracks every reporting client in a
//! [`SessionTable`] with a three-state machine:
//!
//! ```text
//!            heartbeat                lease expires
//!   (new) ──────────────▶ Healthy ───────────────────▶ Dropped
//!                            ▲                            │
//!                            │  heartbeat (Reconnected)   │ grace expires
//!                            └────────────────────────────┤
//!                                                         ▼
//!                                                      Ejected
//!                                              (record removed; a later
//!                                               heartbeat re-admits as a
//!                                               fresh session)
//! ```
//!
//! Every admitted state message is a heartbeat: it re-arms the client's
//! lease (`deadline = heartbeat + lease`). Leases expire through the
//! same hierarchical [`TimerWheel`] the hotness table uses — re-armed
//! leases leave their old wheel events in place as *stale* entries
//! that are skipped when they fire (the record's current deadline no
//! longer matches), so re-arming is O(1).
//!
//! Transitions are surfaced as typed [`SessionEvent`]s (drained into
//! each epoch's published `HotSnapshot`) and counted in monotone
//! [`SessionCounters`]. The table is checkpointed as a section of
//! sorted [`SessionRecord`]s; stale wheel events are *not* serialized
//! (the deadline in each record is the only live one), which keeps the
//! image a pure function of the table's logical state.

use crate::fxhash::FxHashMap;
use crate::time::Timestamp;
use crate::wheel::{TimerWheel, WheelEvent};
use crate::ObjectId;

/// Lifecycle state of one client session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SessionState {
    /// Heartbeating within its lease.
    Healthy = 0,
    /// Lease expired; within the ejection grace period.
    Dropped = 1,
    /// Grace expired: the session record was removed. Records never
    /// hold this state — it only appears in transition events.
    Ejected = 2,
}

impl std::fmt::Display for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionState::Healthy => "healthy",
            SessionState::Dropped => "dropped",
            SessionState::Ejected => "ejected",
        })
    }
}

/// A typed lifecycle transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionTransition {
    /// First heartbeat of an unknown client: a fresh Healthy session.
    Connected,
    /// Lease expired: Healthy → Dropped.
    Dropped,
    /// Heartbeat from a Dropped client: Dropped → Healthy.
    Reconnected,
    /// Grace expired (or admission forced it): session removed.
    Ejected,
}

impl std::fmt::Display for SessionTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionTransition::Connected => "connected",
            SessionTransition::Dropped => "dropped",
            SessionTransition::Reconnected => "reconnected",
            SessionTransition::Ejected => "ejected",
        })
    }
}

/// One lifecycle transition, stamped with when it logically happened
/// (lease-driven transitions carry the deadline that expired, not the
/// clock value that happened to observe it — so the stream is
/// independent of how coarsely time advances).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SessionEvent {
    /// The client.
    pub object: ObjectId,
    /// When the transition logically happened.
    pub at: Timestamp,
    /// What happened.
    pub transition: SessionTransition,
}

/// Monotone session-lifecycle counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SessionCounters {
    /// Fresh sessions admitted.
    pub connects: u64,
    /// Healthy → Dropped transitions.
    pub drops: u64,
    /// Dropped → Healthy transitions.
    pub reconnects: u64,
    /// Sessions removed (grace expiry or admission ejection).
    pub ejections: u64,
}

/// Checkpoint form of one session: four little-endian `u64`s, 32 bytes,
/// no padding. `state` is 0 (Healthy, `deadline` = lease expiry) or
/// 1 (Dropped, `deadline` = ejection time).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct SessionRecord {
    /// The client id.
    pub object: u64,
    /// Encoded [`SessionState`] (0 or 1; Ejected records don't exist).
    pub state: u64,
    /// The live deadline: lease expiry while Healthy, ejection time
    /// while Dropped.
    pub deadline: u64,
    /// Largest heartbeat timestamp seen (the eject-slowest victim key).
    pub last_heartbeat: u64,
}

/// A pending lease deadline on the wheel. Stale once the record's
/// deadline moves past it.
#[derive(Clone, Copy, Debug)]
struct LeaseEvent {
    expiry: u64,
    object: ObjectId,
}

impl WheelEvent for LeaseEvent {
    type Key = (u64, u64);

    #[inline]
    fn expiry_raw(&self) -> u64 {
        self.expiry
    }

    #[inline]
    fn sort_key(&self) -> Self::Key {
        (self.expiry, self.object.0)
    }
}

/// Live per-client record.
#[derive(Clone, Copy, Debug)]
struct Record {
    state: SessionState,
    deadline: u64,
    last_heartbeat: u64,
}

/// The session table: per-client lifecycle records plus the lease
/// wheel. All operations are deterministic in the order they are
/// applied — heartbeats in submission order, expiries in canonical
/// `(deadline, object)` order — so every backend and shard count
/// produces the identical event stream.
#[derive(Clone, Debug)]
pub struct SessionTable {
    lease: u64,
    grace: u64,
    records: FxHashMap<ObjectId, Record>,
    wheel: TimerWheel<LeaseEvent>,
    /// Transitions since the last [`SessionTable::drain_events`].
    events: Vec<SessionEvent>,
    counters: SessionCounters,
    /// Count of records in `Healthy` state.
    healthy: usize,
}

impl SessionTable {
    /// An empty table with the given lease and grace (timestamps),
    /// whose wheel clock starts at `clock`.
    pub fn new(lease: u64, grace: u64, clock: Timestamp) -> Self {
        assert!(lease > 0, "session table requires a positive lease");
        SessionTable {
            lease,
            grace,
            records: FxHashMap::default(),
            wheel: TimerWheel::new(clock.raw()),
            events: Vec::new(),
            counters: SessionCounters::default(),
            healthy: 0,
        }
    }

    /// The lease in force.
    pub fn lease(&self) -> u64 {
        self.lease
    }

    /// The ejection grace in force.
    pub fn grace(&self) -> u64 {
        self.grace
    }

    /// Tracked sessions (Healthy + Dropped).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sessions are tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sessions currently Healthy.
    pub fn healthy_count(&self) -> usize {
        self.healthy
    }

    /// Sessions currently Dropped (lease expired, inside grace).
    pub fn dropped_count(&self) -> usize {
        self.records.len() - self.healthy
    }

    /// Cumulative lifecycle counters.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Current state of a client, if tracked.
    pub fn state_of(&self, object: ObjectId) -> Option<SessionState> {
        self.records.get(&object).map(|r| r.state)
    }

    /// Largest heartbeat timestamp seen for a client, if tracked (the
    /// eject-slowest victim key).
    pub fn last_heartbeat(&self, object: ObjectId) -> Option<u64> {
        self.records.get(&object).map(|r| r.last_heartbeat)
    }

    /// Registers a heartbeat at `at`: admits unknown clients as fresh
    /// Healthy sessions, revives Dropped ones, and re-arms the lease to
    /// `at + lease` (monotone — a late heartbeat never shortens it).
    pub fn heartbeat(&mut self, object: ObjectId, at: Timestamp) {
        let at_raw = at.raw();
        let deadline = at_raw.saturating_add(self.lease);
        match self.records.get_mut(&object) {
            None => {
                self.records.insert(
                    object,
                    Record { state: SessionState::Healthy, deadline, last_heartbeat: at_raw },
                );
                self.wheel.insert(LeaseEvent { expiry: deadline, object });
                self.healthy += 1;
                self.counters.connects += 1;
                self.events.push(SessionEvent {
                    object,
                    at,
                    transition: SessionTransition::Connected,
                });
            }
            Some(r) => {
                r.last_heartbeat = r.last_heartbeat.max(at_raw);
                if r.state == SessionState::Dropped {
                    r.state = SessionState::Healthy;
                    r.deadline = deadline;
                    self.wheel.insert(LeaseEvent { expiry: deadline, object });
                    self.healthy += 1;
                    self.counters.reconnects += 1;
                    self.events.push(SessionEvent {
                        object,
                        at,
                        transition: SessionTransition::Reconnected,
                    });
                } else if deadline > r.deadline {
                    // Re-arm: the old wheel event goes stale (skipped
                    // when it fires — the deadline no longer matches).
                    r.deadline = deadline;
                    self.wheel.insert(LeaseEvent { expiry: deadline, object });
                }
            }
        }
    }

    /// Advances the lease clock to `now`, applying every due deadline
    /// in canonical `(deadline, object)` order: Healthy sessions drop,
    /// Dropped sessions eject. Stale events (re-armed or already
    /// removed sessions) are skipped. Amortized O(expired).
    pub fn advance(&mut self, now: Timestamp) {
        self.wheel.advance_collect(now.raw());
        let mut fired = self.wheel.take_expired();
        fired.sort_unstable_by_key(|e| e.sort_key());
        for ev in &fired {
            let Some(r) = self.records.get(&ev.object).copied() else {
                continue; // ejected before this stale event fired
            };
            if ev.expiry != r.deadline {
                continue; // re-armed: a fresher deadline supersedes this
            }
            match r.state {
                SessionState::Healthy => {
                    self.healthy -= 1;
                    self.counters.drops += 1;
                    self.events.push(SessionEvent {
                        object: ev.object,
                        at: Timestamp(ev.expiry),
                        transition: SessionTransition::Dropped,
                    });
                    let eject_at = ev.expiry.saturating_add(self.grace);
                    if eject_at <= now.raw() {
                        // Grace already elapsed within this advance.
                        self.records.remove(&ev.object);
                        self.counters.ejections += 1;
                        self.events.push(SessionEvent {
                            object: ev.object,
                            at: Timestamp(eject_at),
                            transition: SessionTransition::Ejected,
                        });
                    } else {
                        let rec = self.records.get_mut(&ev.object).expect("record exists");
                        rec.state = SessionState::Dropped;
                        rec.deadline = eject_at;
                        self.wheel.insert(LeaseEvent { expiry: eject_at, object: ev.object });
                    }
                }
                SessionState::Dropped => {
                    self.records.remove(&ev.object);
                    self.counters.ejections += 1;
                    self.events.push(SessionEvent {
                        object: ev.object,
                        at: Timestamp(ev.expiry),
                        transition: SessionTransition::Ejected,
                    });
                }
                SessionState::Ejected => unreachable!("records never hold Ejected"),
            }
        }
        self.wheel.give_expired(fired);
    }

    /// Forcibly removes a session (admission's eject-slowest policy).
    /// Unknown clients are a no-op. The ejection is stamped `at`.
    pub fn eject_now(&mut self, object: ObjectId, at: Timestamp) {
        let Some(r) = self.records.remove(&object) else { return };
        if r.state == SessionState::Healthy {
            self.healthy -= 1;
        }
        self.counters.ejections += 1;
        self.events.push(SessionEvent { object, at, transition: SessionTransition::Ejected });
        // Its wheel events are now stale: skipped when they fire.
    }

    /// Takes the transitions accumulated since the last drain (the
    /// epoch publish stage moves them into the snapshot).
    pub fn drain_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Transitions accumulated since the last drain, without taking.
    pub fn pending_events(&self) -> &[SessionEvent] {
        &self.events
    }

    // ---- checkpoint surface -------------------------------------------

    /// Serializes the table as records sorted by object id — a pure
    /// function of the logical session state (stale wheel events are
    /// not serialized), so checkpoint-of-restore is byte-identical.
    pub fn records_vec(&self) -> Vec<SessionRecord> {
        let mut out: Vec<SessionRecord> = self
            .records
            .iter()
            .map(|(&object, r)| SessionRecord {
                object: object.0,
                state: r.state as u64,
                deadline: r.deadline,
                last_heartbeat: r.last_heartbeat,
            })
            .collect();
        out.sort_unstable_by_key(|r| r.object);
        out
    }

    /// Rebuilds a table from a checkpoint section: records are adopted
    /// verbatim and exactly one wheel event per record is scheduled at
    /// its live deadline. Counters are restored by the caller (they
    /// live in the stats record). Undrained events are impossible by
    /// construction — checkpoints are taken at quiescent boundaries,
    /// after the publish stage drained them.
    ///
    /// # Errors
    /// Returns a description when the section is structurally invalid
    /// (unsorted/duplicate objects, bad state encoding) — possible only
    /// for a buggy or hostile producer, since CRC validation happens
    /// before this runs.
    pub fn from_checkpoint_parts(
        lease: u64,
        grace: u64,
        records: Vec<SessionRecord>,
        counters: SessionCounters,
        clock: Timestamp,
    ) -> Result<Self, String> {
        let mut table = SessionTable::new(lease, grace, clock);
        table.counters = counters;
        for pair in records.windows(2) {
            if pair[0].object >= pair[1].object {
                return Err(format!(
                    "session section not sorted by object ({} then {})",
                    pair[0].object, pair[1].object
                ));
            }
        }
        for rec in &records {
            let state = match rec.state {
                0 => SessionState::Healthy,
                1 => SessionState::Dropped,
                other => return Err(format!("session obj{} has state {other}", rec.object)),
            };
            if state == SessionState::Healthy {
                table.healthy += 1;
            }
            let object = ObjectId(rec.object);
            table.records.insert(
                object,
                Record { state, deadline: rec.deadline, last_heartbeat: rec.last_heartbeat },
            );
            table.wheel.insert(LeaseEvent { expiry: rec.deadline, object });
        }
        Ok(table)
    }

    /// Audits structural invariants: the wheel's internal consistency,
    /// the healthy ledger, and that every record's live deadline has a
    /// wheel event backing it.
    pub fn check(&self) -> Result<(), String> {
        self.wheel.check()?;
        let healthy = self.records.values().filter(|r| r.state == SessionState::Healthy).count();
        if healthy != self.healthy {
            return Err(format!("healthy ledger says {}, records hold {healthy}", self.healthy));
        }
        let scheduled: std::collections::HashSet<(u64, u64)> =
            self.wheel.sorted_events().iter().map(|e| (e.expiry, e.object.0)).collect();
        for (object, r) in &self.records {
            if !scheduled.contains(&(r.deadline, object.0)) {
                return Err(format!("session {object} deadline {} has no wheel event", r.deadline));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(lease: u64, grace: u64) -> SessionTable {
        SessionTable::new(lease, grace, Timestamp(0))
    }

    fn transitions(events: &[SessionEvent]) -> Vec<(u64, u64, SessionTransition)> {
        events.iter().map(|e| (e.object.0, e.at.raw(), e.transition)).collect()
    }

    #[test]
    fn heartbeats_keep_a_session_healthy() {
        let mut t = table(10, 5);
        for at in (0..100).step_by(5) {
            t.heartbeat(ObjectId(1), Timestamp(at));
            t.advance(Timestamp(at));
        }
        assert_eq!(t.state_of(ObjectId(1)), Some(SessionState::Healthy));
        assert_eq!(t.healthy_count(), 1);
        assert_eq!(t.counters().connects, 1);
        assert_eq!(t.counters().drops, 0);
        // One Connected event total; re-arms are silent.
        assert_eq!(t.drain_events().len(), 1);
        t.check().unwrap();
    }

    #[test]
    fn lease_then_grace_expire_with_exact_timestamps() {
        let mut t = table(10, 5);
        t.heartbeat(ObjectId(7), Timestamp(3)); // lease ends 13, eject 18
        t.advance(Timestamp(12));
        assert_eq!(t.state_of(ObjectId(7)), Some(SessionState::Healthy));
        t.advance(Timestamp(13));
        assert_eq!(t.state_of(ObjectId(7)), Some(SessionState::Dropped));
        assert_eq!(t.dropped_count(), 1);
        t.advance(Timestamp(17));
        assert_eq!(t.state_of(ObjectId(7)), Some(SessionState::Dropped));
        t.advance(Timestamp(18));
        assert_eq!(t.state_of(ObjectId(7)), None);
        assert_eq!(
            transitions(&t.drain_events()),
            vec![
                (7, 3, SessionTransition::Connected),
                (7, 13, SessionTransition::Dropped),
                (7, 18, SessionTransition::Ejected),
            ]
        );
        let c = t.counters();
        assert_eq!((c.connects, c.drops, c.reconnects, c.ejections), (1, 1, 0, 1));
        t.check().unwrap();
    }

    #[test]
    fn one_coarse_advance_drops_and_ejects_in_one_pass() {
        // The epoch clock can jump far past both deadlines at once; the
        // transitions still carry the logical deadline timestamps.
        let mut t = table(10, 5);
        t.heartbeat(ObjectId(1), Timestamp(0));
        t.advance(Timestamp(1_000));
        assert!(t.is_empty());
        assert_eq!(
            transitions(&t.drain_events())[1..],
            vec![(1, 10, SessionTransition::Dropped), (1, 15, SessionTransition::Ejected)][..]
        );
        t.check().unwrap();
    }

    #[test]
    fn reconnect_within_grace_revives_the_session() {
        let mut t = table(10, 20);
        t.heartbeat(ObjectId(4), Timestamp(0));
        t.advance(Timestamp(10)); // dropped at 10, eject deadline 30
        assert_eq!(t.state_of(ObjectId(4)), Some(SessionState::Dropped));
        t.heartbeat(ObjectId(4), Timestamp(15));
        assert_eq!(t.state_of(ObjectId(4)), Some(SessionState::Healthy));
        assert_eq!(t.counters().reconnects, 1);
        // The stale grace event at 30 must not eject the revived session.
        t.advance(Timestamp(30));
        assert_eq!(t.state_of(ObjectId(4)), Some(SessionState::Dropped), "dropped again at 25");
        assert_eq!(t.counters().ejections, 0);
        t.check().unwrap();
    }

    #[test]
    fn readmission_after_ejection_is_a_fresh_connect() {
        let mut t = table(5, 0);
        t.heartbeat(ObjectId(9), Timestamp(0));
        t.advance(Timestamp(5)); // grace 0: drop + eject in one pass
        assert!(t.is_empty());
        t.heartbeat(ObjectId(9), Timestamp(6));
        assert_eq!(t.counters().connects, 2);
        assert_eq!(t.counters().reconnects, 0);
        assert_eq!(t.state_of(ObjectId(9)), Some(SessionState::Healthy));
        t.check().unwrap();
    }

    #[test]
    fn rearm_makes_old_wheel_events_stale() {
        let mut t = table(10, 5);
        t.heartbeat(ObjectId(2), Timestamp(0)); // deadline 10
        t.heartbeat(ObjectId(2), Timestamp(8)); // deadline 18
        t.advance(Timestamp(10)); // stale event fires, must be skipped
        assert_eq!(t.state_of(ObjectId(2)), Some(SessionState::Healthy));
        assert_eq!(t.counters().drops, 0);
        t.advance(Timestamp(18));
        assert_eq!(t.state_of(ObjectId(2)), Some(SessionState::Dropped));
        t.check().unwrap();
    }

    #[test]
    fn late_heartbeat_never_shortens_the_lease() {
        let mut t = table(10, 5);
        t.heartbeat(ObjectId(3), Timestamp(20)); // deadline 30
        t.heartbeat(ObjectId(3), Timestamp(5)); // out-of-order: no-op
        t.advance(Timestamp(29));
        assert_eq!(t.state_of(ObjectId(3)), Some(SessionState::Healthy));
        assert_eq!(t.last_heartbeat(ObjectId(3)), Some(20));
        t.check().unwrap();
    }

    #[test]
    fn eject_now_removes_and_counts() {
        let mut t = table(10, 5);
        t.heartbeat(ObjectId(1), Timestamp(0));
        t.heartbeat(ObjectId(2), Timestamp(0));
        t.eject_now(ObjectId(1), Timestamp(4));
        assert_eq!(t.len(), 1);
        assert_eq!(t.counters().ejections, 1);
        // Its stale lease event at 10 fires harmlessly.
        t.advance(Timestamp(10));
        assert_eq!(t.counters().ejections, 1);
        assert_eq!(t.state_of(ObjectId(2)), Some(SessionState::Dropped));
        let evs = transitions(&t.drain_events());
        assert!(evs.contains(&(1, 4, SessionTransition::Ejected)));
        t.check().unwrap();
    }

    #[test]
    fn expiries_apply_in_deadline_then_object_order() {
        let mut t = table(10, 100);
        // Same deadline for 3 clients, inserted out of object order.
        for id in [9u64, 1, 5] {
            t.heartbeat(ObjectId(id), Timestamp(0));
        }
        t.heartbeat(ObjectId(3), Timestamp(2)); // later deadline 12
        t.advance(Timestamp(50));
        let evs: Vec<_> = t
            .drain_events()
            .into_iter()
            .filter(|e| e.transition == SessionTransition::Dropped)
            .map(|e| (e.at.raw(), e.object.0))
            .collect();
        assert_eq!(evs, vec![(10, 1), (10, 5), (10, 9), (12, 3)]);
        t.check().unwrap();
    }

    #[test]
    fn checkpoint_roundtrip_continues_identically_and_is_idempotent() {
        let mut t = table(13, 7);
        let mut s = 41u64;
        let mut rand = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut now = 0u64;
        for _ in 0..400 {
            now += rand() % 4;
            t.advance(Timestamp(now));
            if rand() % 3 != 0 {
                t.heartbeat(ObjectId(rand() % 24), Timestamp(now));
            }
        }
        let _ = t.drain_events();
        let restore = |t: &SessionTable| {
            SessionTable::from_checkpoint_parts(
                t.lease(),
                t.grace(),
                t.records_vec(),
                t.counters(),
                Timestamp(now),
            )
            .unwrap()
        };
        let mut copy = restore(&t);
        copy.check().unwrap();
        assert_eq!(copy.records_vec(), t.records_vec());
        assert_eq!(restore(&copy).records_vec(), t.records_vec(), "restore not idempotent");
        // Both copies must now evolve in lock-step: same events, same
        // records, despite the restored wheel holding no stale events.
        for _ in 0..400 {
            now += rand() % 4;
            t.advance(Timestamp(now));
            copy.advance(Timestamp(now));
            if rand() % 3 != 0 {
                let (id, at) = (ObjectId(rand() % 24), Timestamp(now));
                t.heartbeat(id, at);
                copy.heartbeat(id, at);
            }
            assert_eq!(t.drain_events(), copy.drain_events());
            assert_eq!(t.records_vec(), copy.records_vec());
        }
        t.check().unwrap();
        copy.check().unwrap();
    }

    #[test]
    fn checkpoint_parts_reject_structural_corruption() {
        let rec = |object: u64, state: u64| SessionRecord {
            object,
            state,
            deadline: 100,
            last_heartbeat: 90,
        };
        // Unsorted.
        assert!(SessionTable::from_checkpoint_parts(
            10,
            5,
            vec![rec(2, 0), rec(1, 0)],
            SessionCounters::default(),
            Timestamp(0)
        )
        .is_err());
        // Duplicate.
        assert!(SessionTable::from_checkpoint_parts(
            10,
            5,
            vec![rec(1, 0), rec(1, 1)],
            SessionCounters::default(),
            Timestamp(0)
        )
        .is_err());
        // Bad state encoding (2 = Ejected records must not exist).
        assert!(SessionTable::from_checkpoint_parts(
            10,
            5,
            vec![rec(1, 2)],
            SessionCounters::default(),
            Timestamp(0)
        )
        .is_err());
    }

    #[test]
    fn record_layout_is_padding_free() {
        assert_eq!(std::mem::size_of::<SessionRecord>(), 32);
        assert_eq!(std::mem::align_of::<SessionRecord>(), 8);
    }
}
