//! The lightweight uniform grid underlying the MotionPath index
//! (Section 5.1).
//!
//! Space is partitioned into square cells; each cell holds a small hash
//! table of endpoint entries keyed by `(path id, endpoint kind)`, giving
//! expected-constant insertion and deletion exactly as the paper
//! prescribes ("the list is sorted by motion path id and organized in a
//! hash table").

use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};
use crate::motion_path::PathId;

/// Which endpoint of the path an entry describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EndKind {
    /// The start vertex of the directed path.
    Start,
    /// The end vertex of the directed path.
    End,
}

/// One grid entry: an endpoint, its path, and the opposite endpoint
/// (stored inline so range queries need no second lookup — mirroring the
/// paper's "each index entry also stores the respective motion path id
/// and the coordinates of the other endpoint").
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// The indexed endpoint.
    pub endpoint: Point,
    /// The path this endpoint belongs to.
    pub path: PathId,
    /// The path's other endpoint.
    pub other: Point,
    /// Whether `endpoint` is the path's start or end.
    pub kind: EndKind,
}

/// Integer cell coordinates.
pub type CellKey = (i64, i64);

/// A uniform grid of endpoint entries.
#[derive(Clone, Debug)]
pub struct EndpointGrid {
    cell: f64,
    cells: FxHashMap<CellKey, FxHashMap<(PathId, EndKind), Entry>>,
    len: usize,
}

impl EndpointGrid {
    /// Creates a grid with square cells of side `cell` meters.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell side must be positive");
        EndpointGrid { cell, cells: FxHashMap::default(), len: 0 }
    }

    /// Cell side in meters.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Number of stored entries (two per indexed path).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell containing `p`.
    #[inline]
    pub fn key_of(&self, p: &Point) -> CellKey {
        ((p.x / self.cell).floor() as i64, (p.y / self.cell).floor() as i64)
    }

    /// Inserts an entry; replaces any previous entry for the same
    /// `(path, kind)` pair in that cell.
    pub fn insert(&mut self, entry: Entry) {
        let key = self.key_of(&entry.endpoint);
        let slot = self.cells.entry(key).or_default();
        if slot.insert((entry.path, entry.kind), entry).is_none() {
            self.len += 1;
        }
    }

    /// Removes the entry for `(path, kind)` whose endpoint is `endpoint`;
    /// returns whether it existed.
    pub fn remove(&mut self, endpoint: &Point, path: PathId, kind: EndKind) -> bool {
        let key = self.key_of(endpoint);
        let Some(slot) = self.cells.get_mut(&key) else { return false };
        let removed = slot.remove(&(path, kind)).is_some();
        if removed {
            self.len -= 1;
            if slot.is_empty() {
                self.cells.remove(&key);
            }
        }
        removed
    }

    /// Visits every entry whose endpoint lies inside `range` (closed
    /// set). This is the range query the SinglePath strategy issues
    /// against the index (Alg. 2 lines 42 and 51).
    pub fn for_each_in(&self, range: &Rect, mut f: impl FnMut(&Entry)) {
        let lo = self.key_of(&range.lo());
        let hi = self.key_of(&range.hi());
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                let Some(slot) = self.cells.get(&(cx, cy)) else { continue };
                for entry in slot.values() {
                    if range.contains(&entry.endpoint) {
                        f(entry);
                    }
                }
            }
        }
    }

    /// Collects entries in `range` into a vector (convenience for tests).
    pub fn query(&self, range: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        self.for_each_in(range, |e| out.push(*e));
        out
    }

    /// Number of non-empty cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, x: f64, y: f64, kind: EndKind) -> Entry {
        Entry {
            endpoint: Point::new(x, y),
            path: PathId(id),
            other: Point::new(x + 100.0, y),
            kind,
        }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut g = EndpointGrid::new(10.0);
        g.insert(entry(1, 5.0, 5.0, EndKind::End));
        g.insert(entry(2, 15.0, 5.0, EndKind::End));
        g.insert(entry(1, 5.0, 5.0, EndKind::Start)); // same cell, other kind
        assert_eq!(g.len(), 3);

        let hits = g.query(&Rect::new(Point::new(0.0, 0.0), Point::new(9.0, 9.0)));
        assert_eq!(hits.len(), 2); // both kinds of path 1

        assert!(g.remove(&Point::new(5.0, 5.0), PathId(1), EndKind::End));
        assert!(!g.remove(&Point::new(5.0, 5.0), PathId(1), EndKind::End));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut g = EndpointGrid::new(7.0);
        let mut all = Vec::new();
        // A deterministic scatter of entries.
        for i in 0..200u64 {
            let x = ((i * 37) % 100) as f64 - 50.0;
            let y = ((i * 53) % 90) as f64 - 45.0;
            let e = entry(i, x, y, EndKind::End);
            g.insert(e);
            all.push(e);
        }
        let ranges = [
            Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0)),
            Rect::new(Point::new(-50.0, -45.0), Point::new(49.0, 44.0)),
            Rect::new(Point::new(30.0, 30.0), Point::new(31.0, 31.0)),
            Rect::point(Point::new(0.0, 0.0)),
        ];
        for r in ranges {
            let mut got: Vec<u64> = g.query(&r).iter().map(|e| e.path.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                all.iter().filter(|e| r.contains(&e.endpoint)).map(|e| e.path.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "range {r:?}");
        }
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let g = EndpointGrid::new(10.0);
        assert_eq!(g.key_of(&Point::new(-0.1, -0.1)), (-1, -1));
        assert_eq!(g.key_of(&Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.key_of(&Point::new(-10.0, 5.0)), (-1, 0));
        assert_eq!(g.key_of(&Point::new(-10.1, 5.0)), (-2, 0));
    }

    #[test]
    fn boundary_points_are_found() {
        let mut g = EndpointGrid::new(10.0);
        // Exactly on a cell boundary.
        g.insert(entry(9, 10.0, 10.0, EndKind::End));
        let r = Rect::new(Point::new(9.5, 9.5), Point::new(10.0, 10.0));
        assert_eq!(g.query(&r).len(), 1);
        let r2 = Rect::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert_eq!(g.query(&r2).len(), 1);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let mut g = EndpointGrid::new(10.0);
        g.insert(entry(1, 5.0, 5.0, EndKind::End));
        g.insert(entry(1, 5.0, 5.0, EndKind::End));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn empty_cells_are_pruned() {
        let mut g = EndpointGrid::new(10.0);
        g.insert(entry(1, 5.0, 5.0, EndKind::End));
        assert_eq!(g.occupied_cells(), 1);
        g.remove(&Point::new(5.0, 5.0), PathId(1), EndKind::End);
        assert_eq!(g.occupied_cells(), 0);
        assert!(g.is_empty());
    }
}
