//! The MotionPath index (Section 5.1): path storage plus the queries the
//! SinglePath strategy needs.
//!
//! * range query for *available motion paths*: paths starting at a given
//!   vertex whose end falls inside an FSA (Case 1);
//! * range query for *available vertices*: end vertices of stored paths
//!   inside an FSA, each with its converging paths (Case 2);
//! * exact-match adjacency (paths leaving a vertex) for the hinted
//!   feedback extension.
//!
//! Vertex identity is quantized to a configurable grain: vertices are
//! only ever minted by the coordinator, so equality is exact in practice
//! and the grain merely guards against float noise.

use super::grid::{EndKind, EndpointGrid, Entry};
use super::vertex_groups::VertexGroups;
use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};
use crate::motion_path::{MotionPath, PathId};

/// Quantized vertex key.
pub type VertexKey = (i64, i64);

/// Lexicographic `(x, y)` order on raw points (total, NaN-safe).
#[inline]
pub fn point_lt(a: &Point, b: &Point) -> bool {
    a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)).is_lt()
}

/// The coordinator's path store.
///
/// Paths live in a contiguous slab (`repr(C)` [`MotionPath`] records)
/// so a checkpoint serializes the section with one memcpy; the grid,
/// adjacency lists, and id->slot map are derived structures rebuilt on
/// restore.
#[derive(Clone, Debug)]
pub struct MotionPathIndex {
    grid: EndpointGrid,
    /// Contiguous path records; order is maintenance order (inserts
    /// append, removals `swap_remove`) and is checkpointed verbatim.
    paths: Vec<MotionPath>,
    /// Path id -> slot in `paths`.
    slot_of: FxHashMap<PathId, u32>,
    /// Outgoing adjacency: start vertex -> paths leaving it.
    out_adj: FxHashMap<VertexKey, Vec<PathId>>,
    /// Incoming adjacency: end vertex -> paths converging to it.
    in_adj: FxHashMap<VertexKey, Vec<PathId>>,
    vertex_grain: f64,
    next_id: u64,
}

impl MotionPathIndex {
    /// Creates an empty index with the given grid cell side and vertex
    /// quantization grain (meters).
    pub fn new(grid_cell: f64, vertex_grain: f64) -> Self {
        assert!(vertex_grain > 0.0, "vertex grain must be positive");
        MotionPathIndex {
            grid: EndpointGrid::new(grid_cell),
            paths: Vec::new(),
            slot_of: FxHashMap::default(),
            out_adj: FxHashMap::default(),
            in_adj: FxHashMap::default(),
            vertex_grain,
            next_id: 0,
        }
    }

    /// Number of stored motion paths (the paper's *index size* metric).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no paths are stored.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Quantized identity key of a vertex.
    #[inline]
    pub fn vertex_key(&self, p: &Point) -> VertexKey {
        p.quantize(self.vertex_grain)
    }

    /// Looks up a path by id.
    pub fn get(&self, id: PathId) -> Option<&MotionPath> {
        self.slot_of.get(&id).map(|&s| &self.paths[s as usize])
    }

    /// Iterates over all stored paths (slab order).
    pub fn iter(&self) -> impl Iterator<Item = &MotionPath> {
        self.paths.iter()
    }

    /// Inserts a new path `start -> end` and returns its id. If an
    /// identical path (same quantized endpoints, same direction) already
    /// exists, returns the existing id instead — crossings of an
    /// identical geometry belong to one path, not duplicates.
    pub fn insert(&mut self, start: Point, end: Point) -> (PathId, bool) {
        let mut next = self.next_id;
        let out = self.insert_with(start, end, &mut next);
        self.next_id = next;
        out
    }

    /// [`MotionPathIndex::insert`] drawing fresh ids from an external
    /// counter instead of the index's own. The sharded coordinator keeps
    /// one global counter across its per-shard indexes so path ids stay
    /// globally unique — and identical to the sequential coordinator's
    /// allocation, since all insertions happen in the (sequential)
    /// Phase B in batch order. `next` is advanced only when a path is
    /// actually created.
    pub fn insert_with(&mut self, start: Point, end: Point, next: &mut u64) -> (PathId, bool) {
        let skey = self.vertex_key(&start);
        let ekey = self.vertex_key(&end);
        if let Some(existing) = self.find_exact(skey, ekey) {
            return (existing, false);
        }
        let id = PathId(*next);
        *next += 1;
        let path = MotionPath::new(id, start, end);
        self.grid.insert(Entry { endpoint: start, path: id, other: end, kind: EndKind::Start });
        self.grid.insert(Entry { endpoint: end, path: id, other: start, kind: EndKind::End });
        self.out_adj.entry(skey).or_default().push(id);
        self.in_adj.entry(ekey).or_default().push(id);
        self.slot_of.insert(id, self.paths.len() as u32);
        self.paths.push(path);
        (id, true)
    }

    /// Finds a stored path with the given quantized endpoints.
    fn find_exact(&self, skey: VertexKey, ekey: VertexKey) -> Option<PathId> {
        let outs = self.out_adj.get(&skey)?;
        outs.iter()
            .copied()
            .find(|&id| self.vertex_key(&self.paths[self.slot_of[&id] as usize].end()) == ekey)
    }

    /// Removes a path (when its hotness expires to zero, Section 5.2).
    pub fn remove(&mut self, id: PathId) -> bool {
        let Some(slot) = self.slot_of.remove(&id) else { return false };
        let path = self.paths.swap_remove(slot as usize);
        if let Some(moved) = self.paths.get(slot as usize) {
            self.slot_of.insert(moved.id, slot);
        }
        let start = path.start();
        let end = path.end();
        self.grid.remove(&start, id, EndKind::Start);
        self.grid.remove(&end, id, EndKind::End);
        let skey = self.vertex_key(&start);
        let ekey = self.vertex_key(&end);
        if let Some(v) = self.out_adj.get_mut(&skey) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.out_adj.remove(&skey);
            }
        }
        if let Some(v) = self.in_adj.get_mut(&ekey) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.in_adj.remove(&ekey);
            }
        }
        true
    }

    /// Case-1 query (Alg. 2 GetCandidatePaths): paths starting at the
    /// vertex of `start` whose end vertex lies inside `fsa`.
    pub fn paths_from_into(&self, start: &Point, fsa: &Rect) -> Vec<PathId> {
        let mut out = Vec::new();
        self.paths_from_into_buf(start, fsa, &mut out);
        out
    }

    /// [`MotionPathIndex::paths_from_into`] appending into a caller
    /// buffer — the allocation-free form the epoch hot loop uses (the
    /// buffer lives in the shard's scratch arena and is reused across
    /// states and epochs).
    pub fn paths_from_into_buf(&self, start: &Point, fsa: &Rect, out: &mut Vec<PathId>) {
        let skey = self.vertex_key(start);
        self.grid.for_each_in(fsa, |entry| {
            if entry.kind == EndKind::End && self.vertex_key(&entry.other) == skey {
                out.push(entry.path);
            }
        });
    }

    /// Visits every *end*-vertex grid entry inside `fsa` (the raw form
    /// of the Case-2 query; [`MotionPathIndex::end_vertices_into`] and
    /// the sharded coordinator's merged store group these into vertex
    /// groups without intermediate allocation).
    pub fn for_each_end_in(&self, fsa: &Rect, mut f: impl FnMut(&Entry)) {
        self.grid.for_each_in(fsa, |entry| {
            if entry.kind == EndKind::End {
                f(entry);
            }
        });
    }

    /// Case-2 query (Alg. 2 GetCandidateVertices): distinct end vertices
    /// inside `fsa`, each with the ids of the paths converging to it.
    ///
    /// When float-noisy copies of one vertex (same quantized key,
    /// different raw coordinates) converge, the group's representative
    /// point is the lexicographically smallest raw endpoint — canonical,
    /// so the answer is independent of hash-iteration order and of how
    /// the group is split across coordinator shards.
    pub fn end_vertices_in(&self, fsa: &Rect) -> Vec<(Point, Vec<PathId>)> {
        let mut groups = VertexGroups::new();
        self.end_vertices_into(fsa, &mut groups);
        groups.to_vec()
    }

    /// [`MotionPathIndex::end_vertices_in`] writing into a reusable
    /// [`VertexGroups`] accumulator (cleared here) instead of
    /// materializing a fresh vector of vectors per call.
    pub fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups) {
        out.clear();
        self.for_each_end_in(fsa, |entry| {
            out.push(self.vertex_key(&entry.endpoint), entry.endpoint, entry.path);
        });
        out.finish();
    }

    /// Paths leaving the vertex of `p` (hinted-extension adjacency).
    pub fn paths_starting_at(&self, p: &Point) -> &[PathId] {
        self.out_adj.get(&self.vertex_key(p)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Paths converging to the vertex of `p`.
    pub fn paths_ending_at(&self, p: &Point) -> &[PathId] {
        self.in_adj.get(&self.vertex_key(p)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Internal-consistency audit used by tests and debug assertions:
    /// grid entries, adjacency lists, and the path table must agree.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.grid.len() != 2 * self.paths.len() {
            return Err(format!(
                "grid has {} entries for {} paths",
                self.grid.len(),
                self.paths.len()
            ));
        }
        if self.slot_of.len() != self.paths.len() {
            return Err(format!(
                "slot map has {} entries for {} slab records",
                self.slot_of.len(),
                self.paths.len()
            ));
        }
        for (slot, p) in self.paths.iter().enumerate() {
            if self.slot_of.get(&p.id) != Some(&(slot as u32)) {
                return Err(format!("slot map lost {} (slab slot {slot})", p.id));
            }
        }
        let out_total: usize = self.out_adj.values().map(Vec::len).sum();
        let in_total: usize = self.in_adj.values().map(Vec::len).sum();
        if out_total != self.paths.len() || in_total != self.paths.len() {
            return Err(format!(
                "adjacency sizes out={out_total} in={in_total} vs {} paths",
                self.paths.len()
            ));
        }
        for (key, ids) in &self.out_adj {
            for id in ids {
                let p = self.get(*id).ok_or(format!("dangling out id {id}"))?;
                if self.vertex_key(&p.start()) != *key {
                    return Err(format!("out-adjacency key mismatch for {id}"));
                }
            }
        }
        Ok(())
    }

    // ---- checkpoint surface -------------------------------------------

    /// The contiguous path slab (checkpoint section source; slab order is
    /// state and must be restored verbatim).
    pub fn paths_slice(&self) -> &[MotionPath] {
        &self.paths
    }

    /// The index's internal id counter (zero when ids come from an
    /// external counter, as in the coordinator).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Rebuilds an index from a checkpointed path slab: the slab is
    /// adopted verbatim; the grid, adjacency lists, and slot map are
    /// derived from it.
    ///
    /// # Errors
    /// Returns a description when the slab is structurally invalid
    /// (duplicate or out-of-counter ids, non-finite endpoints) — possible
    /// only for a checkpoint written by a buggy or hostile producer,
    /// since CRC validation happens before this runs.
    pub fn from_checkpoint_parts(
        grid_cell: f64,
        vertex_grain: f64,
        paths: Vec<MotionPath>,
        next_id: u64,
    ) -> Result<Self, String> {
        let mut idx = MotionPathIndex::new(grid_cell, vertex_grain);
        idx.paths.reserve(paths.len());
        for (slot, path) in paths.iter().enumerate() {
            if !path.start().is_finite() || !path.end().is_finite() {
                return Err(format!("path {} has non-finite endpoints", path.id));
            }
            if idx.slot_of.insert(path.id, slot as u32).is_some() {
                return Err(format!("duplicate path slab entry for {}", path.id));
            }
            let (start, end) = (path.start(), path.end());
            let id = path.id;
            idx.grid.insert(Entry { endpoint: start, path: id, other: end, kind: EndKind::Start });
            idx.grid.insert(Entry { endpoint: end, path: id, other: start, kind: EndKind::End });
            idx.out_adj.entry(idx.vertex_key(&start)).or_default().push(id);
            idx.in_adj.entry(idx.vertex_key(&end)).or_default().push(id);
        }
        idx.paths = paths;
        idx.next_id = next_id;
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> MotionPathIndex {
        MotionPathIndex::new(50.0, 1e-3)
    }

    #[test]
    fn insert_assigns_fresh_ids_and_dedups() {
        let mut i = idx();
        let (a, created_a) = i.insert(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let (b, created_b) = i.insert(Point::new(0.0, 0.0), Point::new(0.0, 10.0));
        assert!(created_a && created_b);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        // Identical geometry dedups.
        let (c, created_c) = i.insert(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(c, a);
        assert!(!created_c);
        assert_eq!(i.len(), 2);
        // Reversed direction is a different path.
        let (d, created_d) = i.insert(Point::new(10.0, 0.0), Point::new(0.0, 0.0));
        assert!(created_d);
        assert_ne!(d, a);
        i.check_consistency().unwrap();
    }

    #[test]
    fn case1_query_filters_by_start_vertex() {
        let mut i = idx();
        let s = Point::new(0.0, 0.0);
        let (a, _) = i.insert(s, Point::new(20.0, 0.0));
        let (_b, _) = i.insert(Point::new(5.0, 5.0), Point::new(21.0, 1.0)); // other start
        let (_c, _) = i.insert(s, Point::new(200.0, 0.0)); // ends outside fsa

        let fsa = Rect::new(Point::new(15.0, -5.0), Point::new(25.0, 5.0));
        let hits = i.paths_from_into(&s, &fsa);
        assert_eq!(hits, vec![a]);
    }

    #[test]
    fn case2_query_groups_converging_paths() {
        let mut i = idx();
        let v = Point::new(50.0, 50.0);
        let (a, _) = i.insert(Point::new(0.0, 0.0), v);
        let (b, _) = i.insert(Point::new(100.0, 0.0), v);
        let (_far, _) = i.insert(Point::new(0.0, 0.0), Point::new(500.0, 500.0));

        let fsa = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0));
        let verts = i.end_vertices_in(&fsa);
        assert_eq!(verts.len(), 1);
        let (p, ids) = &verts[0];
        assert_eq!(*p, v);
        let mut got = ids.clone();
        got.sort_unstable();
        let mut want = vec![a, b];
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn start_vertices_are_not_candidate_vertices() {
        let mut i = idx();
        // A path *starting* inside the FSA contributes no candidate
        // vertex (the paper only considers end vertices).
        i.insert(Point::new(50.0, 50.0), Point::new(500.0, 0.0));
        let fsa = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0));
        assert!(i.end_vertices_in(&fsa).is_empty());
    }

    #[test]
    fn remove_cleans_everything() {
        let mut i = idx();
        let s = Point::new(0.0, 0.0);
        let e = Point::new(30.0, 0.0);
        let (id, _) = i.insert(s, e);
        assert!(i.remove(id));
        assert!(!i.remove(id));
        assert_eq!(i.len(), 0);
        assert!(i.paths_starting_at(&s).is_empty());
        assert!(i.paths_ending_at(&e).is_empty());
        let everywhere = Rect::new(Point::new(-1e6, -1e6), Point::new(1e6, 1e6));
        assert!(i.end_vertices_in(&everywhere).is_empty());
        i.check_consistency().unwrap();
    }

    #[test]
    fn adjacency_lookups() {
        let mut i = idx();
        let v = Point::new(10.0, 10.0);
        let (a, _) = i.insert(v, Point::new(50.0, 10.0));
        let (b, _) = i.insert(v, Point::new(10.0, 60.0));
        let (c, _) = i.insert(Point::new(-40.0, 10.0), v);
        let mut outs = i.paths_starting_at(&v).to_vec();
        outs.sort_unstable();
        assert_eq!(outs, vec![a, b]);
        assert_eq!(i.paths_ending_at(&v), &[c]);
        // Quantized identity: a float-noisy copy of v matches.
        let noisy = Point::new(10.0 + 1e-5, 10.0 - 1e-5);
        assert_eq!(i.paths_starting_at(&noisy).len(), 2);
    }

    #[test]
    fn noisy_vertex_group_representative_is_canonical() {
        // Two paths end at float-noisy copies of one vertex (same
        // quantized key): the group's representative must be the
        // lexicographically smallest raw point regardless of insertion
        // order — this is what keeps sharded Phase B identical to
        // sequential when such a group spans shards.
        let lo = Point::new(50.0, 50.0);
        let hi = Point::new(50.0 + 2e-4, 50.0);
        let fsa = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0));
        for (first, second) in [(lo, hi), (hi, lo)] {
            let mut i = idx();
            i.insert(Point::new(0.0, 0.0), first);
            i.insert(Point::new(100.0, 0.0), second);
            let verts = i.end_vertices_in(&fsa);
            assert_eq!(verts.len(), 1, "noisy copies must share a group");
            assert_eq!(verts[0].0, lo, "representative not canonical");
            assert_eq!(verts[0].1.len(), 2);
        }
    }

    #[test]
    fn vertex_ordering_is_deterministic() {
        let mut i = idx();
        i.insert(Point::new(0.0, 0.0), Point::new(5.0, 1.0));
        i.insert(Point::new(0.0, 0.0), Point::new(3.0, 2.0));
        i.insert(Point::new(0.0, 0.0), Point::new(3.0, 1.0));
        let fsa = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let verts = i.end_vertices_in(&fsa);
        let xs: Vec<(f64, f64)> = verts.iter().map(|(p, _)| (p.x, p.y)).collect();
        assert_eq!(xs, vec![(3.0, 1.0), (3.0, 2.0), (5.0, 1.0)]);
    }
}
