//! A hand-rolled R-tree over points, used as an *ablation* against the
//! paper's grid index (Section 5.1 picks a "lightweight grid-based
//! index"; this quantifies what that choice trades away or gains).
//!
//! Quadratic-split insertion (Guttman), straightforward deletion with
//! reinsertion of underfull leaves, and rectangle range queries. Entries
//! are `(Point, V)` pairs; the tree owns no geometry beyond bounding
//! boxes, matching what the MotionPath index needs.

use crate::geometry::{Point, Rect};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 4; // MAX / 4, per Guttman's guidance

/// A point R-tree with payloads `V`.
#[derive(Clone, Debug)]
pub struct RTree<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Clone, Debug)]
enum Node<V> {
    Leaf { mbr: Rect, entries: Vec<(Point, V)> },
    Inner { mbr: Rect, children: Vec<Node<V>> },
}

impl<V> Node<V> {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }

    fn is_empty_leaf(&self) -> bool {
        matches!(self, Node::Leaf { entries, .. } if entries.is_empty())
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                let mut it = entries.iter();
                if let Some((p, _)) = it.next() {
                    let mut r = Rect::point(*p);
                    for (p, _) in it {
                        r = r.union(&Rect::point(*p));
                    }
                    *mbr = r;
                }
            }
            Node::Inner { mbr, children } => {
                let mut it = children.iter();
                if let Some(c) = it.next() {
                    let mut r = c.mbr();
                    for c in it {
                        r = r.union(&c.mbr());
                    }
                    *mbr = r;
                }
            }
        }
    }
}

impl<V: Clone + PartialEq> RTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: Node::Leaf { mbr: Rect::point(Point::ORIGIN), entries: Vec::new() }, len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry at `p`.
    pub fn insert(&mut self, p: Point, value: V) {
        if let Some((a, b)) = Self::insert_into(&mut self.root, p, value) {
            // Root split: grow the tree by one level.
            let mbr = a.mbr().union(&b.mbr());
            let old = std::mem::replace(&mut self.root, Node::Inner { mbr, children: vec![a, b] });
            // `old` was replaced by the split results already; drop it.
            drop(old);
        }
        self.len += 1;
    }

    /// Inserts into a subtree; returns `Some((left, right))` when the
    /// node split (the caller replaces the node with both halves).
    fn insert_into(node: &mut Node<V>, p: Point, value: V) -> Option<(Node<V>, Node<V>)> {
        match node {
            Node::Leaf { mbr, entries } => {
                if entries.is_empty() {
                    *mbr = Rect::point(p);
                } else {
                    *mbr = mbr.union(&Rect::point(p));
                }
                entries.push((p, value));
                if entries.len() <= MAX_ENTRIES {
                    return None;
                }
                Some(Self::split_leaf(std::mem::take(entries)))
            }
            Node::Inner { mbr, children } => {
                *mbr = mbr.union(&Rect::point(p));
                // Choose the child needing least enlargement (ties:
                // smaller area).
                let best = (0..children.len())
                    .min_by(|&i, &j| {
                        let key = |k: usize| {
                            let r = children[k].mbr();
                            let grown = r.union(&Rect::point(p));
                            (grown.area() - r.area(), r.area())
                        };
                        let (ei, ai) = key(i);
                        let (ej, aj) = key(j);
                        ei.total_cmp(&ej).then(ai.total_cmp(&aj))
                    })
                    .expect("inner node has children");
                if let Some((a, b)) = Self::insert_into(&mut children[best], p, value) {
                    children.swap_remove(best);
                    children.push(a);
                    children.push(b);
                    if children.len() > MAX_ENTRIES {
                        return Some(Self::split_inner(std::mem::take(children)));
                    }
                }
                None
            }
        }
    }

    /// Guttman quadratic split for leaf entries.
    fn split_leaf(entries: Vec<(Point, V)>) -> (Node<V>, Node<V>) {
        let rects: Vec<Rect> = entries.iter().map(|(p, _)| Rect::point(*p)).collect();
        let (ia, ib) = Self::pick_seeds(&rects);
        let mut ga: Vec<(Point, V)> = Vec::new();
        let mut gb: Vec<(Point, V)> = Vec::new();
        let mut ra = rects[ia];
        let mut rb = rects[ib];
        for (i, e) in entries.into_iter().enumerate() {
            if i == ia {
                ga.push(e);
            } else if i == ib {
                gb.push(e);
            } else {
                let r = Rect::point(e.0);
                if Self::assign_to_a(&ra, &rb, &r, ga.len(), gb.len()) {
                    ra = ra.union(&r);
                    ga.push(e);
                } else {
                    rb = rb.union(&r);
                    gb.push(e);
                }
            }
        }
        let mut a = Node::Leaf { mbr: ra, entries: ga };
        let mut b = Node::Leaf { mbr: rb, entries: gb };
        a.recompute_mbr();
        b.recompute_mbr();
        (a, b)
    }

    /// Quadratic split for inner children.
    fn split_inner(children: Vec<Node<V>>) -> (Node<V>, Node<V>) {
        let rects: Vec<Rect> = children.iter().map(Node::mbr).collect();
        let (ia, ib) = Self::pick_seeds(&rects);
        let mut ga: Vec<Node<V>> = Vec::new();
        let mut gb: Vec<Node<V>> = Vec::new();
        let mut ra = rects[ia];
        let mut rb = rects[ib];
        for (i, c) in children.into_iter().enumerate() {
            if i == ia {
                ga.push(c);
            } else if i == ib {
                gb.push(c);
            } else {
                let r = c.mbr();
                if Self::assign_to_a(&ra, &rb, &r, ga.len(), gb.len()) {
                    ra = ra.union(&r);
                    ga.push(c);
                } else {
                    rb = rb.union(&r);
                    gb.push(c);
                }
            }
        }
        let mut a = Node::Inner { mbr: ra, children: ga };
        let mut b = Node::Inner { mbr: rb, children: gb };
        a.recompute_mbr();
        b.recompute_mbr();
        (a, b)
    }

    /// Seed pair with the most wasted space when joined.
    fn pick_seeds(rects: &[Rect]) -> (usize, usize) {
        let mut best = (0, 1);
        let mut worst_waste = f64::NEG_INFINITY;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if waste > worst_waste {
                    worst_waste = waste;
                    best = (i, j);
                }
            }
        }
        best
    }

    /// Group assignment: least enlargement, with a minimum-fill guard.
    fn assign_to_a(ra: &Rect, rb: &Rect, r: &Rect, na: usize, nb: usize) -> bool {
        // Force balance if one group risks underfill.
        if na + MIN_ENTRIES >= MAX_ENTRIES && nb < MIN_ENTRIES {
            return false;
        }
        if nb + MIN_ENTRIES >= MAX_ENTRIES && na < MIN_ENTRIES {
            return true;
        }
        let ea = ra.union(r).area() - ra.area();
        let eb = rb.union(r).area() - rb.area();
        ea <= eb
    }

    /// Visits every entry whose point lies inside `range`.
    pub fn for_each_in(&self, range: &Rect, mut f: impl FnMut(&Point, &V)) {
        Self::query_node(&self.root, range, &mut f);
    }

    fn query_node(node: &Node<V>, range: &Rect, f: &mut impl FnMut(&Point, &V)) {
        match node {
            Node::Leaf { mbr, entries } => {
                if !entries.is_empty() && range.intersects(mbr) {
                    for (p, v) in entries {
                        if range.contains(p) {
                            f(p, v);
                        }
                    }
                }
            }
            Node::Inner { mbr, children } => {
                if range.intersects(mbr) {
                    for c in children {
                        Self::query_node(c, range, f);
                    }
                }
            }
        }
    }

    /// Collects matches (convenience).
    pub fn query(&self, range: &Rect) -> Vec<(Point, V)> {
        let mut out = Vec::new();
        self.for_each_in(range, |p, v| out.push((*p, v.clone())));
        out
    }

    /// Removes the entry at `p` with the given value; returns whether it
    /// existed. Underfull leaves are dissolved and their survivors
    /// reinserted (Guttman's condensation, simplified).
    pub fn remove(&mut self, p: Point, value: &V) -> bool {
        let mut orphans: Vec<(Point, V)> = Vec::new();
        let removed = Self::remove_from(&mut self.root, p, value, &mut orphans);
        if removed {
            self.len -= 1;
            // Collapse a root with a single inner child.
            loop {
                let replace = match &mut self.root {
                    Node::Inner { children, .. } if children.len() == 1 => {
                        Some(children.pop().expect("one child"))
                    }
                    _ => None,
                };
                match replace {
                    Some(child) => self.root = child,
                    None => break,
                }
            }
            let reinserts = orphans.len();
            for (p, v) in orphans {
                if let Some((a, b)) = Self::insert_into(&mut self.root, p, v) {
                    let mbr = a.mbr().union(&b.mbr());
                    self.root = Node::Inner { mbr, children: vec![a, b] };
                }
            }
            let _ = reinserts;
        }
        removed
    }

    fn remove_from(node: &mut Node<V>, p: Point, value: &V, orphans: &mut Vec<(Point, V)>) -> bool {
        match node {
            Node::Leaf { entries, .. } => {
                let Some(pos) = entries.iter().position(|(q, v)| *q == p && v == value) else {
                    return false;
                };
                entries.swap_remove(pos);
                node.recompute_mbr();
                true
            }
            Node::Inner { children, .. } => {
                let mut removed = false;
                for c in children.iter_mut() {
                    if c.mbr().contains(&p) && Self::remove_from(c, p, value, orphans) {
                        removed = true;
                        break;
                    }
                }
                if removed {
                    // Dissolve underfull or empty leaf children.
                    let mut i = 0;
                    while i < children.len() {
                        let dissolve = match &children[i] {
                            Node::Leaf { entries, .. } => {
                                entries.is_empty()
                                    || (children.len() > 1 && entries.len() < MIN_ENTRIES)
                            }
                            Node::Inner { children: cc, .. } => cc.is_empty(),
                        };
                        if dissolve {
                            if let Node::Leaf { entries, .. } = children.swap_remove(i) {
                                orphans.extend(entries);
                            }
                        } else {
                            i += 1;
                        }
                    }
                    node.recompute_mbr();
                }
                removed
            }
        }
    }

    /// Tree height (diagnostics).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner { children, .. } = node {
            h += 1;
            node = children.first().expect("inner nodes are non-empty");
        }
        h
    }

    /// Structural audit: MBRs contain their subtrees; entry count
    /// matches `len`; no inner node is empty.
    pub fn check_consistency(&self) -> Result<(), String> {
        fn walk<V>(node: &Node<V>, count: &mut usize) -> Result<Rect, String> {
            match node {
                Node::Leaf { mbr, entries } => {
                    for (p, _) in entries {
                        if !mbr.contains(p) {
                            return Err(format!("leaf MBR {mbr:?} misses point {p:?}"));
                        }
                    }
                    *count += entries.len();
                    Ok(*mbr)
                }
                Node::Inner { mbr, children } => {
                    if children.is_empty() {
                        return Err("empty inner node".into());
                    }
                    for c in children {
                        let cm = walk(c, count)?;
                        if !mbr.contains_rect(&cm) {
                            return Err(format!("inner MBR {mbr:?} misses child {cm:?}"));
                        }
                    }
                    Ok(*mbr)
                }
            }
        }
        let mut count = 0;
        if !self.root.is_empty_leaf() {
            walk(&self.root, &mut count)?;
        }
        if count != self.len {
            return Err(format!("len {} but {} entries found", self.len, count));
        }
        Ok(())
    }
}

impl<V: Clone + PartialEq> Default for RTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Point, u64)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 1000) as f64;
                let y = ((i * 61) % 1000) as f64;
                (Point::new(x, y), i as u64)
            })
            .collect()
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let mut t = RTree::new();
        for (p, v) in grid_points(500) {
            t.insert(p, v);
        }
        assert_eq!(t.len(), 500);
        t.check_consistency().unwrap();

        let range = Rect::new(Point::new(100.0, 100.0), Point::new(400.0, 400.0));
        let mut got: Vec<u64> = t.query(&range).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = grid_points(500)
            .into_iter()
            .filter(|(p, _)| range.contains(p))
            .map(|(_, v)| v)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_different_values_coexist() {
        let mut t = RTree::new();
        let p = Point::new(5.0, 5.0);
        t.insert(p, 1u64);
        t.insert(p, 2u64);
        assert_eq!(t.len(), 2);
        let got = t.query(&Rect::tolerance_square(p, 0.1));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn remove_specific_value() {
        let mut t = RTree::new();
        let p = Point::new(5.0, 5.0);
        t.insert(p, 1u64);
        t.insert(p, 2u64);
        assert!(t.remove(p, &1));
        assert!(!t.remove(p, &1));
        assert_eq!(t.len(), 1);
        let got = t.query(&Rect::tolerance_square(p, 0.1));
        assert_eq!(got, vec![(p, 2)]);
        t.check_consistency().unwrap();
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut t = RTree::new();
        let pts = grid_points(200);
        for (p, v) in &pts {
            t.insert(*p, *v);
        }
        for (p, v) in &pts {
            assert!(t.remove(*p, v), "missing {v}");
            t.check_consistency().unwrap();
        }
        assert!(t.is_empty());
        // Tree is reusable after draining.
        t.insert(Point::new(1.0, 2.0), 99);
        assert_eq!(t.query(&Rect::tolerance_square(Point::new(1.0, 2.0), 1.0)).len(), 1);
    }

    #[test]
    fn tree_height_stays_logarithmic() {
        let mut t = RTree::new();
        for (p, v) in grid_points(5_000) {
            t.insert(p, v);
        }
        // 5_000 entries at fanout >= 4 must fit well under height 8.
        assert!(t.height() <= 8, "height {}", t.height());
        t.check_consistency().unwrap();
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let t: RTree<u64> = RTree::new();
        assert!(t.is_empty());
        assert!(t.query(&Rect::new(Point::new(-1e9, -1e9), Point::new(1e9, 1e9))).is_empty());
        t.check_consistency().unwrap();
    }

    #[test]
    fn clustered_inserts_stay_consistent() {
        // Adversarial: everything on one line, then a burst far away.
        let mut t = RTree::new();
        for i in 0..300u64 {
            t.insert(Point::new(i as f64, 0.0), i);
        }
        for i in 0..300u64 {
            t.insert(Point::new(1e6 + i as f64, 1e6), 1000 + i);
        }
        t.check_consistency().unwrap();
        let near = t.query(&Rect::new(Point::new(-1.0, -1.0), Point::new(301.0, 1.0)));
        assert_eq!(near.len(), 300);
        let far = t.query(&Rect::new(
            Point::new(1e6 - 1.0, 1e6 - 1.0),
            Point::new(1e6 + 301.0, 1e6 + 1.0),
        ));
        assert_eq!(far.len(), 300);
    }

    #[test]
    fn query_matches_linear_scan_randomized() {
        let mut state = 7u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 10_000) as f64 / 10.0
        };
        let pts: Vec<(Point, u64)> = (0..1_000).map(|i| (Point::new(rand(), rand()), i)).collect();
        let mut t = RTree::new();
        for (p, v) in &pts {
            t.insert(*p, *v);
        }
        for _ in 0..20 {
            let a = Point::new(rand(), rand());
            let b = Point::new(rand(), rand());
            let range = Rect::from_corners(a, b);
            let mut got: Vec<u64> = t.query(&range).into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                pts.iter().filter(|(p, _)| range.contains(p)).map(|(_, v)| *v).collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }
}
