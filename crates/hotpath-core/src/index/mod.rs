//! The grid-based MotionPath index of Section 5.1.

mod grid;
mod motion_path_index;
mod rtree;
mod vertex_groups;

pub use grid::{CellKey, EndKind, EndpointGrid, Entry};
pub use motion_path_index::{point_lt, MotionPathIndex, VertexKey};
pub use rtree::RTree;
pub use vertex_groups::VertexGroups;
