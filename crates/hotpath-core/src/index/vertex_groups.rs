//! Reusable vertex-group accumulator for the Case-2 query.
//!
//! `end_vertices_in` used to materialize a fresh
//! `Vec<(Point, Vec<PathId>)>` (plus a grouping hash map) on every call
//! — once per deferred state per epoch. [`VertexGroups`] keeps those
//! allocations alive across calls: the grouping map, the per-group id
//! vectors, and the sorted iteration order are all capacity-retaining
//! pools, so steady-state epochs regroup vertices without touching the
//! heap.

use super::motion_path_index::{point_lt, VertexKey};
use crate::fxhash::FxHashMap;
use crate::geometry::Point;
use crate::motion_path::PathId;

/// A reusable accumulator of end-vertex groups: distinct vertices (by
/// quantized key) with the paths converging to each.
#[derive(Clone, Debug, Default)]
pub struct VertexGroups {
    /// Quantized key -> slot position for the current batch.
    by_key: FxHashMap<VertexKey, u32>,
    /// Slot pool; only the first `len` slots are live. Inner vectors
    /// keep their capacity when a batch is cleared.
    slots: Vec<(Point, Vec<PathId>)>,
    /// Live slot count for the current batch.
    len: usize,
    /// Iteration order over live slots, established by [`Self::finish`].
    order: Vec<u32>,
}

impl VertexGroups {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of groups in the current batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the current batch has no groups.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Starts a new batch, retaining every allocation.
    pub fn clear(&mut self) {
        self.by_key.clear();
        self.order.clear();
        self.len = 0;
    }

    /// Adds one `(vertex, path)` observation. Observations sharing a
    /// quantized key join one group whose representative point is the
    /// lexicographically smallest raw endpoint seen — the canonical
    /// choice that keeps answers independent of visit order (and of how
    /// a float-noisy vertex group is split across coordinator shards).
    pub fn push(&mut self, key: VertexKey, point: Point, id: PathId) {
        let slot = match self.by_key.get(&key) {
            Some(&s) => {
                let slot = &mut self.slots[s as usize];
                if point_lt(&point, &slot.0) {
                    slot.0 = point;
                }
                slot
            }
            None => {
                let s = self.len;
                self.by_key.insert(key, s as u32);
                self.len += 1;
                if s == self.slots.len() {
                    self.slots.push((point, Vec::new()));
                } else {
                    let slot = &mut self.slots[s];
                    slot.0 = point;
                    slot.1.clear();
                }
                &mut self.slots[s]
            }
        };
        slot.1.push(id);
    }

    /// Canonicalizes the batch: groups ordered by representative point
    /// `(x, y)`, ids ascending within each group. Call once after the
    /// last [`Self::push`]; [`Self::iter`] then yields the same sequence
    /// the old allocating query returned.
    pub fn finish(&mut self) {
        self.order.extend(0..self.len as u32);
        let slots = &mut self.slots[..self.len];
        self.order.sort_by(|&a, &b| {
            let (pa, pb) = (&slots[a as usize].0, &slots[b as usize].0);
            pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y))
        });
        for (_, ids) in slots.iter_mut() {
            ids.sort_unstable();
        }
    }

    /// Iterates the finished batch in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Point, &[PathId])> {
        self.order.iter().map(|&s| {
            let (p, ids) = &self.slots[s as usize];
            (p, ids.as_slice())
        })
    }

    /// Copies the finished batch out (convenience for tests and the
    /// allocating compatibility wrappers).
    pub fn to_vec(&self) -> Vec<(Point, Vec<PathId>)> {
        self.iter().map(|(p, ids)| (*p, ids.to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_sort_and_canonicalize() {
        let mut g = VertexGroups::new();
        g.push((1, 0), Point::new(10.0, 0.0), PathId(5));
        g.push((0, 0), Point::new(0.0, 0.0), PathId(3));
        g.push((1, 0), Point::new(10.0, 0.0), PathId(1));
        g.finish();
        assert_eq!(g.len(), 2);
        let got = g.to_vec();
        assert_eq!(got[0], (Point::new(0.0, 0.0), vec![PathId(3)]));
        assert_eq!(got[1], (Point::new(10.0, 0.0), vec![PathId(1), PathId(5)]));
    }

    #[test]
    fn representative_point_is_lexicographic_min() {
        for (first, second) in [
            (Point::new(5.0, 5.0), Point::new(5.0 + 1e-4, 5.0)),
            (Point::new(5.0 + 1e-4, 5.0), Point::new(5.0, 5.0)),
        ] {
            let mut g = VertexGroups::new();
            g.push((9, 9), first, PathId(0));
            g.push((9, 9), second, PathId(1));
            g.finish();
            assert_eq!(g.to_vec()[0].0, Point::new(5.0, 5.0));
        }
    }

    #[test]
    fn clear_reuses_slots_without_bleeding_state() {
        let mut g = VertexGroups::new();
        g.push((0, 0), Point::new(0.0, 0.0), PathId(0));
        g.push((0, 0), Point::new(0.0, 0.0), PathId(1));
        g.finish();
        assert_eq!(g.to_vec()[0].1.len(), 2);

        g.clear();
        assert!(g.is_empty());
        g.push((2, 2), Point::new(2.0, 2.0), PathId(9));
        g.finish();
        assert_eq!(g.to_vec(), vec![(Point::new(2.0, 2.0), vec![PathId(9)])]);
    }
}
