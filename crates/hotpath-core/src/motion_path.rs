//! Motion paths, their identifiers, and covering-set validation.
//!
//! A *motion path* (Section 3.1) is a directed segment `pa -> pb` paired
//! with a crossing interval `[ta, tb]`: an object crossing it is always
//! within tolerance `eps` of the constant-speed point
//! `p(lambda) = pa + lambda (pb - pa)` at `t(lambda) = ta + lambda (tb - ta)`.

use crate::geometry::{Point, Segment, Trajectory};
use crate::time::TimeInterval;
use std::fmt;

/// Dense identifier of a motion path stored at the coordinator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(transparent)]
pub struct PathId(pub u64);

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mp{}", self.0)
    }
}

/// A motion path: directed segment plus geometry helpers. Crossing
/// intervals vary per crossing and live in the hotness bookkeeping, not
/// here — the same path may fit multiple objects over different
/// intervals (Section 3.1).
///
/// `repr(C)`: a [`PathId`] then a [`Segment`], 40 bytes, no padding —
/// the checkpoint path section is a direct cast of these records.
#[derive(Clone, Copy, PartialEq, Debug)]
#[repr(C)]
pub struct MotionPath {
    /// Identifier within the coordinator's index.
    pub id: PathId,
    /// The directed segment `start -> end`.
    pub seg: Segment,
}

impl MotionPath {
    /// Creates a motion path.
    #[inline]
    pub fn new(id: PathId, start: Point, end: Point) -> Self {
        MotionPath { id, seg: Segment::new(start, end) }
    }

    /// Start vertex.
    #[inline]
    pub fn start(&self) -> Point {
        self.seg.a
    }

    /// End vertex.
    #[inline]
    pub fn end(&self) -> Point {
        self.seg.b
    }

    /// Euclidean length, the factor in the score metric.
    #[inline]
    pub fn length(&self) -> f64 {
        self.seg.length()
    }
}

/// One crossing of a motion path by some object during `interval`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Crossing {
    /// The crossed path.
    pub path: PathId,
    /// The interval `[ts, te]` of the crossing.
    pub interval: TimeInterval,
}

/// Verifies that a path/interval pair *fits* a trajectory within `eps`
/// (max-distance), checking every granule of the interval against the
/// constant-speed interpolation of both the path and the trajectory.
///
/// This is the ground-truth validator used by tests and the property
/// suites; the on-line algorithms never need it.
pub fn fits_trajectory(seg: &Segment, interval: TimeInterval, traj: &Trajectory, eps: f64) -> bool {
    let dur = interval.duration();
    if dur == 0 {
        return match traj.position_at(interval.start) {
            Some(p) => p.dist_linf(&seg.a) <= eps + 1e-9 && seg.is_degenerate(),
            None => false,
        };
    }
    let mut t = interval.start;
    while t <= interval.end {
        let lambda = t.fraction_of(interval.start, interval.end);
        let on_path = seg.point_at(lambda);
        match traj.position_at(t) {
            Some(p) if p.dist_linf(&on_path) <= eps + 1e-9 => {}
            _ => return false,
        }
        t += 1;
    }
    true
}

/// A covering motion path set for a single object (Section 3.1): a
/// sequence of (path, interval) pairs in which consecutive elements chain
/// — the end time of one is the start time of the next, and the end
/// vertex of one is the start vertex of the next.
#[derive(Clone, Debug, Default)]
pub struct CoveringChain {
    entries: Vec<(Segment, TimeInterval)>,
}

impl CoveringChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a path crossing; enforces the chaining invariants against
    /// the previous entry.
    ///
    /// # Errors
    /// Returns a description of the violated invariant.
    pub fn push(&mut self, seg: Segment, interval: TimeInterval) -> Result<(), String> {
        if let Some((prev_seg, prev_iv)) = self.entries.last() {
            if prev_iv.end != interval.start {
                return Err(format!(
                    "time gap: previous ends at {:?}, next starts at {:?}",
                    prev_iv.end, interval.start
                ));
            }
            if prev_seg.b != seg.a {
                return Err(format!(
                    "vertex gap: previous ends at {:?}, next starts at {:?}",
                    prev_seg.b, seg.a
                ));
            }
        }
        self.entries.push((seg, interval));
        Ok(())
    }

    /// Number of chained crossings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no crossing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The chained crossings in order.
    pub fn entries(&self) -> &[(Segment, TimeInterval)] {
        &self.entries
    }

    /// Validates the whole chain against a trajectory: every element must
    /// fit within `eps` and the chain must be connected. Returns the
    /// first violation, if any.
    pub fn validate(&self, traj: &Trajectory, eps: f64) -> Result<(), String> {
        for (i, (seg, iv)) in self.entries.iter().enumerate() {
            if !fits_trajectory(seg, *iv, traj, eps) {
                return Err(format!("chain element {i} does not fit within eps={eps}"));
            }
        }
        Ok(())
    }

    /// Total time covered by the chain.
    pub fn covered(&self) -> Option<TimeInterval> {
        match (self.entries.first(), self.entries.last()) {
            (Some((_, f)), Some((_, l))) => Some(TimeInterval::new(f.start, l.end)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TimePoint;
    use crate::time::Timestamp;

    fn straight_traj(n: u64) -> Trajectory {
        (0..=n).map(|i| TimePoint::new(Point::new(i as f64, 0.0), Timestamp(i))).collect()
    }

    #[test]
    fn path_accessors() {
        let mp = MotionPath::new(PathId(3), Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(mp.start(), Point::new(0.0, 0.0));
        assert_eq!(mp.end(), Point::new(3.0, 4.0));
        assert_eq!(mp.length(), 5.0);
        assert_eq!(format!("{}", mp.id), "mp3");
    }

    #[test]
    fn exact_path_fits() {
        let traj = straight_traj(10);
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let iv = TimeInterval::new(Timestamp(0), Timestamp(10));
        assert!(fits_trajectory(&seg, iv, &traj, 0.0));
    }

    #[test]
    fn offset_path_fits_within_eps_only() {
        let traj = straight_traj(10);
        // Path shifted up by 1.5 in y.
        let seg = Segment::new(Point::new(0.0, 1.5), Point::new(10.0, 1.5));
        let iv = TimeInterval::new(Timestamp(0), Timestamp(10));
        assert!(fits_trajectory(&seg, iv, &traj, 1.5));
        assert!(!fits_trajectory(&seg, iv, &traj, 1.4));
    }

    #[test]
    fn desynchronized_path_fails() {
        let traj = straight_traj(10);
        // Geometrically identical but crossed over half the time: the
        // synchronized positions drift apart by up to 5.
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let iv = TimeInterval::new(Timestamp(0), Timestamp(5));
        assert!(!fits_trajectory(&seg, iv, &traj, 1.0));
        assert!(fits_trajectory(&seg, iv, &traj, 5.0));
    }

    #[test]
    fn fit_outside_trajectory_span_fails() {
        let traj = straight_traj(5);
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let iv = TimeInterval::new(Timestamp(0), Timestamp(10));
        assert!(!fits_trajectory(&seg, iv, &traj, 100.0));
    }

    #[test]
    fn chain_accepts_connected_rejects_gaps() {
        let mut chain = CoveringChain::new();
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        let b = Segment::new(Point::new(5.0, 0.0), Point::new(10.0, 0.0));
        chain.push(a, TimeInterval::new(Timestamp(0), Timestamp(5))).unwrap();
        chain.push(b, TimeInterval::new(Timestamp(5), Timestamp(10))).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.covered(), Some(TimeInterval::new(Timestamp(0), Timestamp(10))));

        // Time gap.
        let c = Segment::new(Point::new(10.0, 0.0), Point::new(12.0, 0.0));
        let err = chain.push(c, TimeInterval::new(Timestamp(11), Timestamp(12))).unwrap_err();
        assert!(err.contains("time gap"), "{err}");

        // Vertex gap.
        let d = Segment::new(Point::new(99.0, 0.0), Point::new(100.0, 0.0));
        let err = chain.push(d, TimeInterval::new(Timestamp(10), Timestamp(12))).unwrap_err();
        assert!(err.contains("vertex gap"), "{err}");
    }

    #[test]
    fn chain_validates_against_trajectory() {
        let traj = straight_traj(10);
        let mut chain = CoveringChain::new();
        chain
            .push(
                Segment::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0)),
                TimeInterval::new(Timestamp(0), Timestamp(5)),
            )
            .unwrap();
        chain
            .push(
                Segment::new(Point::new(5.0, 0.0), Point::new(10.0, 0.0)),
                TimeInterval::new(Timestamp(5), Timestamp(10)),
            )
            .unwrap();
        assert!(chain.validate(&traj, 0.1).is_ok());

        let mut bad = CoveringChain::new();
        bad.push(
            Segment::new(Point::new(0.0, 9.0), Point::new(5.0, 9.0)),
            TimeInterval::new(Timestamp(0), Timestamp(5)),
        )
        .unwrap();
        assert!(bad.validate(&traj, 1.0).is_err());
    }
}
