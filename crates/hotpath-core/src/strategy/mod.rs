//! The SinglePath discovery strategy (Section 5.3) and its FSA-overlap
//! support machinery.

mod overlap;
mod pool;
mod singlepath;

pub use overlap::{FsaCache, FsaDelta, FsaSet, QueryScratch};
pub use pool::WorkerPool;
pub use singlepath::{
    build_fsa_set, phase_a, phase_b, phase_b_apply, phase_b_eval, process_batch, process_batch_in,
    process_batch_pooled, process_batch_prepared, process_batch_with, CaseKind, CaseTally,
    OverlapPolicy, PathReader, PathStore, PhaseAOutput, PhaseBEval, PhaseBLoad, ScratchArena,
    Selection, SingleReader, SingleStore,
};
