//! The SinglePath discovery strategy (Section 5.3) and its FSA-overlap
//! support machinery.

mod overlap;
mod singlepath;

pub use overlap::FsaSet;
pub use singlepath::{
    process_batch, process_batch_with, CaseKind, CaseTally, OverlapPolicy, Selection,
};
