//! The SinglePath discovery strategy (Section 5.3) and its FSA-overlap
//! support machinery.

mod overlap;
mod singlepath;

pub use overlap::{FsaCache, FsaDelta, FsaSet};
pub use singlepath::{
    build_fsa_set, phase_a, phase_b, process_batch, process_batch_in, process_batch_prepared,
    process_batch_with, CaseKind, CaseTally, OverlapPolicy, PathStore, PhaseAOutput, ScratchArena,
    Selection, SingleStore,
};
