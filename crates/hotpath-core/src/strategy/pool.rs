//! The one place a worker count is decided.
//!
//! Every parallel epoch stage used to derive its own thread count
//! (`FsaSet::build_parallel` clamped one way, sharded Phase A another),
//! so the same epoch could rasterize on four threads and refine on one.
//! [`WorkerPool`] centralizes the decision: the coordinator resolves
//! the configured `phase_b_workers` against the machine once, and every
//! stage that fans out asks the same pool — including the break-even
//! degrade for batches too small to amortize a thread launch.

/// A resolved worker-count budget for scoped-thread fan-out.
///
/// This is a *decision*, not a thread container: stages that fan out
/// spawn scoped threads per use (matching the sharded Phase A pattern,
/// where one slice always runs inline on the caller's thread), so an
/// idle pool holds no OS resources at all.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Resolves a requested worker count against the machine: clamped
    /// to `available_parallelism()` so a single-core host degrades to
    /// the sequential path (break-even) instead of paying thread-launch
    /// and merge overhead for nothing. `0` is treated as `1`.
    pub fn new(requested: usize) -> Self {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        WorkerPool { workers: requested.max(1).min(hw) }
    }

    /// A pool of exactly `n` workers, bypassing the hardware clamp.
    /// For tests and benches that must exercise the multi-worker code
    /// paths (chunk queues, stealing, merge order) on a single-core
    /// machine; production callers go through [`WorkerPool::new`].
    pub fn exact(n: usize) -> Self {
        WorkerPool { workers: n.max(1) }
    }

    /// The resolved worker count.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when this pool runs stages sequentially.
    #[inline]
    pub fn is_sequential(&self) -> bool {
        self.workers == 1
    }

    /// The worker count to actually use for a stage over `items` work
    /// items: the pool's budget, degraded to sequential below the
    /// break-even batch size (thread launches plus result merging cost
    /// more than they save on tiny epochs), and never more workers than
    /// items.
    pub fn for_items(&self, items: usize) -> usize {
        /// Minimum items per worker before fanning out pays for itself;
        /// mirrors the `/ 256` clamp `FsaSet::build_parallel` uses for
        /// its (cheaper per item) rasterization.
        const BREAK_EVEN: usize = 32;
        if self.workers == 1 || items < 2 * BREAK_EVEN {
            return 1;
        }
        self.workers.min(items / BREAK_EVEN).max(1)
    }
}

impl Default for WorkerPool {
    /// The sequential pool — the pre-parallel-Phase-B code path.
    fn default() -> Self {
        WorkerPool { workers: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_to_the_machine_and_never_below_one() {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert_eq!(WorkerPool::new(1).workers(), 1);
        assert!(WorkerPool::new(usize::MAX).workers() <= hw);
    }

    #[test]
    fn exact_bypasses_the_clamp() {
        assert_eq!(WorkerPool::exact(8).workers(), 8);
        assert_eq!(WorkerPool::exact(0).workers(), 1);
        assert!(!WorkerPool::exact(2).is_sequential());
        assert!(WorkerPool::exact(1).is_sequential());
    }

    #[test]
    fn for_items_degrades_small_batches_to_sequential() {
        let pool = WorkerPool::exact(8);
        assert_eq!(pool.for_items(0), 1);
        assert_eq!(pool.for_items(63), 1, "below break-even stays sequential");
        assert!(pool.for_items(64) >= 2, "past break-even fans out");
        assert_eq!(pool.for_items(10_000), 8, "large batches get the full budget");
        // Never more workers than can each hold a break-even share.
        assert_eq!(pool.for_items(96), 3);
    }

    #[test]
    fn sequential_pool_is_the_default() {
        assert_eq!(WorkerPool::default(), WorkerPool::exact(1));
        assert_eq!(WorkerPool::default().for_items(1_000_000), 1);
    }
}
