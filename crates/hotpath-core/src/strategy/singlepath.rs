//! The SinglePath discovery strategy (Section 5.3, Algorithm 2).
//!
//! Per epoch, the coordinator processes the batch of reported states
//! `{<s_i, ts_i, l_i, u_i, te_i>}`. For every object it finds the hottest
//! motion path starting at `s_i` and ending inside the FSA `(l_i, u_i)`:
//!
//! * **Case 1** — an existing path qualifies: pick the hottest (with
//!   cross-object boosts) and record the crossing.
//! * **Case 2** — no path, but existing end vertices fall in the FSA:
//!   rank them by the summed hotness of their converging paths plus the
//!   FSA stabbing depth, and build a new path to the winner.
//! * **Case 3** — nothing in the FSA: mint a vertex at the centroid of
//!   the deepest FSA-overlap region inside the FSA, so co-located
//!   objects converge on a shared vertex (Example 2 of the paper).
//!
//! Candidate "hotness" values computed during selection are *ranks*; the
//! persistent hotness table only ever records actual crossings, keeping
//! sliding-window bookkeeping exact (each crossing has exactly one
//! expiry event).

use super::overlap::{FsaSet, QueryScratch};
use super::pool::WorkerPool;
use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};
use crate::hotness::Hotness;
use crate::index::{point_lt, MotionPathIndex, VertexGroups, VertexKey};
use crate::motion_path::PathId;
use crate::raytrace::ClientState;
use crate::time::Timestamp;
use crate::ObjectId;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Which of the three cases resolved an object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseKind {
    /// Case 1: an existing motion path was reused.
    ExistingPath,
    /// Case 2: a new path to an existing end vertex was created.
    ExistingVertex,
    /// Case 3: a new path to a freshly generated vertex was created.
    NewVertex,
}

/// The outcome of SinglePath for one reporting object.
#[derive(Clone, Copy, Debug)]
pub struct Selection {
    /// The reporting object.
    pub object: ObjectId,
    /// The selected (or created) motion path.
    pub path: PathId,
    /// The chosen endpoint — the object's next chain vertex.
    pub endpoint: Point,
    /// The exit timestamp of the crossing (the state's `te`).
    pub te: Timestamp,
    /// Which case applied.
    pub case: CaseKind,
    /// Whether a brand-new path was inserted.
    pub created: bool,
}

/// Tallies of case frequencies for one batch.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CaseTally {
    /// Case-1 selections.
    pub case1: u64,
    /// Case-2 selections.
    pub case2: u64,
    /// Case-3 selections.
    pub case3: u64,
}

/// How Cases 2-3 use the epoch's FSA overlaps. [`OverlapPolicy::Full`]
/// is the paper's Algorithm 2; [`OverlapPolicy::Own`] is the naive
/// ablation that ignores other objects' FSAs — each object ranks
/// vertices by converging hotness alone and mints fresh vertices at its
/// own FSA centroid. The ablation quantifies how much the Example-2
/// sharing machinery buys (see the `ablation` experiments).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapPolicy {
    /// Algorithm 2 as published: stabbing-depth boosts and max-depth
    /// generated vertices.
    #[default]
    Full,
    /// No cross-object overlap analysis (ablation baseline).
    Own,
}

/// Read/write surface Phase B (Cases 2-3) needs from path storage.
///
/// The sequential coordinator answers it from one `(index, hotness)`
/// pair; the sharded coordinator merges the per-shard structures so the
/// global Phase B sees exactly the view a single index would present.
pub trait PathStore {
    /// Distinct end vertices inside `fsa` with their converging paths,
    /// grouped into `out` in canonical order — by `(x, y)` with ids
    /// ascending (the Case-2 query). `out` is a reusable accumulator;
    /// implementations clear it first.
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups);
    /// Current hotness of `id` (zero when unknown).
    fn hotness_of(&self, id: PathId) -> u32;
    /// The store's quantized vertex key for `p` (the grouping key
    /// `end_vertices_into` buckets by).
    fn vertex_key(&self, p: &Point) -> VertexKey;
    /// Inserts (or dedups onto) the path `start -> end`, records a
    /// crossing exiting at `te`, and returns `(id, created, endpoint)`
    /// where `endpoint` is the stored path's end vertex.
    fn commit(&mut self, start: Point, end: Point, te: Timestamp) -> (PathId, bool, Point);
}

/// The read-only slice of [`PathStore`] the parallel Phase-B *eval* pass
/// needs. `Sync` so worker threads can share one reader over the
/// pre-Phase-B index snapshot — eval never touches hotness or commits,
/// which is exactly what makes it safe to run out of order.
pub trait PathReader: Sync {
    /// Same contract as [`PathStore::end_vertices_into`].
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups);
}

/// [`PathReader`] over a single index (the sequential coordinator).
pub struct SingleReader<'a> {
    /// The motion-path index, borrowed read-only.
    pub index: &'a MotionPathIndex,
}

impl PathReader for SingleReader<'_> {
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups) {
        self.index.end_vertices_into(fsa, out);
    }
}

/// The sequential store: one index, one hotness table.
pub struct SingleStore<'a> {
    /// The motion-path index.
    pub index: &'a mut MotionPathIndex,
    /// The hotness table.
    pub hotness: &'a mut Hotness,
}

impl PathStore for SingleStore<'_> {
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups) {
        self.index.end_vertices_into(fsa, out);
    }

    fn hotness_of(&self, id: PathId) -> u32 {
        self.hotness.get(id)
    }

    fn vertex_key(&self, p: &Point) -> VertexKey {
        self.index.vertex_key(p)
    }

    fn commit(&mut self, start: Point, end: Point, te: Timestamp) -> (PathId, bool, Point) {
        let (id, created) = self.index.insert(start, end);
        let end_point = self.index.get(id).expect("just inserted").end();
        self.hotness.record_crossing(id, te, self.index.get(id).expect("just inserted").length());
        (id, created, end_point)
    }
}

/// Reusable per-shard scratch for the epoch hot loop: every buffer the
/// SinglePath phases need, kept alive across epochs so the steady state
/// allocates nothing. Candidate paths live in a flat CSR layout instead
/// of one `Vec` per state; hash maps are cleared, never dropped; and the
/// Phase-A output vectors are recycled through
/// [`ScratchArena::recycle`] after the coordinator merges them.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Flattened candidate-path ids (CSR values).
    cp_ids: Vec<PathId>,
    /// CSR offsets: the candidate set of `seqs[k]` is
    /// `cp_ids[cp_off[k]..cp_off[k + 1]]`.
    cp_off: Vec<u32>,
    /// Cross-object occurrence counts, cleared each epoch.
    occurrences: FxHashMap<PathId, u32>,
    /// Vertex grouping for the sequential Phase B.
    pub(crate) groups: VertexGroups,
    /// Recycled Phase-A selection buffer.
    selections_pool: Vec<(u32, Selection)>,
    /// Recycled Phase-A deferred buffer.
    deferred_pool: Vec<u32>,
    /// Recycled identity `seqs` slice for the sequential batch path.
    seqs_pool: Vec<u32>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a drained [`PhaseAOutput`]'s buffers to the pool so the
    /// next epoch reuses their capacity.
    pub fn recycle(&mut self, mut out: PhaseAOutput) {
        out.selections.clear();
        out.deferred.clear();
        self.selections_pool = out.selections;
        self.deferred_pool = out.deferred;
    }
}

/// The outcome of [`phase_a`] over one shard's slice of the batch.
pub struct PhaseAOutput {
    /// Case-1 selections tagged with their global batch position.
    pub selections: Vec<(u32, Selection)>,
    /// Global batch positions deferred to Phase B (empty candidate set).
    pub deferred: Vec<u32>,
    /// Case tallies (only `case1` can be non-zero here).
    pub tally: CaseTally,
}

/// Phase A — Case 1 (Alg. 2 lines 4-7, 13-20) over the states at batch
/// positions `seqs` (in order) against one shard's index and hotness,
/// using the shard's [`ScratchArena`] for every intermediate buffer.
///
/// Sharding by start-vertex cell keeps Phase A exact: a state's
/// candidate paths all start at its own vertex, so candidate sets,
/// cross-object boosts, and intra-batch crossing visibility never span
/// shards — running each shard's slice independently produces the same
/// selections the sequential pass would.
pub fn phase_a(
    states: &[ClientState],
    seqs: &[u32],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    scratch: &mut ScratchArena,
) -> PhaseAOutput {
    // Candidate-path generation (Alg. 2 lines 4-7) into the CSR scratch.
    scratch.cp_ids.clear();
    scratch.cp_off.clear();
    scratch.cp_off.reserve(seqs.len() + 1);
    scratch.cp_off.push(0);
    for &i in seqs {
        let st = &states[i as usize];
        index.paths_from_into_buf(&st.start, &st.fsa, &mut scratch.cp_ids);
        scratch.cp_off.push(scratch.cp_ids.len() as u32);
    }

    // Cross-object boost (lines 13-15): a path appearing in several CP
    // sets gains one rank unit per additional set. Candidate paths start
    // at the reporting object's vertex, so every occurrence of an id is
    // in this slice — the count equals the whole batch's.
    scratch.occurrences.clear();
    for &id in &scratch.cp_ids {
        *scratch.occurrences.entry(id).or_insert(0) += 1;
    }
    let occurrences = &scratch.occurrences;

    let mut selections = std::mem::take(&mut scratch.selections_pool);
    selections.reserve(seqs.len());
    let mut out = PhaseAOutput {
        selections,
        deferred: std::mem::take(&mut scratch.deferred_pool),
        tally: CaseTally::default(),
    };

    // Case 1 (lines 16-20). Processing order is batch order; each
    // recorded crossing is immediately visible to later selections.
    for (k, &i) in seqs.iter().enumerate() {
        let st = &states[i as usize];
        let cp = &scratch.cp_ids[scratch.cp_off[k] as usize..scratch.cp_off[k + 1] as usize];
        if cp.is_empty() {
            out.deferred.push(i);
            continue;
        }
        let best = cp
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let rank = |id: PathId| {
                    let boost = occurrences[&id] - 1;
                    hotness.get(id) + 1 + boost
                };
                rank(a)
                    .cmp(&rank(b))
                    .then_with(|| {
                        let la = index.get(a).map(|p| p.length()).unwrap_or(0.0);
                        let lb = index.get(b).map(|p| p.length()).unwrap_or(0.0);
                        la.total_cmp(&lb)
                    })
                    .then_with(|| b.cmp(&a)) // lower id wins ties
            })
            .expect("non-empty candidate set");
        let chosen = index.get(best).expect("candidate must exist");
        hotness.record_crossing(best, st.te, chosen.length());
        out.tally.case1 += 1;
        out.selections.push((
            i,
            Selection {
                object: st.object,
                path: best,
                endpoint: chosen.end(),
                te: st.te,
                case: CaseKind::ExistingPath,
                created: false,
            },
        ));
    }
    out
}

/// Phase B — Cases 2 and 3 (Alg. 2 lines 21-37) over the deferred batch
/// positions, in order, against a [`PathStore`]. Sequential, so paths
/// minted for earlier objects are visible to later ones ("newly
/// generated motion paths will also provide additional vertices").
/// `groups` is the reusable vertex-group accumulator the Case-2 query
/// fills per deferred state.
#[allow(clippy::too_many_arguments)]
pub fn phase_b<S: PathStore>(
    states: &[ClientState],
    deferred: &[u32],
    store: &mut S,
    fsas: &FsaSet,
    policy: OverlapPolicy,
    tally: &mut CaseTally,
    selections: &mut Vec<Selection>,
    groups: &mut VertexGroups,
) {
    for &i in deferred {
        let st = &states[i as usize];

        // Available vertices with converging-path hotness plus stabbing
        // depth (lines 22-26).
        let mut best: Option<(u32, bool, Point)> = None; // (rank, existing, vertex)
        store.end_vertices_into(&st.fsa, groups);
        for (&vertex, incoming) in groups.iter() {
            let converging: u32 = incoming.iter().map(|&id| store.hotness_of(id)).sum();
            let boost = match policy {
                OverlapPolicy::Full => fsas.stab_count(&vertex) as u32,
                OverlapPolicy::Own => 0,
            };
            let cand = (converging + boost, true, vertex);
            if better_vertex(&cand, &best) {
                best = Some(cand);
            }
        }

        // Generated candidate from the deepest overlap region
        // (lines 27-34); the clip guarantees validity for this object.
        let generated = match policy {
            OverlapPolicy::Full => fsas
                .max_depth_region(&st.fsa)
                .map(|(region, depth)| (depth as u32, false, region.centroid())),
            OverlapPolicy::Own => Some((1, false, st.fsa.centroid())),
        };
        if let Some(cand) = generated {
            if better_vertex(&cand, &best) {
                best = Some(cand);
            }
        }

        let (_, existing, vertex) = best.unwrap_or_else(|| {
            // Degenerate fallback: the FSA participates in the FsaSet, so
            // max_depth_region over its own clip cannot be None; keep a
            // safe default anyway.
            (0, false, st.fsa.centroid())
        });

        let (id, created, endpoint) = store.commit(st.start, vertex, st.te);
        if existing {
            tally.case2 += 1;
        } else {
            tally.case3 += 1;
        }
        selections.push(Selection {
            object: st.object,
            path: id,
            endpoint,
            te: st.te,
            case: if existing { CaseKind::ExistingVertex } else { CaseKind::NewVertex },
            created,
        });
    }
}

/// Per-epoch Phase-B load telemetry: how the deferred set was split
/// across workers and how much the work-stealing had to rebalance.
/// Published in `HotSnapshot`; purely observational (never checkpointed,
/// never part of parity traces — worker timings and steal counts depend
/// on the machine, not the algorithm).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBLoad {
    /// Workers the eval pass actually ran with (1 = sequential path).
    pub workers: usize,
    /// Deferred states Phase B processed this epoch.
    pub deferred: usize,
    /// Distinct FSA grid regions the deferred set spanned (0 on the
    /// sequential path, which never partitions).
    pub regions: usize,
    /// Region chunks enqueued for stealing (0 on the sequential path).
    pub chunks: usize,
    /// Chunks a worker stole from another worker's queue.
    pub stolen: u64,
    /// Per-worker busy time (nanoseconds spent evaluating chunks).
    pub busy_ns: Vec<u64>,
    /// Worst per-worker busy time over the mean (1.0 when degenerate —
    /// sequential, or no measurable work). The number the `flash_crowd`
    /// invariant bounds: stealing keeps it near 1 even when every
    /// deferred state lands in one region.
    pub imbalance: f64,
}

impl PhaseBLoad {
    /// The load record for a sequential (1-worker) Phase B.
    pub fn sequential(deferred: usize) -> Self {
        PhaseBLoad { workers: 1, deferred, imbalance: 1.0, ..Self::default() }
    }

    fn finish(&mut self) {
        let sum: u64 = self.busy_ns.iter().sum();
        if self.workers <= 1 || sum == 0 {
            self.imbalance = 1.0;
        } else {
            let mean = sum as f64 / self.workers as f64;
            let worst = self.busy_ns.iter().copied().max().unwrap_or(0) as f64;
            self.imbalance = worst / mean;
        }
    }
}

/// One deferred state's evaluated (pure) Phase-B inputs: the base vertex
/// groups from the pre-Phase-B index snapshot in CSR layout, each with
/// its stabbing-depth boost, plus the generated max-depth candidate.
/// Everything here is a pure function of `(index snapshot, FsaSet,
/// state)` — independent of worker schedule, commit interleaving, and
/// hotness, which is what makes the eval pass parallel-safe.
#[derive(Debug, Default)]
struct EvalOne {
    /// Per group: canonical representative point and overlap boost.
    groups: Vec<(Point, u32)>,
    /// Converging path ids, flattened (CSR values).
    ids: Vec<PathId>,
    /// CSR offsets: group `g`'s ids are `ids[off[g]..off[g + 1]]`.
    off: Vec<u32>,
    /// The Case-3 candidate `(depth, false, centroid)`.
    generated: Option<(u32, bool, Point)>,
}

/// The output of [`phase_b_eval`]: one [`EvalOne`] per deferred slot
/// (in deferred order) plus the load telemetry. Opaque to callers —
/// produced by eval, consumed whole by [`phase_b_apply`].
#[derive(Debug)]
pub struct PhaseBEval {
    per_state: Vec<EvalOne>,
    /// Load telemetry for the eval pass.
    pub load: PhaseBLoad,
}

/// What one eval worker brings home: evaluated slots plus its counters.
#[derive(Default)]
struct EvalWorkerOut {
    results: Vec<(u32, EvalOne)>,
    busy_ns: u64,
    stolen: u64,
}

/// Evaluates one deferred state's pure Phase-B inputs against the shared
/// read-only index snapshot and FSA set.
fn eval_one<R: PathReader>(
    st: &ClientState,
    reader: &R,
    fsas: &FsaSet,
    policy: OverlapPolicy,
    scratch: &mut QueryScratch,
    groups: &mut VertexGroups,
) -> EvalOne {
    let mut ev = EvalOne::default();
    reader.end_vertices_into(&st.fsa, groups);
    ev.off.push(0);
    for (&vertex, incoming) in groups.iter() {
        let boost = match policy {
            OverlapPolicy::Full => fsas.stab_count(&vertex) as u32,
            OverlapPolicy::Own => 0,
        };
        ev.groups.push((vertex, boost));
        ev.ids.extend_from_slice(incoming);
        ev.off.push(ev.ids.len() as u32);
    }
    ev.generated = match policy {
        OverlapPolicy::Full => fsas
            .max_depth_region_in(&st.fsa, scratch)
            .map(|(region, depth)| (depth as u32, false, region.centroid())),
        OverlapPolicy::Own => Some((1, false, st.fsa.centroid())),
    };
    ev
}

/// One eval worker: drain the own queue front-to-back, then steal from
/// the backs of the other queues until everything is empty. No new work
/// is ever produced after the queues are seeded, so an all-empty scan is
/// a correct exit condition.
#[allow(clippy::too_many_arguments)]
fn eval_worker<R: PathReader>(
    me: usize,
    queues: &[Mutex<VecDeque<(u32, u32)>>],
    states: &[ClientState],
    deferred: &[u32],
    order: &[u32],
    reader: &R,
    fsas: &FsaSet,
    policy: OverlapPolicy,
) -> EvalWorkerOut {
    let mut out = EvalWorkerOut::default();
    let mut scratch = QueryScratch::default();
    let mut groups = VertexGroups::new();
    loop {
        let mut job = queues[me].lock().expect("queue poisoned").pop_front().map(|r| (r, false));
        if job.is_none() {
            for step in 1..queues.len() {
                let victim = (me + step) % queues.len();
                if let Some(r) = queues[victim].lock().expect("queue poisoned").pop_back() {
                    job = Some((r, true));
                    break;
                }
            }
        }
        let Some(((lo, hi), was_stolen)) = job else { break };
        let t0 = Instant::now();
        for &slot in &order[lo as usize..hi as usize] {
            let st = &states[deferred[slot as usize] as usize];
            out.results.push((slot, eval_one(st, reader, fsas, policy, &mut scratch, &mut groups)));
        }
        out.busy_ns += t0.elapsed().as_nanos() as u64;
        if was_stolen {
            out.stolen += 1;
        }
    }
    out
}

/// The parallel Phase-B *eval* pass: partitions the deferred set by FSA
/// grid region (the overlap-grid cell of each state's FSA centroid, so
/// states whose queries touch the same rects stay on one worker),
/// chunks the region-sorted order, seeds per-worker deques, and runs
/// `workers` scoped threads (one inline on the caller, matching the
/// sharded Phase-A pattern) that steal from each other's queue backs
/// when their own runs dry. Results land by deferred slot, so the
/// output is identical for every worker count and steal schedule.
pub fn phase_b_eval<R: PathReader>(
    states: &[ClientState],
    deferred: &[u32],
    reader: &R,
    fsas: &FsaSet,
    policy: OverlapPolicy,
    workers: usize,
) -> PhaseBEval {
    let d = deferred.len();
    let workers = workers.max(1).min(d.max(1));
    // Region-sort the deferred slots: stable, so slot order is preserved
    // within a region (pure cosmetics — eval is schedule-independent).
    let mut order: Vec<u32> = (0..d as u32).collect();
    order.sort_by_key(|&slot| {
        fsas.cell_key(&states[deferred[slot as usize] as usize].fsa.centroid())
    });
    let regions = order
        .windows(2)
        .filter(|w| {
            let cell =
                |slot: u32| fsas.cell_key(&states[deferred[slot as usize] as usize].fsa.centroid());
            cell(w[0]) != cell(w[1])
        })
        .count()
        + usize::from(d > 0);

    // Chunk the sorted order: ~4 chunks per worker so stealing has
    // granularity to rebalance a fully skewed region, capped so tiny
    // chunks don't drown in queue traffic.
    let chunk_len = (d / (workers * 4)).clamp(1, 64);
    let mut chunks: Vec<(u32, u32)> = Vec::with_capacity(d.div_ceil(chunk_len));
    let mut lo = 0u32;
    while (lo as usize) < d {
        let hi = ((lo as usize + chunk_len).min(d)) as u32;
        chunks.push((lo, hi));
        lo = hi;
    }
    let nchunks = chunks.len();

    // Seed queues with contiguous chunk runs (region locality); thieves
    // take from the far end, so a steal grabs the work most distant from
    // what the owner is currently touching.
    let queues: Vec<Mutex<VecDeque<(u32, u32)>>> = (0..workers)
        .map(|w| {
            let a = w * nchunks / workers;
            let b = (w + 1) * nchunks / workers;
            Mutex::new(chunks[a..b].iter().copied().collect())
        })
        .collect();

    let mut load = PhaseBLoad {
        workers,
        deferred: d,
        regions,
        chunks: nchunks,
        stolen: 0,
        busy_ns: vec![0; workers],
        imbalance: 1.0,
    };
    let mut per_state: Vec<EvalOne> = (0..d).map(|_| EvalOne::default()).collect();
    let mut outs: Vec<(usize, EvalWorkerOut)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let queues = &queues;
        let order = &order[..];
        let mut handles = Vec::with_capacity(workers.saturating_sub(1));
        for w in 1..workers {
            handles.push((
                w,
                scope.spawn(move || {
                    eval_worker(w, queues, states, deferred, order, reader, fsas, policy)
                }),
            ));
        }
        outs.push((0, eval_worker(0, queues, states, deferred, order, reader, fsas, policy)));
        for (w, h) in handles {
            outs.push((w, h.join().expect("phase-B eval worker panicked")));
        }
    });
    for (w, out) in outs {
        load.busy_ns[w] = out.busy_ns;
        load.stolen += out.stolen;
        for (slot, ev) in out.results {
            per_state[slot as usize] = ev;
        }
    }
    load.finish();
    PhaseBEval { per_state, load }
}

/// The sequential Phase-B *apply* pass: walks the deferred states in
/// original order, merging each state's evaluated base groups with an
/// *overlay* of the endpoints committed earlier in this same pass (the
/// visibility the sequential `phase_b` gets for free from the live
/// index), computing the live parts — converging-hotness sums and
/// commits — exactly where the sequential pass would. Bit-for-bit
/// equal to [`phase_b`] for any [`PhaseBEval`]:
///
/// * base groups are static during Phase B (Phase A never inserts paths;
///   dedup never changes a stored endpoint; expiry is a separate stage),
/// * overlay entries reproduce precisely the grid entries new paths
///   added (one `End` entry per *created* path, filtered per raw
///   endpoint just like `for_each_end_in`),
/// * group representatives stay the lexicographic minimum over base and
///   overlay observations, with the stabbing boost recomputed when an
///   overlay point lowers the representative (stab queries are pure),
/// * `better_vertex` is a strict total order over distinct candidates,
///   so candidate visit order cannot change the winner.
#[allow(clippy::too_many_arguments)]
pub fn phase_b_apply<S: PathStore>(
    states: &[ClientState],
    deferred: &[u32],
    eval: &PhaseBEval,
    store: &mut S,
    fsas: &FsaSet,
    policy: OverlapPolicy,
    tally: &mut CaseTally,
    selections: &mut Vec<Selection>,
) {
    debug_assert_eq!(eval.per_state.len(), deferred.len());
    // Endpoints of paths created by *this* pass, in commit order.
    let mut overlay: Vec<(Point, PathId)> = Vec::new();
    // Per-state regrouping of the overlay entries inside the FSA:
    // (key, representative, ids, merged-with-base flag).
    let mut ov_groups: Vec<(VertexKey, Point, Vec<PathId>, bool)> = Vec::new();
    let stab = |p: &Point| match policy {
        OverlapPolicy::Full => fsas.stab_count(p) as u32,
        OverlapPolicy::Own => 0,
    };
    for (j, &i) in deferred.iter().enumerate() {
        let st = &states[i as usize];
        let ev = &eval.per_state[j];

        // Overlay candidates: this-pass endpoints inside the FSA,
        // grouped by quantized key with lexicographic-min reps — the
        // same canonicalization `VertexGroups` applies.
        ov_groups.clear();
        for &(p, id) in &overlay {
            if !st.fsa.contains(&p) {
                continue;
            }
            let k = store.vertex_key(&p);
            match ov_groups.iter_mut().find(|(gk, ..)| *gk == k) {
                Some((_, rep, ids, _)) => {
                    if point_lt(&p, rep) {
                        *rep = p;
                    }
                    ids.push(id);
                }
                None => ov_groups.push((k, p, vec![id], false)),
            }
        }

        let mut best: Option<(u32, bool, Point)> = None;
        for (g, &(rep, boost)) in ev.groups.iter().enumerate() {
            let ids = &ev.ids[ev.off[g] as usize..ev.off[g + 1] as usize];
            let mut rank: u32 = ids.iter().map(|&id| store.hotness_of(id)).sum();
            let mut rep2 = rep;
            let mut boost2 = boost;
            let k = store.vertex_key(&rep);
            if let Some((_, ov_rep, ov_ids, used)) = ov_groups.iter_mut().find(|(gk, ..)| *gk == k)
            {
                *used = true;
                rank += ov_ids.iter().map(|&id| store.hotness_of(id)).sum::<u32>();
                if point_lt(ov_rep, &rep2) {
                    rep2 = *ov_rep;
                    boost2 = stab(&rep2);
                }
            }
            let cand = (rank + boost2, true, rep2);
            if better_vertex(&cand, &best) {
                best = Some(cand);
            }
        }
        for (_, rep, ids, used) in ov_groups.iter() {
            if *used {
                continue;
            }
            let rank: u32 = ids.iter().map(|&id| store.hotness_of(id)).sum();
            let cand = (rank + stab(rep), true, *rep);
            if better_vertex(&cand, &best) {
                best = Some(cand);
            }
        }
        if let Some(cand) = ev.generated {
            if better_vertex(&cand, &best) {
                best = Some(cand);
            }
        }

        let (_, existing, vertex) = best.unwrap_or((0, false, st.fsa.centroid()));
        let (id, created, endpoint) = store.commit(st.start, vertex, st.te);
        if existing {
            tally.case2 += 1;
        } else {
            tally.case3 += 1;
        }
        selections.push(Selection {
            object: st.object,
            path: id,
            endpoint,
            te: st.te,
            case: if existing { CaseKind::ExistingVertex } else { CaseKind::NewVertex },
            created,
        });
        if created {
            overlay.push((endpoint, id));
        }
    }
}

/// Builds the epoch's FSA-overlap structure for `policy` (Alg. 2 lines
/// 8-12, shared across Cases 2-3; built empty under the `Own` ablation,
/// which never queries it). `threads` bounds the parallel rasterization
/// of [`FsaSet::build_parallel`] — results are identical at every
/// thread count.
pub fn build_fsa_set(
    states: &[ClientState],
    overlap_cell: f64,
    policy: OverlapPolicy,
    threads: usize,
) -> FsaSet {
    match policy {
        OverlapPolicy::Full => {
            FsaSet::build_parallel(states.iter().map(|s| s.fsa).collect(), overlap_cell, threads)
        }
        OverlapPolicy::Own => FsaSet::build(Vec::new(), overlap_cell),
    }
}

/// Runs the SinglePath strategy over one epoch's batch of states.
///
/// `overlap_cell` sizes the FSA-overlap grid (use ~`2 eps`); it affects
/// performance only. Selections are deterministic: ties break toward
/// longer paths, then lower ids / lexicographically smaller vertices.
pub fn process_batch(
    states: &[ClientState],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    overlap_cell: f64,
) -> (Vec<Selection>, CaseTally) {
    process_batch_with(states, index, hotness, overlap_cell, OverlapPolicy::Full)
}

/// [`process_batch`] with an explicit overlap policy (ablation hook).
/// Allocates a throwaway scratch arena; steady-state callers (the
/// coordinator) hold a persistent arena and use [`process_batch_in`].
pub fn process_batch_with(
    states: &[ClientState],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    overlap_cell: f64,
    policy: OverlapPolicy,
) -> (Vec<Selection>, CaseTally) {
    let mut scratch = ScratchArena::new();
    process_batch_in(states, index, hotness, &mut scratch, overlap_cell, policy)
}

/// The allocation-disciplined batch entry point: every intermediate
/// buffer comes from `scratch`, which the caller keeps across epochs.
pub fn process_batch_in(
    states: &[ClientState],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    scratch: &mut ScratchArena,
    overlap_cell: f64,
    policy: OverlapPolicy,
) -> (Vec<Selection>, CaseTally) {
    if states.is_empty() {
        return (Vec::new(), CaseTally::default());
    }
    let fsas = build_fsa_set(states, overlap_cell, policy, 1);
    process_batch_prepared(states, index, hotness, scratch, &fsas, policy)
}

/// [`process_batch_in`] with the epoch's FSA-overlap structure supplied
/// by the caller — the entry point for the coordinator's incrementally
/// maintained [`crate::strategy::FsaCache`], which amortizes the
/// [`FsaSet`] build across epochs instead of rebuilding per batch.
/// `fsas` must be query-equivalent to `build_fsa_set(states, ..)` for
/// the same policy (both queries are pure functions of the rect
/// multiset, so an incrementally maintained set qualifies).
pub fn process_batch_prepared(
    states: &[ClientState],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    scratch: &mut ScratchArena,
    fsas: &FsaSet,
    policy: OverlapPolicy,
) -> (Vec<Selection>, CaseTally) {
    let (selections, tally, _) =
        process_batch_pooled(states, index, hotness, scratch, fsas, policy, WorkerPool::default());
    (selections, tally)
}

/// [`process_batch_prepared`] with an explicit [`WorkerPool`] governing
/// the Phase-B eval fan-out. At one effective worker (the default pool,
/// a single-core host, or a batch below break-even) this is *exactly*
/// the sequential code path — same functions, same allocation
/// discipline; with more, Phase B splits into the parallel eval pass
/// over region chunks plus the sequential apply pass, producing
/// bit-for-bit identical selections (see [`phase_b_apply`]). The
/// returned [`PhaseBLoad`] reports how the work spread.
pub fn process_batch_pooled(
    states: &[ClientState],
    index: &mut MotionPathIndex,
    hotness: &mut Hotness,
    scratch: &mut ScratchArena,
    fsas: &FsaSet,
    policy: OverlapPolicy,
    pool: WorkerPool,
) -> (Vec<Selection>, CaseTally, PhaseBLoad) {
    let mut tally = CaseTally::default();
    if states.is_empty() {
        return (Vec::new(), tally, PhaseBLoad::sequential(0));
    }

    let mut seqs = std::mem::take(&mut scratch.seqs_pool);
    seqs.clear();
    seqs.extend(0..states.len() as u32);
    let mut a = phase_a(states, &seqs, index, hotness, scratch);
    scratch.seqs_pool = seqs;
    tally = a.tally;
    let mut selections: Vec<Selection> = a.selections.drain(..).map(|(_, s)| s).collect();
    let deferred = std::mem::take(&mut a.deferred);
    let workers = pool.for_items(deferred.len());
    let load = if workers > 1 {
        let eval = phase_b_eval(states, &deferred, &SingleReader { index }, fsas, policy, workers);
        let mut store = SingleStore { index, hotness };
        phase_b_apply(
            states,
            &deferred,
            &eval,
            &mut store,
            fsas,
            policy,
            &mut tally,
            &mut selections,
        );
        eval.load
    } else {
        let t0 = Instant::now();
        let mut store = SingleStore { index, hotness };
        phase_b(
            states,
            &deferred,
            &mut store,
            fsas,
            policy,
            &mut tally,
            &mut selections,
            &mut scratch.groups,
        );
        let mut load = PhaseBLoad::sequential(deferred.len());
        load.busy_ns = vec![t0.elapsed().as_nanos() as u64];
        load
    };
    a.deferred = deferred;
    scratch.recycle(a);
    (selections, tally, load)
}

/// Vertex-candidate comparison: higher rank wins; ties prefer existing
/// vertices (maximizing reuse), then lexicographically smaller points
/// for determinism.
fn better_vertex(cand: &(u32, bool, Point), best: &Option<(u32, bool, Point)>) -> bool {
    let Some(b) = best else { return true };
    (cand.0, cand.1, -cand.2.x, -cand.2.y) > (b.0, b.1, -b.2.x, -b.2.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::time::SlidingWindow;

    fn state(obj: u64, start: (f64, f64), fsa: Rect, ts: u64, te: u64) -> ClientState {
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(ts),
            fsa,
            te: Timestamp(te),
        }
    }

    fn setup() -> (MotionPathIndex, Hotness) {
        (MotionPathIndex::new(50.0, 1e-3), Hotness::new(SlidingWindow::new(100)))
    }

    fn fsa_around(x: f64, y: f64, r: f64) -> Rect {
        Rect::new(Point::new(x - r, y - r), Point::new(x + r, y + r))
    }

    #[test]
    fn case1_reuses_hottest_existing_path() {
        let (mut index, mut hotness) = setup();
        let s = Point::new(0.0, 0.0);
        let (cold, _) = index.insert(s, Point::new(100.0, 1.0));
        let (hot, _) = index.insert(s, Point::new(100.0, -1.0));
        hotness.record_crossing(cold, Timestamp(0), 1.0);
        for _ in 0..5 {
            hotness.record_crossing(hot, Timestamp(0), 1.0);
        }

        let st = state(1, (0.0, 0.0), fsa_around(100.0, 0.0, 5.0), 0, 10);
        let (sel, tally) = process_batch(&[st], &mut index, &mut hotness, 20.0);
        assert_eq!(tally, CaseTally { case1: 1, case2: 0, case3: 0 });
        assert_eq!(sel[0].path, hot);
        assert_eq!(sel[0].case, CaseKind::ExistingPath);
        assert!(!sel[0].created);
        // The crossing was recorded.
        assert_eq!(hotness.get(hot), 6);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn case1_cross_object_boost_changes_winner() {
        // Path A has hotness 2; path B hotness 1 but appears in the CP
        // sets of three objects this epoch, giving it boost +2 per
        // object: rank(B) = 1 + 1 + 2 = 4 > rank(A) = 2 + 1 + 0 = 3.
        let (mut index, mut hotness) = setup();
        let s_shared = Point::new(0.0, 0.0);
        let (b, _) = index.insert(s_shared, Point::new(100.0, 0.0));
        hotness.record_crossing(b, Timestamp(0), 1.0);
        let s_solo = Point::new(0.0, 50.0);
        let (a, _) = index.insert(s_solo, Point::new(100.0, 2.0));
        hotness.record_crossing(a, Timestamp(0), 1.0);
        hotness.record_crossing(a, Timestamp(0), 1.0);

        // Object 9's FSA sees both paths' ends; it starts where both A
        // and B start... but Case 1 requires matching starts, so give
        // object 9 the shared start and make A share it too.
        let (mut index, mut hotness) = setup();
        let (a, _) = index.insert(s_shared, Point::new(100.0, 2.0));
        let (b, _) = index.insert(s_shared, Point::new(100.0, 0.0));
        hotness.record_crossing(a, Timestamp(0), 1.0);
        hotness.record_crossing(a, Timestamp(0), 1.0);
        hotness.record_crossing(b, Timestamp(0), 1.0);

        // Three objects whose FSAs contain only B's end; one object
        // seeing both.
        let tight = fsa_around(100.0, 0.0, 1.0); // contains only B's end
        let wide = fsa_around(100.0, 1.0, 2.0); // contains both ends
        let states = [
            state(1, (0.0, 0.0), tight, 0, 10),
            state(2, (0.0, 0.0), tight, 0, 10),
            state(3, (0.0, 0.0), wide, 0, 10),
        ];
        let (sel, tally) = process_batch(&states, &mut index, &mut hotness, 20.0);
        assert_eq!(tally.case1, 3);
        // Object 3 prefers B (hotness 1 + 1 + boost 2 = 4) over A
        // (hotness 2 + 1 + boost 0 = 3).
        let obj3 = sel.iter().find(|s| s.object == ObjectId(3)).unwrap();
        assert_eq!(obj3.path, b);
    }

    #[test]
    fn case2_builds_path_to_existing_vertex() {
        let (mut index, mut hotness) = setup();
        // An existing hot path converging to vertex v, but starting
        // elsewhere — so no Case-1 match for our object.
        let v = Point::new(100.0, 0.0);
        let (incoming, _) = index.insert(Point::new(200.0, 0.0), v);
        hotness.record_crossing(incoming, Timestamp(0), 1.0);
        hotness.record_crossing(incoming, Timestamp(0), 1.0);

        let st = state(1, (0.0, 0.0), fsa_around(100.0, 0.0, 5.0), 0, 10);
        let (sel, tally) = process_batch(&[st], &mut index, &mut hotness, 20.0);
        assert_eq!(tally, CaseTally { case1: 0, case2: 1, case3: 0 });
        assert_eq!(sel[0].case, CaseKind::ExistingVertex);
        assert!(sel[0].created);
        assert_eq!(sel[0].endpoint, v);
        // A new path 0,0 -> v exists with one crossing.
        assert_eq!(index.len(), 2);
        assert_eq!(hotness.get(sel[0].path), 1);
    }

    #[test]
    fn case3_mints_vertex_in_deepest_overlap() {
        let (mut index, mut hotness) = setup();
        // Three objects with overlapping FSAs, empty index: all Case 3.
        // FSAs mirror Example 2; the triple overlap is around (8, 8).
        let f1 = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let f2 = Rect::new(Point::new(6.0, 4.0), Point::new(16.0, 14.0));
        let f3 = Rect::new(Point::new(4.0, 6.0), Point::new(14.0, 16.0));
        let states = [
            state(1, (-50.0, 0.0), f1, 0, 10),
            state(2, (-50.0, 20.0), f2, 0, 10),
            state(3, (-50.0, 40.0), f3, 0, 10),
        ];
        let (sel, tally) = process_batch(&states, &mut index, &mut hotness, 10.0);
        assert_eq!(tally.case3 + tally.case2, 3);
        assert_eq!(tally.case1, 0);
        // Object 1 creates a vertex at the centroid of R123 = [6,10]x[6,10].
        let first = &sel[0];
        assert_eq!(first.case, CaseKind::NewVertex);
        assert_eq!(first.endpoint, Point::new(8.0, 8.0));
        assert!(f1.contains(&first.endpoint));
        // Later objects see that vertex inside their FSAs and converge on
        // it (Case 2), exactly the sharing Example 2 argues for.
        for s in &sel[1..] {
            assert_eq!(s.endpoint, Point::new(8.0, 8.0), "object {:?}", s.object);
        }
        // Three distinct paths (different starts) to one shared vertex.
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (mut index, mut hotness) = setup();
        let (sel, tally) = process_batch(&[], &mut index, &mut hotness, 10.0);
        assert!(sel.is_empty());
        assert_eq!(tally, CaseTally::default());
    }

    #[test]
    fn duplicate_geometry_reuses_path_id() {
        let (mut index, mut hotness) = setup();
        // Two objects with identical starts and identical single-point
        // FSAs: the second insert dedups onto the first's path.
        let fsa = fsa_around(50.0, 0.0, 0.5);
        let states = [state(1, (0.0, 0.0), fsa, 0, 10), state(2, (0.0, 0.0), fsa, 0, 10)];
        let (sel, _) = process_batch(&states, &mut index, &mut hotness, 10.0);
        assert_eq!(sel[0].endpoint, sel[1].endpoint);
        assert_eq!(sel[0].path, sel[1].path);
        assert_eq!(index.len(), 1);
        assert_eq!(hotness.get(sel[0].path), 2);
        // Only the first actually created it.
        assert!(sel[0].created);
        assert!(!sel[1].created);
    }

    #[test]
    fn selection_endpoint_always_inside_fsa() {
        let (mut index, mut hotness) = setup();
        // A mix: existing path for object 1, nothing for object 2.
        let s1 = Point::new(0.0, 0.0);
        let (p, _) = index.insert(s1, Point::new(30.0, 0.0));
        hotness.record_crossing(p, Timestamp(0), 1.0);
        let states = [
            state(1, (0.0, 0.0), fsa_around(30.0, 0.0, 3.0), 0, 10),
            state(2, (500.0, 500.0), fsa_around(530.0, 500.0, 3.0), 0, 10),
        ];
        let (sel, _) = process_batch(&states, &mut index, &mut hotness, 10.0);
        for s in &sel {
            let st = states
                .iter()
                .find(|st| st.object == s.object)
                .expect("selection for a known state");
            assert!(
                st.fsa.contains(&s.endpoint),
                "endpoint {:?} outside FSA for {:?}",
                s.endpoint,
                s.object
            );
        }
    }

    #[test]
    fn own_policy_never_shares_fresh_vertices() {
        // Same Example-2 layout as above, but with the overlap analysis
        // ablated: each object mints its own FSA centroid, so no
        // sharing happens and three DISTINCT vertices appear.
        let (mut index, mut hotness) = setup();
        let f1 = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let f2 = Rect::new(Point::new(6.0, 4.0), Point::new(16.0, 14.0));
        let f3 = Rect::new(Point::new(4.0, 6.0), Point::new(14.0, 16.0));
        let states = [
            state(1, (-50.0, 0.0), f1, 0, 10),
            state(2, (-50.0, 20.0), f2, 0, 10),
            state(3, (-50.0, 40.0), f3, 0, 10),
        ];
        let (sel, _) =
            super::process_batch_with(&states, &mut index, &mut hotness, 10.0, OverlapPolicy::Own);
        // Objects 1 and 2 mint their own centroids (no overlap logic).
        assert_eq!(sel[0].endpoint, f1.centroid());
        assert_eq!(sel[0].case, CaseKind::NewVertex);
        assert_eq!(sel[1].endpoint, f2.centroid());
        assert_eq!(sel[1].case, CaseKind::NewVertex);
        // Object 3 still reuses object 2's vertex via plain Case 2 —
        // the ablation removes overlap *analysis*, not vertex reuse —
        // but nobody lands on the triple-overlap centroid (8, 8) that
        // the full algorithm picks (see case3_mints_vertex_in_deepest_overlap).
        assert_eq!(sel[2].endpoint, f2.centroid());
        assert_eq!(sel[2].case, CaseKind::ExistingVertex);
        assert!(sel.iter().all(|s| s.endpoint != Point::new(8.0, 8.0)));
    }

    #[test]
    fn case1_tie_breaks_toward_longer_path() {
        let (mut index, mut hotness) = setup();
        let s = Point::new(0.0, 0.0);
        let (short, _) = index.insert(s, Point::new(50.0, 0.0));
        let (long, _) = index.insert(s, Point::new(52.0, 0.0));
        hotness.record_crossing(short, Timestamp(0), 1.0);
        hotness.record_crossing(long, Timestamp(0), 1.0);
        let st = state(1, (0.0, 0.0), fsa_around(51.0, 0.0, 2.0), 0, 10);
        let (sel, _) = process_batch(&[st], &mut index, &mut hotness, 10.0);
        assert_eq!(sel[0].path, long);
    }

    /// A flash-crowd-shaped batch: every start is unique (so Phase A
    /// defers the whole batch), while the FSAs pile onto a handful of
    /// cluster centers — heavy overlap within a cluster, several grid
    /// regions across clusters.
    fn skewed_batch(epoch: u64, n: usize) -> Vec<ClientState> {
        let mut s = epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut roll = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        (0..n)
            .map(|i| {
                let r = roll();
                let cx = ((r % 5) * 400) as f64 + (r % 37) as f64;
                let cy = ((r % 3) * 350) as f64 + (r % 23) as f64;
                state(
                    i as u64,
                    (epoch as f64 * 1000.0 + i as f64 * 3.0, 9000.0),
                    fsa_around(cx, cy, 30.0 + (r % 3) as f64 * 10.0),
                    epoch * 10,
                    epoch * 10 + 9,
                )
            })
            .collect()
    }

    /// One selection, reduced to comparable bits.
    type SelRow = (u64, u64, u64, u64, u64, CaseKind, bool);

    /// One stored path, reduced to comparable bits: id, endpoint
    /// coordinate bits, hotness.
    type PathRow = (u64, u64, u64, u32);

    /// Runs three flash-crowd epochs through `process_batch_pooled`
    /// under `pool` and returns every observable: the selection rows in
    /// order, the per-epoch tallies, the index size, and each stored
    /// path's endpoint geometry with its hotness.
    fn run_pooled(
        pool: WorkerPool,
        policy: OverlapPolicy,
    ) -> (Vec<SelRow>, Vec<CaseTally>, usize, Vec<PathRow>) {
        let (mut index, mut hotness) = setup();
        let mut scratch = ScratchArena::default();
        let mut rows = Vec::new();
        let mut tallies = Vec::new();
        for e in 1..=3u64 {
            let states = skewed_batch(e, 96);
            let fsas = build_fsa_set(&states, 40.0, policy, 1);
            let (sel, tally, load) = process_batch_pooled(
                &states,
                &mut index,
                &mut hotness,
                &mut scratch,
                &fsas,
                policy,
                pool,
            );
            assert_eq!(load.deferred + tally.case1 as usize, states.len());
            rows.extend(sel.iter().map(|s| {
                (
                    s.object.0,
                    s.path.0,
                    s.endpoint.x.to_bits(),
                    s.endpoint.y.to_bits(),
                    s.te.raw(),
                    s.case,
                    s.created,
                )
            }));
            tallies.push(tally);
        }
        let mut paths: Vec<PathRow> = index
            .iter()
            .map(|p| (p.id.0, p.end().x.to_bits(), p.end().y.to_bits(), hotness.get(p.id)))
            .collect();
        paths.sort_unstable();
        (rows, tallies, index.len(), paths)
    }

    #[test]
    fn parallel_phase_b_is_bit_for_bit_sequential() {
        for policy in [OverlapPolicy::Full, OverlapPolicy::Own] {
            let reference = run_pooled(WorkerPool::exact(1), policy);
            for workers in [2, 4, 8] {
                // exact() bypasses the hardware clamp so the parallel
                // eval genuinely runs on a single-core machine too.
                let parallel = run_pooled(WorkerPool::exact(workers), policy);
                assert_eq!(reference, parallel, "{policy:?} diverged at {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_eval_reports_load_and_engages_workers() {
        let (mut index, mut hotness) = setup();
        let mut scratch = ScratchArena::default();
        let states = skewed_batch(1, 96);
        let fsas = build_fsa_set(&states, 40.0, OverlapPolicy::Full, 1);
        let (_, _, load) = process_batch_pooled(
            &states,
            &mut index,
            &mut hotness,
            &mut scratch,
            &fsas,
            OverlapPolicy::Full,
            WorkerPool::exact(4),
        );
        // 96 unique starts all defer; 96 items over break-even 32
        // yields 3 workers from a 4-worker pool.
        assert_eq!(load.deferred, 96);
        assert!(load.workers > 1, "parallel path never engaged: {load:?}");
        assert_eq!(load.busy_ns.len(), load.workers);
        assert!(load.regions > 1, "flash-crowd batch collapsed to one region");
        assert!(load.imbalance >= 1.0 && load.imbalance.is_finite());
    }

    #[test]
    fn small_batches_degrade_to_sequential_phase_b() {
        let (mut index, mut hotness) = setup();
        let mut scratch = ScratchArena::default();
        let states = skewed_batch(1, 20);
        let fsas = build_fsa_set(&states, 40.0, OverlapPolicy::Full, 1);
        let (_, _, load) = process_batch_pooled(
            &states,
            &mut index,
            &mut hotness,
            &mut scratch,
            &fsas,
            OverlapPolicy::Full,
            WorkerPool::exact(8),
        );
        // 20 deferred states are below the 2x break-even floor: the
        // pool degrades to the sequential path even with 8 workers.
        assert_eq!(load.workers, 1);
        assert_eq!(load.stolen, 0);
        assert_eq!(load.imbalance, 1.0);
    }
}
