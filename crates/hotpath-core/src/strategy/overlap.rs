//! FSA-overlap analysis (Alg. 2 lines 8-12 and 23-34).
//!
//! The paper materializes `Rall`, the set of all intersections among the
//! reporting objects' FSAs, each tagged with the number of FSAs it lies
//! in. `Rall` is only ever consumed through two queries, both answered
//! exactly here without enumerating the (worst-case exponential) power
//! set:
//!
//! * *smallest overlap containing a vertex* (line 24): its count equals
//!   the **stabbing depth** — the number of FSAs containing the vertex;
//! * *highest-count overlap intersecting an FSA* (lines 28-32): the
//!   **maximum-depth region** of the rectangle arrangement, computed by a
//!   slab sweep and clipped to the object's own FSA so the generated
//!   vertex is always valid for the reporting object (see DESIGN.md).

use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};

/// An epoch-scoped set of FSA rectangles with depth queries.
#[derive(Clone, Debug)]
pub struct FsaSet {
    rects: Vec<Rect>,
    cell: f64,
    grid: FxHashMap<(i64, i64), Vec<u32>>,
}

impl FsaSet {
    /// Builds the set. `cell` should be on the order of an FSA diameter
    /// (e.g. `2 eps`); it only affects performance, not results.
    pub fn build(rects: Vec<Rect>, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell must be positive");
        let mut grid: FxHashMap<(i64, i64), Vec<u32>> = FxHashMap::default();
        for (i, r) in rects.iter().enumerate() {
            let (lx, ly) = Self::key(cell, &r.lo());
            let (hx, hy) = Self::key(cell, &r.hi());
            for cx in lx..=hx {
                for cy in ly..=hy {
                    grid.entry((cx, cy)).or_default().push(i as u32);
                }
            }
        }
        FsaSet { rects, cell, grid }
    }

    #[inline]
    fn key(cell: f64, p: &Point) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of FSAs in the set.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Stabbing depth at `p`: how many FSAs contain it. Equals the count
    /// of the smallest `Rall` region containing `p`.
    pub fn stab_count(&self, p: &Point) -> usize {
        let key = Self::key(self.cell, p);
        let Some(candidates) = self.grid.get(&key) else { return 0 };
        candidates.iter().filter(|&&i| self.rects[i as usize].contains(p)).count()
    }

    /// Indices of FSAs intersecting `r` (deduplicated, ascending).
    pub fn intersecting(&self, r: &Rect) -> Vec<u32> {
        let (lx, ly) = Self::key(self.cell, &r.lo());
        let (hx, hy) = Self::key(self.cell, &r.hi());
        let mut out: Vec<u32> = Vec::new();
        for cx in lx..=hx {
            for cy in ly..=hy {
                if let Some(v) = self.grid.get(&(cx, cy)) {
                    out.extend(v.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&i| self.rects[i as usize].intersects(r));
        out
    }

    /// The deepest region of the arrangement restricted to `clip`: a
    /// rectangle of maximal stabbing depth inside `clip`, together with
    /// that depth. Returns `None` when no FSA intersects `clip`.
    ///
    /// Closed-set semantics throughout: rectangles touching only at an
    /// edge still overlap there, matching [`Rect::intersects`].
    pub fn max_depth_region(&self, clip: &Rect) -> Option<(Rect, usize)> {
        let local: Vec<Rect> = self
            .intersecting(clip)
            .into_iter()
            .map(|i| {
                self.rects[i as usize]
                    .intersection(clip)
                    .expect("intersecting() guarantees overlap")
            })
            .collect();
        if local.is_empty() {
            return None;
        }
        // Candidate x-slabs: between (and at) every pair of consecutive
        // distinct x-boundaries.
        let mut xs: Vec<f64> = local.iter().flat_map(|r| [r.lo().x, r.hi().x]).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut best: Option<(Rect, usize)> = None;
        let mut consider = |slab_lo: f64, slab_hi: f64, local: &[Rect]| {
            // Rects whose x-range covers the whole slab (closed).
            let mut events: Vec<(f64, i32)> = Vec::new();
            for r in local {
                if r.lo().x <= slab_lo && slab_hi <= r.hi().x {
                    events.push((r.lo().y, 1));
                    events.push((r.hi().y, -1));
                }
            }
            if events.is_empty() {
                return;
            }
            // Closed sets: starts before ends at equal y so touching
            // intervals count as overlapping at the shared line.
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            // Pass 1: the maximum depth in this slab.
            let mut depth = 0i32;
            let mut d_max = 0i32;
            for &(_, delta) in &events {
                depth += delta;
                d_max = d_max.max(depth);
            }
            if d_max <= 0 || best.as_ref().is_some_and(|&(_, bd)| d_max as usize <= bd) {
                return;
            }
            // Pass 2: the y-extent of the first maximal stretch.
            let mut depth = 0i32;
            let mut y_lo = f64::NAN;
            let mut y_hi = f64::NAN;
            for &(y, delta) in &events {
                depth += delta;
                if y_lo.is_nan() && depth == d_max {
                    y_lo = y;
                } else if !y_lo.is_nan() && depth < d_max {
                    y_hi = y;
                    break;
                }
            }
            if y_hi.is_nan() {
                y_hi = y_lo;
            }
            let region = Rect::new(Point::new(slab_lo, y_lo), Point::new(slab_hi, y_hi.max(y_lo)));
            best = Some((region, d_max as usize));
        };

        // Full-width slabs first: at equal depth a proper slab beats a
        // degenerate boundary line (larger region, better centroid).
        for i in 0..xs.len().saturating_sub(1) {
            consider(xs[i], xs[i + 1], &local);
        }
        // Boundary lines catch depth achieved only where rectangles
        // touch edge-to-edge; they replace the best only when strictly
        // deeper.
        for &x in &xs {
            consider(x, x, &local);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// The paper's Example 2 / Figure 5 layout: three FSAs with a common
    /// triple intersection.
    fn example2() -> Vec<Rect> {
        vec![
            r(0.0, 0.0, 10.0, 10.0), // R1
            r(6.0, 4.0, 16.0, 14.0), // R2
            r(4.0, 6.0, 14.0, 16.0), // R3
        ]
    }

    #[test]
    fn stab_counts_match_example2() {
        let set = FsaSet::build(example2(), 8.0);
        assert_eq!(set.stab_count(&Point::new(1.0, 1.0)), 1); // R1 only
        assert_eq!(set.stab_count(&Point::new(15.0, 5.0)), 1); // R2 only
        assert_eq!(set.stab_count(&Point::new(8.0, 5.0)), 2); // R12
        assert_eq!(set.stab_count(&Point::new(5.0, 8.0)), 2); // R13
        assert_eq!(set.stab_count(&Point::new(12.0, 12.0)), 2); // R23
        assert_eq!(set.stab_count(&Point::new(8.0, 8.0)), 3); // R123
        assert_eq!(set.stab_count(&Point::new(-5.0, -5.0)), 0);
    }

    #[test]
    fn max_depth_region_finds_triple_overlap() {
        let set = FsaSet::build(example2(), 8.0);
        // Clipped to R1: the deepest region is R123 = [6,10]x[6,10].
        let clip = r(0.0, 0.0, 10.0, 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, r(6.0, 6.0, 10.0, 10.0));
        // The centroid (the paper's generated vertex) is inside all
        // three FSAs and inside the clip.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), 3);
        assert!(clip.contains(&c));
    }

    #[test]
    fn max_depth_region_respects_clip() {
        let set = FsaSet::build(example2(), 8.0);
        // Clip to a corner of R1 away from the triple overlap.
        let clip = r(0.0, 0.0, 3.0, 3.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 1);
        assert!(clip.contains_rect(&region));
    }

    #[test]
    fn max_depth_none_when_disjoint() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 1.0, 1.0)], 4.0);
        assert!(set.max_depth_region(&r(10.0, 10.0, 11.0, 11.0)).is_none());
    }

    #[test]
    fn intersecting_filters_and_dedups() {
        let set = FsaSet::build(example2(), 2.0); // small cells force dedup
        let ids = set.intersecting(&r(7.0, 7.0, 9.0, 9.0));
        assert_eq!(ids, vec![0, 1, 2]);
        let ids = set.intersecting(&r(0.0, 0.0, 1.0, 1.0));
        assert_eq!(ids, vec![0]);
        let ids = set.intersecting(&r(100.0, 100.0, 101.0, 101.0));
        assert!(ids.is_empty());
    }

    #[test]
    fn touching_rects_overlap_at_the_shared_edge() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 5.0, 5.0), r(5.0, 0.0, 10.0, 5.0)], 4.0);
        // Depth 2 exists only on the shared line x = 5.
        let (region, depth) = set.max_depth_region(&r(0.0, 0.0, 10.0, 5.0)).unwrap();
        assert_eq!(depth, 2);
        assert_eq!(region.lo().x, 5.0);
        assert_eq!(region.hi().x, 5.0);
        assert_eq!(set.stab_count(&Point::new(5.0, 2.0)), 2);
    }

    #[test]
    fn identical_rects_stack() {
        let q = r(2.0, 2.0, 4.0, 4.0);
        let set = FsaSet::build(vec![q, q, q], 4.0);
        let (region, depth) = set.max_depth_region(&q).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, q);
    }

    #[test]
    fn depth_matches_brute_force_grid_scan() {
        // Deterministic pseudo-random rectangles; compare the sweep's
        // depth to brute-force point sampling.
        let mut state = 99u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        let rects: Vec<Rect> = (0..30)
            .map(|_| {
                let x = rand();
                let y = rand();
                let w = rand() * 0.2 + 1.0;
                let h = rand() * 0.2 + 1.0;
                r(x, y, x + w, y + h)
            })
            .collect();
        let clip = r(0.0, 0.0, 120.0, 120.0);
        let set = FsaSet::build(rects.clone(), 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        // The reported region really has that depth.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), depth, "centroid depth mismatch");
        // No sampled point exceeds it.
        let mut max_sampled = 0;
        for i in 0..100 {
            for j in 0..100 {
                let p = Point::new(i as f64 * 1.2, j as f64 * 1.2);
                max_sampled = max_sampled.max(set.stab_count(&p));
            }
        }
        assert!(depth >= max_sampled, "sweep depth {depth} < sampled {max_sampled}");
    }
}
