//! FSA-overlap analysis (Alg. 2 lines 8-12 and 23-34).
//!
//! The paper materializes `Rall`, the set of all intersections among the
//! reporting objects' FSAs, each tagged with the number of FSAs it lies
//! in. `Rall` is only ever consumed through two queries, both answered
//! exactly here without enumerating the (worst-case exponential) power
//! set:
//!
//! * *smallest overlap containing a vertex* (line 24): its count equals
//!   the **stabbing depth** — the number of FSAs containing the vertex;
//! * *highest-count overlap intersecting an FSA* (lines 28-32): the
//!   **maximum-depth region** of the rectangle arrangement, computed by a
//!   slab sweep and clipped to the object's own FSA so the generated
//!   vertex is always valid for the reporting object (see DESIGN.md).

use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};

/// Reusable query scratch: the stamped `seen` bitmap behind the
/// allocation- and sort-free intersection query, plus the buffers of
/// the [`FsaSet::max_depth_region_in`] slab sweep. The scratch is
/// *owned by the caller*, not by the set: the set itself is immutable
/// (`Sync`) during queries, so parallel Phase B hands each worker
/// thread its own `QueryScratch` and they all query one shared
/// `&FsaSet` concurrently. The allocating convenience wrappers
/// ([`FsaSet::intersecting`], [`FsaSet::max_depth_region`]) build a
/// throwaway scratch per call for tests and diagnostics.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    /// Per-rect generation stamps: `stamps[i] == gen` means rect `i` was
    /// already accepted by the current `intersecting` call.
    stamps: Vec<u32>,
    /// Current stamp generation (bumped per call; stamps are cleared
    /// only on the rare wrap-around).
    gen: u32,
    /// Accepted rect indices, ascending.
    hits: Vec<u32>,
    /// `max_depth_region`: rects clipped to the query window.
    local: Vec<Rect>,
    /// `max_depth_region`: candidate slab boundaries.
    xs: Vec<f64>,
    /// `max_depth_region`: the y-sweep event buffer, reused across every
    /// slab of every call instead of reallocated per slab.
    events: Vec<(f64, i32)>,
}

/// An epoch-scoped set of FSA rectangles with depth queries.
///
/// # Invariant: queries are multiset-determined
///
/// Both hot-loop queries — [`FsaSet::stab_count`] and
/// [`FsaSet::max_depth_region`] — are pure functions of the *multiset*
/// of live rectangles: `stab_count` counts containment, and the slab
/// sweep orders everything by coordinates before deciding anything.
/// Slot numbering and per-cell list order never leak into results
/// (the public [`FsaSet::intersecting`] wrapper sorts its own copy).
/// That invariant is what lets [`FsaCache`] maintain one set
/// incrementally across epochs: reassigning slots or reordering cell
/// lists is unobservable, so an incrementally maintained set answers
/// bit-for-bit identically to a from-scratch build of the same batch.
#[derive(Clone, Debug)]
pub struct FsaSet {
    /// Rect slab; under [`FsaCache`] maintenance it may contain free
    /// (unreferenced) slots, which no grid cell points to.
    rects: Vec<Rect>,
    cell: f64,
    grid: FxHashMap<(i64, i64), Vec<u32>>,
    /// Live rect count (equals `rects.len()` for from-scratch builds;
    /// excludes free slots under incremental maintenance).
    live: usize,
}

impl FsaSet {
    /// Builds the set. `cell` should be on the order of an FSA diameter
    /// (e.g. `2 eps`); it only affects performance, not results.
    pub fn build(rects: Vec<Rect>, cell: f64) -> Self {
        Self::build_parallel(rects, cell, 1)
    }

    /// [`FsaSet::build`] rasterizing on up to `threads` scoped worker
    /// threads. Rects are split into contiguous index chunks, each chunk
    /// rasterized into its own sub-grid, and the sub-grids merged in
    /// chunk order — so every cell's id list is ascending exactly as the
    /// sequential build produces, and the result is bit-for-bit
    /// identical at every thread count.
    pub fn build_parallel(rects: Vec<Rect>, cell: f64, threads: usize) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell must be positive");
        // One chunk per thread, but never spawn for small epochs where
        // rasterization is cheaper than thread launches plus the merge,
        // and never more threads than the machine can actually run —
        // oversubscribing a CPU-bound rasterization only adds merge
        // overhead (on a single-core host this degrades to the
        // sequential build, which is exactly break-even).
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let threads = threads.max(1).min(hw).min(rects.len() / 256).max(1);
        let mut grid: FxHashMap<(i64, i64), Vec<u32>> = FxHashMap::default();
        if threads == 1 {
            Self::rasterize(&rects, cell, 0, &mut grid);
        } else {
            let chunk = rects.len().div_ceil(threads);
            let parts: Vec<FxHashMap<(i64, i64), Vec<u32>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = rects
                    .chunks(chunk)
                    .enumerate()
                    .map(|(c, slice)| {
                        scope.spawn(move || {
                            let mut part = FxHashMap::default();
                            Self::rasterize(slice, cell, (c * chunk) as u32, &mut part);
                            part
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("rasterizer panicked")).collect()
            });
            // Chunks hold disjoint ascending id ranges; appending them in
            // chunk order keeps every cell's list ascending, matching the
            // sequential single-pass build. The first part is adopted as
            // the base map outright — its cells (roughly 1/threads of
            // the total) pay no re-hash and no re-copy at all, and the
            // remaining parts merge into pre-reserved entries instead of
            // growing them one extend at a time.
            let mut parts = parts.into_iter();
            grid = parts.next().unwrap_or_default();
            let rest: Vec<_> = parts.collect();
            grid.reserve(rest.iter().map(|p| p.len()).sum());
            for mut part in rest {
                for (key, mut ids) in part.drain() {
                    match grid.entry(key) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            // Most cells belong to exactly one chunk
                            // (chunks are spatially coherent): move the
                            // whole list, no copy.
                            e.insert(ids);
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().append(&mut ids);
                        }
                    }
                }
            }
            debug_assert!(grid.values().all(|ids| ids.windows(2).all(|w| w[0] < w[1])));
        }
        let live = rects.len();
        FsaSet { rects, cell, grid, live }
    }

    /// Rasterizes `rects` (whose global indices start at `base`) into
    /// `grid`: each rect's index is pushed into every cell it covers.
    fn rasterize(rects: &[Rect], cell: f64, base: u32, grid: &mut FxHashMap<(i64, i64), Vec<u32>>) {
        for (i, r) in rects.iter().enumerate() {
            let (lx, ly) = Self::key(cell, &r.lo());
            let (hx, hy) = Self::key(cell, &r.hi());
            for cx in lx..=hx {
                for cy in ly..=hy {
                    grid.entry((cx, cy)).or_default().push(base + i as u32);
                }
            }
        }
    }

    #[inline]
    fn key(cell: f64, p: &Point) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of live FSAs in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the set holds no live FSAs.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cell edge length of the rasterization grid.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// The rasterization-grid cell key containing `p`. Parallel Phase B
    /// orders its deferred states by this key so one worker chunk
    /// touches spatially coherent FSAs (shared grid cells stay warm and
    /// a flash crowd's states land in contiguous chunks that the
    /// stealing deque can redistribute).
    #[inline]
    pub fn cell_key(&self, p: &Point) -> (i64, i64) {
        Self::key(self.cell, p)
    }

    /// The grid cells covered by `r` at this set's resolution, as the
    /// inclusive key range `((lx, ly), (hx, hy))`.
    #[inline]
    fn coverage(&self, r: &Rect) -> ((i64, i64), (i64, i64)) {
        (Self::key(self.cell, &r.lo()), Self::key(self.cell, &r.hi()))
    }

    /// Writes `rect` into slot `slot` (growing the slab if needed) and
    /// pushes the slot id into every covered grid cell. The slot must
    /// currently be free: not referenced by any cell list.
    fn insert_slot(&mut self, slot: u32, rect: Rect) {
        let idx = slot as usize;
        if self.rects.len() <= idx {
            self.rects.resize(idx + 1, rect);
        }
        self.rects[idx] = rect;
        let ((lx, ly), (hx, hy)) = self.coverage(&rect);
        for cx in lx..=hx {
            for cy in ly..=hy {
                self.grid.entry((cx, cy)).or_default().push(slot);
            }
        }
        self.live += 1;
    }

    /// Removes slot `slot` from every grid cell its rect covers,
    /// dropping cells that become empty so the grid never accumulates
    /// dead entries across epochs. The rect itself stays in the slab as
    /// an inert free slot until the slot is reused.
    fn remove_slot(&mut self, slot: u32) {
        let rect = self.rects[slot as usize];
        let ((lx, ly), (hx, hy)) = self.coverage(&rect);
        for cx in lx..=hx {
            for cy in ly..=hy {
                let ids =
                    self.grid.get_mut(&(cx, cy)).expect("live slot absent from a covered cell");
                let pos = ids
                    .iter()
                    .position(|&i| i == slot)
                    .expect("live slot absent from a covered cell list");
                ids.swap_remove(pos);
                if ids.is_empty() {
                    self.grid.remove(&(cx, cy));
                }
            }
        }
        self.live -= 1;
    }

    /// Stabbing depth at `p`: how many FSAs contain it. Equals the count
    /// of the smallest `Rall` region containing `p`.
    pub fn stab_count(&self, p: &Point) -> usize {
        let key = Self::key(self.cell, p);
        let Some(candidates) = self.grid.get(&key) else { return 0 };
        candidates.iter().filter(|&&i| self.rects[i as usize].contains(p)).count()
    }

    /// Indices of FSAs intersecting `r` (deduplicated, ascending).
    /// Allocating convenience wrapper over the stamped internal query
    /// (tests and diagnostics; the hot loop goes through
    /// [`FsaSet::max_depth_region_in`] with a caller-owned scratch).
    pub fn intersecting(&self, r: &Rect) -> Vec<u32> {
        let mut s = QueryScratch::default();
        self.collect_intersecting(r, &mut s);
        let mut out = s.hits;
        out.sort_unstable();
        out
    }

    /// The stamped dedup query behind [`FsaSet::intersecting`]: no
    /// allocation and no sort in the steady state. Every candidate id is
    /// stamped with the call's generation on first acceptance and
    /// pushed once, in grid-walk encounter order — deterministic (the
    /// cell walk and per-cell id lists are fixed by construction) but
    /// not ascending; the only order-sensitive consumer is the public
    /// wrapper above, which sorts its own copy. O(candidates), never a
    /// pass over the whole id space.
    fn collect_intersecting(&self, r: &Rect, s: &mut QueryScratch) {
        s.hits.clear();
        if s.stamps.len() < self.rects.len() {
            s.stamps.resize(self.rects.len(), 0);
        }
        s.gen = match s.gen.checked_add(1) {
            Some(g) => g,
            None => {
                s.stamps.fill(0);
                1
            }
        };
        let (lx, ly) = Self::key(self.cell, &r.lo());
        let (hx, hy) = Self::key(self.cell, &r.hi());
        for cx in lx..=hx {
            for cy in ly..=hy {
                let Some(v) = self.grid.get(&(cx, cy)) else { continue };
                for &i in v {
                    if s.stamps[i as usize] != s.gen && self.rects[i as usize].intersects(r) {
                        s.stamps[i as usize] = s.gen;
                        s.hits.push(i);
                    }
                }
            }
        }
    }

    /// The deepest region of the arrangement restricted to `clip`: a
    /// rectangle of maximal stabbing depth inside `clip`, together with
    /// that depth. Returns `None` when no FSA intersects `clip`.
    ///
    /// Allocating convenience wrapper over
    /// [`FsaSet::max_depth_region_in`] — a throwaway scratch per call.
    /// Fine for tests and one-off diagnostics; the Phase-B hot loop
    /// passes a reused per-worker scratch instead.
    pub fn max_depth_region(&self, clip: &Rect) -> Option<(Rect, usize)> {
        self.max_depth_region_in(clip, &mut QueryScratch::default())
    }

    /// [`FsaSet::max_depth_region`] with a caller-owned scratch: the
    /// set is only read (`&self`), so any number of worker threads can
    /// run this concurrently against one shared set, each with its own
    /// `scratch` — the `Sync` query path parallel Phase B rides on.
    ///
    /// Closed-set semantics throughout: rectangles touching only at an
    /// edge still overlap there, matching [`Rect::intersects`].
    pub fn max_depth_region_in(
        &self,
        clip: &Rect,
        scratch: &mut QueryScratch,
    ) -> Option<(Rect, usize)> {
        self.collect_intersecting(clip, scratch);
        let QueryScratch { hits, local, xs, events, .. } = scratch;
        local.clear();
        local.extend(hits.iter().map(|&i| {
            self.rects[i as usize]
                .intersection(clip)
                .expect("collect_intersecting guarantees overlap")
        }));
        if local.is_empty() {
            return None;
        }
        let local: &[Rect] = local;
        // Candidate x-slabs: between (and at) every pair of consecutive
        // distinct x-boundaries.
        xs.clear();
        xs.extend(local.iter().flat_map(|r| [r.lo().x, r.hi().x]));
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut best: Option<(Rect, usize)> = None;
        let mut consider = |slab_lo: f64, slab_hi: f64, events: &mut Vec<(f64, i32)>| {
            // Rects whose x-range covers the whole slab (closed).
            events.clear();
            for r in local {
                if r.lo().x <= slab_lo && slab_hi <= r.hi().x {
                    events.push((r.lo().y, 1));
                    events.push((r.hi().y, -1));
                }
            }
            if events.is_empty() {
                return;
            }
            // Closed sets: starts before ends at equal y so touching
            // intervals count as overlapping at the shared line.
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            // Pass 1: the maximum depth in this slab.
            let mut depth = 0i32;
            let mut d_max = 0i32;
            for &(_, delta) in events.iter() {
                depth += delta;
                d_max = d_max.max(depth);
            }
            if d_max <= 0 || best.as_ref().is_some_and(|&(_, bd)| d_max as usize <= bd) {
                return;
            }
            // Pass 2: the y-extent of the first maximal stretch.
            let mut depth = 0i32;
            let mut y_lo = f64::NAN;
            let mut y_hi = f64::NAN;
            for &(y, delta) in events.iter() {
                depth += delta;
                if y_lo.is_nan() && depth == d_max {
                    y_lo = y;
                } else if !y_lo.is_nan() && depth < d_max {
                    y_hi = y;
                    break;
                }
            }
            if y_hi.is_nan() {
                y_hi = y_lo;
            }
            let region = Rect::new(Point::new(slab_lo, y_lo), Point::new(slab_hi, y_hi.max(y_lo)));
            best = Some((region, d_max as usize));
        };

        // Full-width slabs first: at equal depth a proper slab beats a
        // degenerate boundary line (larger region, better centroid).
        for i in 0..xs.len().saturating_sub(1) {
            consider(xs[i], xs[i + 1], events);
        }
        // Boundary lines catch depth achieved only where rectangles
        // touch edge-to-edge; they replace the best only when strictly
        // deeper.
        for &x in xs.iter() {
            consider(x, x, events);
        }
        best
    }
}

/// Epoch-to-epoch incremental maintenance of an [`FsaSet`].
///
/// A from-scratch [`FsaSet::build`] re-rasterizes every reporting
/// object's FSA each epoch, but between consecutive epochs the
/// reporting population barely changes: most objects report again with
/// an FSA that moved a little (often not even across a grid-cell
/// boundary), a few appear, a few fall silent. The cache retains the
/// rasterized grid across epochs and applies only the delta:
///
/// * **unchanged rect** — no work at all;
/// * **moved within the same cell coverage** — one slab write, zero
///   grid edits (the common case when `cell ~ 2 eps` dwarfs per-epoch
///   displacement);
/// * **moved across cells** — remove from old cells, insert into new;
/// * **appeared** — insert into a recycled or fresh slot;
/// * **disappeared** — swept out after the batch by an epoch-stamp
///   scan over the registry.
///
/// Per-epoch cost is `O(batch + changed-cell edits)` instead of
/// `O(batch * cells-per-rect)` rasterization plus a full grid rebuild.
///
/// Correctness leans on the multiset invariant documented on
/// [`FsaSet`]: queries cannot observe slot numbering or cell-list
/// order, so the incrementally maintained set answers exactly like a
/// fresh build of the same batch. Debug builds verify that equivalence
/// against a real from-scratch rebuild after every update, so the full
/// rebuild stays in the tree as the oracle.
///
/// The cache is deliberately **not** checkpointed: it is a pure
/// function of the batches since construction, and a restored
/// coordinator starts from a fresh cache whose first update rebuilds
/// the grid — bit-for-bit parity follows from the same invariant.
///
/// Duplicate object ids inside one batch are legal (the protocol layer
/// may submit several crossings for one object in an epoch); each extra
/// occurrence takes a temporary *overflow* slot that lives exactly one
/// epoch, keeping the multiset faithful to the batch.
#[derive(Clone, Debug)]
pub struct FsaCache {
    set: FsaSet,
    /// Registry: object id -> its primary slot in the set.
    slot_of: FxHashMap<u64, u32>,
    /// Reverse of `slot_of` for the sweep: slot -> object id. Indexed by
    /// slot; entries for free/overflow slots are stale and never read.
    obj_of: Vec<u64>,
    /// Per-slot epoch stamp: `stamp[s] == epoch` means slot `s` was
    /// refreshed by the current update.
    stamp: Vec<u64>,
    /// Update generation counter (monotone; one tick per `update`).
    epoch: u64,
    /// Slots holding duplicate same-batch occurrences; cleared at the
    /// start of the next update.
    overflow: Vec<u32>,
    /// Recycled slot ids.
    free: Vec<u32>,
    /// Sweep scratch: slots of objects absent from the current batch.
    stale: Vec<u32>,
    /// Statistics of the most recent update.
    last_delta: FsaDelta,
}

/// One epoch's delta statistics from [`FsaCache::update`], exposed so
/// benches and diagnostics can see how much grid work the deltas did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsaDelta {
    /// Rects identical to the previous epoch (zero work).
    pub unchanged: usize,
    /// Rects that moved without crossing a cell boundary (slab write
    /// only).
    pub moved_in_place: usize,
    /// Rects that moved across cell boundaries (remove + insert).
    pub moved_rekeyed: usize,
    /// Objects that newly appeared (insert).
    pub inserted: usize,
    /// Objects that fell silent and were swept (remove).
    pub removed: usize,
    /// Duplicate same-batch occurrences parked in overflow slots.
    pub duplicates: usize,
}

impl FsaCache {
    /// Creates an empty cache whose sets rasterize at `cell` (same
    /// meaning as [`FsaSet::build`]'s `cell`).
    pub fn new(cell: f64) -> Self {
        FsaCache {
            set: FsaSet::build(Vec::new(), cell),
            slot_of: FxHashMap::default(),
            obj_of: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            overflow: Vec::new(),
            free: Vec::new(),
            stale: Vec::new(),
            last_delta: FsaDelta::default(),
        }
    }

    /// Delta statistics of the most recent [`FsaCache::update`].
    pub fn last_delta(&self) -> FsaDelta {
        self.last_delta
    }

    /// The maintained set as of the last [`FsaCache::update`] (empty on
    /// a fresh cache).
    pub fn set(&self) -> &FsaSet {
        &self.set
    }

    /// Applies one epoch's batch — `(object id, FSA rect)` pairs — and
    /// returns the maintained set, query-equivalent to
    /// `FsaSet::build(batch rects, cell)`.
    pub fn update<I>(&mut self, batch: I) -> &FsaSet
    where
        I: IntoIterator<Item = (u64, Rect)>,
    {
        self.epoch += 1;
        let mut delta = FsaDelta::default();
        // Last epoch's duplicate occurrences expire first; their slots
        // go straight back on the free list for this batch to reuse.
        for slot in std::mem::take(&mut self.overflow) {
            self.set.remove_slot(slot);
            self.free.push(slot);
        }
        for (obj, rect) in batch {
            match self.slot_of.get(&obj).copied() {
                Some(slot) if self.stamp[slot as usize] != self.epoch => {
                    self.stamp[slot as usize] = self.epoch;
                    let old = self.set.rects[slot as usize];
                    if old == rect {
                        delta.unchanged += 1;
                    } else if self.set.coverage(&old) == self.set.coverage(&rect) {
                        // Same cell footprint: the grid is already
                        // correct, only the slab entry changes.
                        self.set.rects[slot as usize] = rect;
                        delta.moved_in_place += 1;
                    } else {
                        self.set.remove_slot(slot);
                        self.set.insert_slot(slot, rect);
                        delta.moved_rekeyed += 1;
                    }
                }
                Some(_) => {
                    // Second occurrence of `obj` in this same batch: park
                    // it in a one-epoch overflow slot so the rect
                    // multiset matches the batch exactly.
                    let slot = self.place(rect);
                    self.overflow.push(slot);
                    delta.duplicates += 1;
                }
                None => {
                    let slot = self.place(rect);
                    self.stamp[slot as usize] = self.epoch;
                    self.obj_of[slot as usize] = obj;
                    self.slot_of.insert(obj, slot);
                    delta.inserted += 1;
                }
            }
        }
        // Sweep objects that reported last epoch but not this one.
        self.stale.clear();
        self.stale.extend(
            self.slot_of.values().copied().filter(|&s| self.stamp[s as usize] != self.epoch),
        );
        for i in 0..self.stale.len() {
            let slot = self.stale[i];
            self.slot_of.remove(&self.obj_of[slot as usize]);
            self.set.remove_slot(slot);
            self.free.push(slot);
            delta.removed += 1;
        }
        self.last_delta = delta;
        #[cfg(debug_assertions)]
        self.debug_verify_against_rebuild();
        &self.set
    }

    /// Allocates a slot (recycled or fresh), writes `rect` into it, and
    /// keeps the per-slot side tables sized with the slab.
    fn place(&mut self, rect: Rect) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => self.set.rects.len() as u32,
        };
        self.set.insert_slot(slot, rect);
        let slab = self.set.rects.len();
        if self.stamp.len() < slab {
            self.stamp.resize(slab, 0);
            self.obj_of.resize(slab, u64::MAX);
        }
        slot
    }

    /// Structural self-check: registry, stamps, free list, and grid all
    /// agree. `Err` describes the first violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        let slab = self.set.rects.len();
        if self.stamp.len() != slab || self.obj_of.len() != slab {
            return Err(format!(
                "side tables out of step with slab: {} stamps / {} objs for {slab} slots",
                self.stamp.len(),
                self.obj_of.len()
            ));
        }
        if self.set.live != self.slot_of.len() + self.overflow.len() {
            return Err(format!(
                "live count {} != {} registered + {} overflow",
                self.set.live,
                self.slot_of.len(),
                self.overflow.len()
            ));
        }
        // Every slot is exactly one of: registered, overflow, free.
        let mut role = vec![0u8; slab];
        for (&obj, &slot) in self.slot_of.iter() {
            let s = slot as usize;
            if s >= slab {
                return Err(format!("object {obj} registered to out-of-range slot {slot}"));
            }
            if self.obj_of[s] != obj {
                return Err(format!("slot {slot} reverse-maps to {} not {obj}", self.obj_of[s]));
            }
            role[s] += 1;
        }
        for &slot in self.overflow.iter().chain(self.free.iter()) {
            let s = slot as usize;
            if s >= slab {
                return Err(format!("slot {slot} out of range in overflow/free list"));
            }
            role[s] += 1;
        }
        if let Some(slot) = role.iter().position(|&r| r != 1) {
            return Err(format!("slot {slot} claimed by {} roles (want exactly 1)", role[slot]));
        }
        // Grid <-> slab cross-check: each live slot appears exactly once
        // in each covered cell and nowhere else, no cell list is empty.
        let mut refs: FxHashMap<u32, usize> = FxHashMap::default();
        for (key, ids) in self.set.grid.iter() {
            if ids.is_empty() {
                return Err(format!("empty cell list left behind at {key:?}"));
            }
            for &id in ids {
                *refs.entry(id).or_default() += 1;
            }
        }
        let free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        for slot in 0..slab as u32 {
            let expected = if free.contains(&slot) {
                0
            } else {
                let r = &self.set.rects[slot as usize];
                let ((lx, ly), (hx, hy)) = self.set.coverage(r);
                ((hx - lx + 1) * (hy - ly + 1)) as usize
            };
            let got = refs.get(&slot).copied().unwrap_or(0);
            if got != expected {
                return Err(format!("slot {slot} referenced by {got} cells, expected {expected}"));
            }
        }
        Ok(())
    }

    /// Debug-build oracle: the incrementally maintained set must be
    /// query-equivalent to a from-scratch build of the live rects. Since
    /// every query is a pure function of per-cell rect multisets (see
    /// [`FsaSet`]), comparing those multisets cell by cell *is* a
    /// complete equivalence check — every test that drives epochs
    /// through the cache exercises it for free.
    #[cfg(debug_assertions)]
    fn debug_verify_against_rebuild(&self) {
        if let Err(e) = self.check_consistency() {
            panic!("FsaCache inconsistent after update: {e}");
        }
        let live: Vec<Rect> = self
            .slot_of
            .values()
            .chain(self.overflow.iter())
            .map(|&s| self.set.rects[s as usize])
            .collect();
        let oracle = FsaSet::build(live, self.set.cell);
        type CanonCells = Vec<((i64, i64), Vec<[u64; 4]>)>;
        let canon = |set: &FsaSet| -> CanonCells {
            let mut cells: Vec<_> = set
                .grid
                .iter()
                .map(|(&key, ids)| {
                    let mut rects: Vec<[u64; 4]> = ids
                        .iter()
                        .map(|&i| {
                            let r = &set.rects[i as usize];
                            [
                                r.lo().x.to_bits(),
                                r.lo().y.to_bits(),
                                r.hi().x.to_bits(),
                                r.hi().y.to_bits(),
                            ]
                        })
                        .collect();
                    rects.sort_unstable();
                    (key, rects)
                })
                .collect();
            cells.sort_unstable();
            cells
        };
        assert_eq!(
            canon(&self.set),
            canon(&oracle),
            "incremental FsaSet diverged from from-scratch rebuild"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// The paper's Example 2 / Figure 5 layout: three FSAs with a common
    /// triple intersection.
    fn example2() -> Vec<Rect> {
        vec![
            r(0.0, 0.0, 10.0, 10.0), // R1
            r(6.0, 4.0, 16.0, 14.0), // R2
            r(4.0, 6.0, 14.0, 16.0), // R3
        ]
    }

    #[test]
    fn stab_counts_match_example2() {
        let set = FsaSet::build(example2(), 8.0);
        assert_eq!(set.stab_count(&Point::new(1.0, 1.0)), 1); // R1 only
        assert_eq!(set.stab_count(&Point::new(15.0, 5.0)), 1); // R2 only
        assert_eq!(set.stab_count(&Point::new(8.0, 5.0)), 2); // R12
        assert_eq!(set.stab_count(&Point::new(5.0, 8.0)), 2); // R13
        assert_eq!(set.stab_count(&Point::new(12.0, 12.0)), 2); // R23
        assert_eq!(set.stab_count(&Point::new(8.0, 8.0)), 3); // R123
        assert_eq!(set.stab_count(&Point::new(-5.0, -5.0)), 0);
    }

    /// Pins the stamped-bitmap query's contract: ascending, deduped
    /// output on every call, with the generation counter isolating
    /// repeated and interleaved queries from each other.
    #[test]
    fn intersecting_order_is_ascending_across_repeated_calls() {
        // Many identical rects over tiny cells: each id lands in many
        // cells, so the stamp dedup does real work, and the stamp range
        // scan must still emit ids ascending.
        let mut rects = example2();
        rects.extend(example2()); // ids 3..6 duplicate 0..3
        let set = FsaSet::build(rects, 2.0);
        for _ in 0..3 {
            assert_eq!(set.intersecting(&r(7.0, 7.0, 9.0, 9.0)), vec![0, 1, 2, 3, 4, 5]);
            // A disjoint query between identical ones must not inherit
            // stale stamps from the previous generation.
            assert!(set.intersecting(&r(100.0, 100.0, 101.0, 101.0)).is_empty());
            assert_eq!(set.intersecting(&r(0.0, 0.0, 1.0, 1.0)), vec![0, 3]);
            // Interleave the sweep (which shares the scratch) and
            // re-check: the hit list must be rebuilt, not reused.
            let _ = set.max_depth_region(&r(0.0, 0.0, 16.0, 16.0));
            assert_eq!(set.intersecting(&r(15.0, 5.0, 15.5, 5.5)), vec![1, 4]);
        }
    }

    #[test]
    fn parallel_build_matches_sequential_at_every_thread_count() {
        // 300 deterministic rects; compare every query the strategy
        // issues between the sequential build and parallel builds.
        let mut state = 5u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 2000) as f64 / 10.0
        };
        let rects: Vec<Rect> = (0..300)
            .map(|_| {
                let x = rand();
                let y = rand();
                r(x, y, x + rand() * 0.1 + 1.0, y + rand() * 0.1 + 1.0)
            })
            .collect();
        let sequential = FsaSet::build(rects.clone(), 15.0);
        for threads in [2, 3, 8] {
            let parallel = FsaSet::build_parallel(rects.clone(), 15.0, threads);
            for probe in 0..60 {
                let q = r(
                    (probe * 7 % 200) as f64,
                    (probe * 13 % 200) as f64,
                    (probe * 7 % 200) as f64 + 8.0,
                    (probe * 13 % 200) as f64 + 8.0,
                );
                assert_eq!(
                    sequential.intersecting(&q),
                    parallel.intersecting(&q),
                    "intersecting diverged at {threads} threads"
                );
                assert_eq!(
                    sequential.max_depth_region(&q),
                    parallel.max_depth_region(&q),
                    "max_depth diverged at {threads} threads"
                );
                assert_eq!(
                    sequential.stab_count(&q.centroid()),
                    parallel.stab_count(&q.centroid()),
                    "stab diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn max_depth_region_finds_triple_overlap() {
        let set = FsaSet::build(example2(), 8.0);
        // Clipped to R1: the deepest region is R123 = [6,10]x[6,10].
        let clip = r(0.0, 0.0, 10.0, 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, r(6.0, 6.0, 10.0, 10.0));
        // The centroid (the paper's generated vertex) is inside all
        // three FSAs and inside the clip.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), 3);
        assert!(clip.contains(&c));
    }

    #[test]
    fn max_depth_region_respects_clip() {
        let set = FsaSet::build(example2(), 8.0);
        // Clip to a corner of R1 away from the triple overlap.
        let clip = r(0.0, 0.0, 3.0, 3.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 1);
        assert!(clip.contains_rect(&region));
    }

    #[test]
    fn max_depth_none_when_disjoint() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 1.0, 1.0)], 4.0);
        assert!(set.max_depth_region(&r(10.0, 10.0, 11.0, 11.0)).is_none());
    }

    #[test]
    fn intersecting_filters_and_dedups() {
        let set = FsaSet::build(example2(), 2.0); // small cells force dedup
        let ids = set.intersecting(&r(7.0, 7.0, 9.0, 9.0));
        assert_eq!(ids, vec![0, 1, 2]);
        let ids = set.intersecting(&r(0.0, 0.0, 1.0, 1.0));
        assert_eq!(ids, vec![0]);
        let ids = set.intersecting(&r(100.0, 100.0, 101.0, 101.0));
        assert!(ids.is_empty());
    }

    #[test]
    fn touching_rects_overlap_at_the_shared_edge() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 5.0, 5.0), r(5.0, 0.0, 10.0, 5.0)], 4.0);
        // Depth 2 exists only on the shared line x = 5.
        let (region, depth) = set.max_depth_region(&r(0.0, 0.0, 10.0, 5.0)).unwrap();
        assert_eq!(depth, 2);
        assert_eq!(region.lo().x, 5.0);
        assert_eq!(region.hi().x, 5.0);
        assert_eq!(set.stab_count(&Point::new(5.0, 2.0)), 2);
    }

    #[test]
    fn identical_rects_stack() {
        let q = r(2.0, 2.0, 4.0, 4.0);
        let set = FsaSet::build(vec![q, q, q], 4.0);
        let (region, depth) = set.max_depth_region(&q).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, q);
    }

    /// Drives a cache and a from-scratch build through the same batches
    /// and asserts query equivalence on a probe set. (Debug builds also
    /// verify the per-cell multisets after every update internally.)
    fn assert_cache_matches_rebuild(cache: &mut FsaCache, batch: &[(u64, Rect)], cell: f64) {
        let inc = cache.update(batch.iter().copied());
        let oracle = FsaSet::build(batch.iter().map(|&(_, r)| r).collect(), cell);
        assert_eq!(inc.len(), oracle.len());
        // Slot ids are not comparable across the two sets (the cache
        // recycles slots); only rect multisets are observable.
        let rects_of = |set: &FsaSet, q: &Rect| -> Vec<(u64, u64, u64, u64)> {
            let mut v: Vec<_> = set
                .intersecting(q)
                .iter()
                .map(|&i| {
                    let r = &set.rects[i as usize];
                    (r.lo().x.to_bits(), r.lo().y.to_bits(), r.hi().x.to_bits(), r.hi().y.to_bits())
                })
                .collect();
            v.sort_unstable();
            v
        };
        for probe in 0..40 {
            let q = r(
                (probe * 11 % 25) as f64 - 2.0,
                (probe * 17 % 25) as f64 - 2.0,
                (probe * 11 % 25) as f64 + 3.0,
                (probe * 17 % 25) as f64 + 3.0,
            );
            assert_eq!(rects_of(inc, &q), rects_of(&oracle, &q), "intersecting({q:?})");
            assert_eq!(
                inc.max_depth_region(&q),
                oracle.max_depth_region(&q),
                "max_depth_region({q:?})"
            );
            assert_eq!(inc.stab_count(&q.centroid()), oracle.stab_count(&q.centroid()));
        }
        cache.check_consistency().expect("cache consistent");
    }

    #[test]
    fn cache_tracks_add_move_remove_churn() {
        let cell = 4.0;
        let mut cache = FsaCache::new(cell);
        // Epoch 1: three objects.
        let b1: Vec<(u64, Rect)> = vec![
            (7, r(0.0, 0.0, 2.0, 2.0)),
            (8, r(5.0, 5.0, 7.0, 7.0)),
            (9, r(10.0, 0.0, 12.0, 2.0)),
        ];
        assert_cache_matches_rebuild(&mut cache, &b1, cell);
        assert_eq!(cache.last_delta(), FsaDelta { inserted: 3, ..FsaDelta::default() });
        // Epoch 2: 7 unchanged, 8 nudged within its cells, 9 teleports
        // across cells, 11 appears.
        let b2: Vec<(u64, Rect)> = vec![
            (7, r(0.0, 0.0, 2.0, 2.0)),
            (8, r(5.1, 5.1, 7.1, 7.1)),
            (9, r(0.0, 10.0, 2.0, 12.0)),
            (11, r(6.0, 6.0, 8.0, 8.0)),
        ];
        assert_cache_matches_rebuild(&mut cache, &b2, cell);
        assert_eq!(
            cache.last_delta(),
            FsaDelta {
                unchanged: 1,
                moved_in_place: 1,
                moved_rekeyed: 1,
                inserted: 1,
                ..FsaDelta::default()
            }
        );
        // Epoch 3: 7 and 11 fall silent; 8 unchanged, 9 moves back.
        let b3: Vec<(u64, Rect)> = vec![(8, r(5.1, 5.1, 7.1, 7.1)), (9, r(10.0, 0.0, 12.0, 2.0))];
        assert_cache_matches_rebuild(&mut cache, &b3, cell);
        assert_eq!(cache.last_delta().removed, 2);
        // Epoch 4: everyone gone.
        assert_cache_matches_rebuild(&mut cache, &[], cell);
        assert!(cache.update(std::iter::empty()).is_empty());
    }

    #[test]
    fn cache_duplicate_ids_keep_multiset_faithful() {
        let cell = 4.0;
        let mut cache = FsaCache::new(cell);
        // Object 3 reports twice in one batch (two crossings in one
        // epoch): both rects must count, e.g. for stacking depth.
        let b1: Vec<(u64, Rect)> = vec![
            (3, r(1.0, 1.0, 3.0, 3.0)),
            (3, r(1.0, 1.0, 3.0, 3.0)),
            (4, r(2.0, 2.0, 4.0, 4.0)),
        ];
        let set = cache.update(b1.iter().copied());
        assert_eq!(set.len(), 3);
        assert_eq!(set.stab_count(&Point::new(2.0, 2.0)), 3);
        assert_cache_matches_rebuild(&mut cache, &b1, cell);
        // Next epoch the duplicate collapses to one occurrence; the
        // overflow slot must expire with its epoch.
        let b2: Vec<(u64, Rect)> = vec![(3, r(1.0, 1.0, 3.0, 3.0))];
        assert_cache_matches_rebuild(&mut cache, &b2, cell);
        assert_eq!(cache.update(b2.iter().copied()).stab_count(&Point::new(2.0, 2.0)), 1);
    }

    #[test]
    fn cache_random_churn_matches_rebuild_every_epoch() {
        let cell = 3.0;
        let mut cache = FsaCache::new(cell);
        let mut state = 0xfeed_beefu64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..30 {
            // Random population of up to 40 objects, ids drawn from a
            // small pool so objects persist, vanish, and return; small
            // random displacements make same-coverage moves common.
            let n = (rand() % 40) as usize;
            let batch: Vec<(u64, Rect)> = (0..n)
                .map(|_| {
                    let id = rand() % 16;
                    let x = (rand() % 200) as f64 / 10.0;
                    let y = (rand() % 200) as f64 / 10.0;
                    let w = (rand() % 30) as f64 / 10.0 + 0.5;
                    (id, r(x, y, x + w, y + w))
                })
                .collect();
            assert_cache_matches_rebuild(&mut cache, &batch, cell);
        }
    }

    #[test]
    fn depth_matches_brute_force_grid_scan() {
        // Deterministic pseudo-random rectangles; compare the sweep's
        // depth to brute-force point sampling.
        let mut state = 99u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        let rects: Vec<Rect> = (0..30)
            .map(|_| {
                let x = rand();
                let y = rand();
                let w = rand() * 0.2 + 1.0;
                let h = rand() * 0.2 + 1.0;
                r(x, y, x + w, y + h)
            })
            .collect();
        let clip = r(0.0, 0.0, 120.0, 120.0);
        let set = FsaSet::build(rects.clone(), 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        // The reported region really has that depth.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), depth, "centroid depth mismatch");
        // No sampled point exceeds it.
        let mut max_sampled = 0;
        for i in 0..100 {
            for j in 0..100 {
                let p = Point::new(i as f64 * 1.2, j as f64 * 1.2);
                max_sampled = max_sampled.max(set.stab_count(&p));
            }
        }
        assert!(depth >= max_sampled, "sweep depth {depth} < sampled {max_sampled}");
    }
}
