//! FSA-overlap analysis (Alg. 2 lines 8-12 and 23-34).
//!
//! The paper materializes `Rall`, the set of all intersections among the
//! reporting objects' FSAs, each tagged with the number of FSAs it lies
//! in. `Rall` is only ever consumed through two queries, both answered
//! exactly here without enumerating the (worst-case exponential) power
//! set:
//!
//! * *smallest overlap containing a vertex* (line 24): its count equals
//!   the **stabbing depth** — the number of FSAs containing the vertex;
//! * *highest-count overlap intersecting an FSA* (lines 28-32): the
//!   **maximum-depth region** of the rectangle arrangement, computed by a
//!   slab sweep and clipped to the object's own FSA so the generated
//!   vertex is always valid for the reporting object (see DESIGN.md).

use crate::fxhash::FxHashMap;
use crate::geometry::{Point, Rect};
use std::cell::RefCell;

/// Reusable query scratch: the stamped `seen` bitmap behind the
/// allocation- and sort-free [`FsaSet::intersecting`], plus the buffers
/// of the [`FsaSet::max_depth_region`] slab sweep. Lives in a `RefCell`
/// so the epoch-scoped set keeps its shared-query API; Phase B (the
/// only consumer) is sequential, and the set is never shared across
/// threads after construction.
#[derive(Clone, Debug, Default)]
struct QueryScratch {
    /// Per-rect generation stamps: `stamps[i] == gen` means rect `i` was
    /// already accepted by the current `intersecting` call.
    stamps: Vec<u32>,
    /// Current stamp generation (bumped per call; stamps are cleared
    /// only on the rare wrap-around).
    gen: u32,
    /// Accepted rect indices, ascending.
    hits: Vec<u32>,
    /// `max_depth_region`: rects clipped to the query window.
    local: Vec<Rect>,
    /// `max_depth_region`: candidate slab boundaries.
    xs: Vec<f64>,
    /// `max_depth_region`: the y-sweep event buffer, reused across every
    /// slab of every call instead of reallocated per slab.
    events: Vec<(f64, i32)>,
}

/// An epoch-scoped set of FSA rectangles with depth queries.
#[derive(Clone, Debug)]
pub struct FsaSet {
    rects: Vec<Rect>,
    cell: f64,
    grid: FxHashMap<(i64, i64), Vec<u32>>,
    scratch: RefCell<QueryScratch>,
}

impl FsaSet {
    /// Builds the set. `cell` should be on the order of an FSA diameter
    /// (e.g. `2 eps`); it only affects performance, not results.
    pub fn build(rects: Vec<Rect>, cell: f64) -> Self {
        Self::build_parallel(rects, cell, 1)
    }

    /// [`FsaSet::build`] rasterizing on up to `threads` scoped worker
    /// threads. Rects are split into contiguous index chunks, each chunk
    /// rasterized into its own sub-grid, and the sub-grids merged in
    /// chunk order — so every cell's id list is ascending exactly as the
    /// sequential build produces, and the result is bit-for-bit
    /// identical at every thread count.
    pub fn build_parallel(rects: Vec<Rect>, cell: f64, threads: usize) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell must be positive");
        // One chunk per thread, but never spawn for trivially small
        // epochs where rasterization is cheaper than a thread launch.
        let threads = threads.max(1).min(rects.len() / 64).max(1);
        let mut grid: FxHashMap<(i64, i64), Vec<u32>> = FxHashMap::default();
        if threads == 1 {
            Self::rasterize(&rects, cell, 0, &mut grid);
        } else {
            let chunk = rects.len().div_ceil(threads);
            let mut parts: Vec<FxHashMap<(i64, i64), Vec<u32>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = rects
                    .chunks(chunk)
                    .enumerate()
                    .map(|(c, slice)| {
                        scope.spawn(move || {
                            let mut part = FxHashMap::default();
                            Self::rasterize(slice, cell, (c * chunk) as u32, &mut part);
                            part
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("rasterizer panicked")).collect()
            });
            // Chunks hold disjoint ascending id ranges; appending them in
            // chunk order keeps every cell's list ascending, matching the
            // sequential single-pass build.
            for part in &mut parts {
                for (key, ids) in part.drain() {
                    grid.entry(key).or_default().extend(ids);
                }
            }
            debug_assert!(grid.values().all(|ids| ids.windows(2).all(|w| w[0] < w[1])));
        }
        FsaSet { rects, cell, grid, scratch: RefCell::new(QueryScratch::default()) }
    }

    /// Rasterizes `rects` (whose global indices start at `base`) into
    /// `grid`: each rect's index is pushed into every cell it covers.
    fn rasterize(rects: &[Rect], cell: f64, base: u32, grid: &mut FxHashMap<(i64, i64), Vec<u32>>) {
        for (i, r) in rects.iter().enumerate() {
            let (lx, ly) = Self::key(cell, &r.lo());
            let (hx, hy) = Self::key(cell, &r.hi());
            for cx in lx..=hx {
                for cy in ly..=hy {
                    grid.entry((cx, cy)).or_default().push(base + i as u32);
                }
            }
        }
    }

    #[inline]
    fn key(cell: f64, p: &Point) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of FSAs in the set.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Stabbing depth at `p`: how many FSAs contain it. Equals the count
    /// of the smallest `Rall` region containing `p`.
    pub fn stab_count(&self, p: &Point) -> usize {
        let key = Self::key(self.cell, p);
        let Some(candidates) = self.grid.get(&key) else { return 0 };
        candidates.iter().filter(|&&i| self.rects[i as usize].contains(p)).count()
    }

    /// Indices of FSAs intersecting `r` (deduplicated, ascending).
    /// Allocating convenience wrapper over the stamped internal query
    /// (tests and diagnostics; the hot loop goes through
    /// [`FsaSet::max_depth_region`], which reads the scratch directly).
    pub fn intersecting(&self, r: &Rect) -> Vec<u32> {
        let mut s = self.scratch.borrow_mut();
        self.collect_intersecting(r, &mut s);
        let mut out = s.hits.clone();
        out.sort_unstable();
        out
    }

    /// The stamped dedup query behind [`FsaSet::intersecting`]: no
    /// allocation and no sort in the steady state. Every candidate id is
    /// stamped with the call's generation on first acceptance and
    /// pushed once, in grid-walk encounter order — deterministic (the
    /// cell walk and per-cell id lists are fixed by construction) but
    /// not ascending; the only order-sensitive consumer is the public
    /// wrapper above, which sorts its own copy. O(candidates), never a
    /// pass over the whole id space.
    fn collect_intersecting(&self, r: &Rect, s: &mut QueryScratch) {
        s.hits.clear();
        if s.stamps.len() < self.rects.len() {
            s.stamps.resize(self.rects.len(), 0);
        }
        s.gen = match s.gen.checked_add(1) {
            Some(g) => g,
            None => {
                s.stamps.fill(0);
                1
            }
        };
        let (lx, ly) = Self::key(self.cell, &r.lo());
        let (hx, hy) = Self::key(self.cell, &r.hi());
        for cx in lx..=hx {
            for cy in ly..=hy {
                let Some(v) = self.grid.get(&(cx, cy)) else { continue };
                for &i in v {
                    if s.stamps[i as usize] != s.gen && self.rects[i as usize].intersects(r) {
                        s.stamps[i as usize] = s.gen;
                        s.hits.push(i);
                    }
                }
            }
        }
    }

    /// The deepest region of the arrangement restricted to `clip`: a
    /// rectangle of maximal stabbing depth inside `clip`, together with
    /// that depth. Returns `None` when no FSA intersects `clip`.
    ///
    /// Closed-set semantics throughout: rectangles touching only at an
    /// edge still overlap there, matching [`Rect::intersects`].
    pub fn max_depth_region(&self, clip: &Rect) -> Option<(Rect, usize)> {
        let mut scratch = self.scratch.borrow_mut();
        self.collect_intersecting(clip, &mut scratch);
        let QueryScratch { hits, local, xs, events, .. } = &mut *scratch;
        local.clear();
        local.extend(hits.iter().map(|&i| {
            self.rects[i as usize]
                .intersection(clip)
                .expect("collect_intersecting guarantees overlap")
        }));
        if local.is_empty() {
            return None;
        }
        let local: &[Rect] = local;
        // Candidate x-slabs: between (and at) every pair of consecutive
        // distinct x-boundaries.
        xs.clear();
        xs.extend(local.iter().flat_map(|r| [r.lo().x, r.hi().x]));
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut best: Option<(Rect, usize)> = None;
        let mut consider = |slab_lo: f64, slab_hi: f64, events: &mut Vec<(f64, i32)>| {
            // Rects whose x-range covers the whole slab (closed).
            events.clear();
            for r in local {
                if r.lo().x <= slab_lo && slab_hi <= r.hi().x {
                    events.push((r.lo().y, 1));
                    events.push((r.hi().y, -1));
                }
            }
            if events.is_empty() {
                return;
            }
            // Closed sets: starts before ends at equal y so touching
            // intervals count as overlapping at the shared line.
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            // Pass 1: the maximum depth in this slab.
            let mut depth = 0i32;
            let mut d_max = 0i32;
            for &(_, delta) in events.iter() {
                depth += delta;
                d_max = d_max.max(depth);
            }
            if d_max <= 0 || best.as_ref().is_some_and(|&(_, bd)| d_max as usize <= bd) {
                return;
            }
            // Pass 2: the y-extent of the first maximal stretch.
            let mut depth = 0i32;
            let mut y_lo = f64::NAN;
            let mut y_hi = f64::NAN;
            for &(y, delta) in events.iter() {
                depth += delta;
                if y_lo.is_nan() && depth == d_max {
                    y_lo = y;
                } else if !y_lo.is_nan() && depth < d_max {
                    y_hi = y;
                    break;
                }
            }
            if y_hi.is_nan() {
                y_hi = y_lo;
            }
            let region = Rect::new(Point::new(slab_lo, y_lo), Point::new(slab_hi, y_hi.max(y_lo)));
            best = Some((region, d_max as usize));
        };

        // Full-width slabs first: at equal depth a proper slab beats a
        // degenerate boundary line (larger region, better centroid).
        for i in 0..xs.len().saturating_sub(1) {
            consider(xs[i], xs[i + 1], events);
        }
        // Boundary lines catch depth achieved only where rectangles
        // touch edge-to-edge; they replace the best only when strictly
        // deeper.
        for &x in xs.iter() {
            consider(x, x, events);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// The paper's Example 2 / Figure 5 layout: three FSAs with a common
    /// triple intersection.
    fn example2() -> Vec<Rect> {
        vec![
            r(0.0, 0.0, 10.0, 10.0), // R1
            r(6.0, 4.0, 16.0, 14.0), // R2
            r(4.0, 6.0, 14.0, 16.0), // R3
        ]
    }

    #[test]
    fn stab_counts_match_example2() {
        let set = FsaSet::build(example2(), 8.0);
        assert_eq!(set.stab_count(&Point::new(1.0, 1.0)), 1); // R1 only
        assert_eq!(set.stab_count(&Point::new(15.0, 5.0)), 1); // R2 only
        assert_eq!(set.stab_count(&Point::new(8.0, 5.0)), 2); // R12
        assert_eq!(set.stab_count(&Point::new(5.0, 8.0)), 2); // R13
        assert_eq!(set.stab_count(&Point::new(12.0, 12.0)), 2); // R23
        assert_eq!(set.stab_count(&Point::new(8.0, 8.0)), 3); // R123
        assert_eq!(set.stab_count(&Point::new(-5.0, -5.0)), 0);
    }

    /// Pins the stamped-bitmap query's contract: ascending, deduped
    /// output on every call, with the generation counter isolating
    /// repeated and interleaved queries from each other.
    #[test]
    fn intersecting_order_is_ascending_across_repeated_calls() {
        // Many identical rects over tiny cells: each id lands in many
        // cells, so the stamp dedup does real work, and the stamp range
        // scan must still emit ids ascending.
        let mut rects = example2();
        rects.extend(example2()); // ids 3..6 duplicate 0..3
        let set = FsaSet::build(rects, 2.0);
        for _ in 0..3 {
            assert_eq!(set.intersecting(&r(7.0, 7.0, 9.0, 9.0)), vec![0, 1, 2, 3, 4, 5]);
            // A disjoint query between identical ones must not inherit
            // stale stamps from the previous generation.
            assert!(set.intersecting(&r(100.0, 100.0, 101.0, 101.0)).is_empty());
            assert_eq!(set.intersecting(&r(0.0, 0.0, 1.0, 1.0)), vec![0, 3]);
            // Interleave the sweep (which shares the scratch) and
            // re-check: the hit list must be rebuilt, not reused.
            let _ = set.max_depth_region(&r(0.0, 0.0, 16.0, 16.0));
            assert_eq!(set.intersecting(&r(15.0, 5.0, 15.5, 5.5)), vec![1, 4]);
        }
    }

    #[test]
    fn parallel_build_matches_sequential_at_every_thread_count() {
        // 300 deterministic rects; compare every query the strategy
        // issues between the sequential build and parallel builds.
        let mut state = 5u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 2000) as f64 / 10.0
        };
        let rects: Vec<Rect> = (0..300)
            .map(|_| {
                let x = rand();
                let y = rand();
                r(x, y, x + rand() * 0.1 + 1.0, y + rand() * 0.1 + 1.0)
            })
            .collect();
        let sequential = FsaSet::build(rects.clone(), 15.0);
        for threads in [2, 3, 8] {
            let parallel = FsaSet::build_parallel(rects.clone(), 15.0, threads);
            for probe in 0..60 {
                let q = r(
                    (probe * 7 % 200) as f64,
                    (probe * 13 % 200) as f64,
                    (probe * 7 % 200) as f64 + 8.0,
                    (probe * 13 % 200) as f64 + 8.0,
                );
                assert_eq!(
                    sequential.intersecting(&q),
                    parallel.intersecting(&q),
                    "intersecting diverged at {threads} threads"
                );
                assert_eq!(
                    sequential.max_depth_region(&q),
                    parallel.max_depth_region(&q),
                    "max_depth diverged at {threads} threads"
                );
                assert_eq!(
                    sequential.stab_count(&q.centroid()),
                    parallel.stab_count(&q.centroid()),
                    "stab diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn max_depth_region_finds_triple_overlap() {
        let set = FsaSet::build(example2(), 8.0);
        // Clipped to R1: the deepest region is R123 = [6,10]x[6,10].
        let clip = r(0.0, 0.0, 10.0, 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, r(6.0, 6.0, 10.0, 10.0));
        // The centroid (the paper's generated vertex) is inside all
        // three FSAs and inside the clip.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), 3);
        assert!(clip.contains(&c));
    }

    #[test]
    fn max_depth_region_respects_clip() {
        let set = FsaSet::build(example2(), 8.0);
        // Clip to a corner of R1 away from the triple overlap.
        let clip = r(0.0, 0.0, 3.0, 3.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        assert_eq!(depth, 1);
        assert!(clip.contains_rect(&region));
    }

    #[test]
    fn max_depth_none_when_disjoint() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 1.0, 1.0)], 4.0);
        assert!(set.max_depth_region(&r(10.0, 10.0, 11.0, 11.0)).is_none());
    }

    #[test]
    fn intersecting_filters_and_dedups() {
        let set = FsaSet::build(example2(), 2.0); // small cells force dedup
        let ids = set.intersecting(&r(7.0, 7.0, 9.0, 9.0));
        assert_eq!(ids, vec![0, 1, 2]);
        let ids = set.intersecting(&r(0.0, 0.0, 1.0, 1.0));
        assert_eq!(ids, vec![0]);
        let ids = set.intersecting(&r(100.0, 100.0, 101.0, 101.0));
        assert!(ids.is_empty());
    }

    #[test]
    fn touching_rects_overlap_at_the_shared_edge() {
        let set = FsaSet::build(vec![r(0.0, 0.0, 5.0, 5.0), r(5.0, 0.0, 10.0, 5.0)], 4.0);
        // Depth 2 exists only on the shared line x = 5.
        let (region, depth) = set.max_depth_region(&r(0.0, 0.0, 10.0, 5.0)).unwrap();
        assert_eq!(depth, 2);
        assert_eq!(region.lo().x, 5.0);
        assert_eq!(region.hi().x, 5.0);
        assert_eq!(set.stab_count(&Point::new(5.0, 2.0)), 2);
    }

    #[test]
    fn identical_rects_stack() {
        let q = r(2.0, 2.0, 4.0, 4.0);
        let set = FsaSet::build(vec![q, q, q], 4.0);
        let (region, depth) = set.max_depth_region(&q).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(region, q);
    }

    #[test]
    fn depth_matches_brute_force_grid_scan() {
        // Deterministic pseudo-random rectangles; compare the sweep's
        // depth to brute-force point sampling.
        let mut state = 99u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        let rects: Vec<Rect> = (0..30)
            .map(|_| {
                let x = rand();
                let y = rand();
                let w = rand() * 0.2 + 1.0;
                let h = rand() * 0.2 + 1.0;
                r(x, y, x + w, y + h)
            })
            .collect();
        let clip = r(0.0, 0.0, 120.0, 120.0);
        let set = FsaSet::build(rects.clone(), 10.0);
        let (region, depth) = set.max_depth_region(&clip).unwrap();
        // The reported region really has that depth.
        let c = region.centroid();
        assert_eq!(set.stab_count(&c), depth, "centroid depth mismatch");
        // No sampled point exceeds it.
        let mut max_sampled = 0;
        for i in 0..100 {
            for j in 0..100 {
                let p = Point::new(i as f64 * 1.2, j as f64 * 1.2);
                max_sampled = max_sampled.max(set.stab_count(&p));
            }
        }
        assert!(depth >= max_sampled, "sweep depth {depth} < sampled {max_sampled}");
    }
}
