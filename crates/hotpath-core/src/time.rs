//! Discrete time: timestamps, sliding windows, and epochs.
//!
//! The paper assumes time is discrete with all timestamps multiples of a
//! granule (Section 3.1), a sliding window of `W` time units restricting
//! hotness (Problem 1), and client/coordinator communication batched at
//! *epochs* of `Lambda` time units (Section 3.2).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete timestamp, counted in time granules since the start of the
/// stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp zero (stream start).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Raw granule count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The timestamp `delta` granules later.
    #[inline]
    pub fn after(self, delta: u64) -> Timestamp {
        Timestamp(self.0 + delta)
    }

    /// The timestamp `delta` granules earlier, saturating at zero.
    #[inline]
    pub fn before(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta))
    }

    /// Granules elapsed from `earlier` to `self` (zero when `earlier` is
    /// in the future).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Fractional position of `self` within `[start, end]`, used by the
    /// SSA projection. `end` must be strictly after `start`.
    #[inline]
    pub fn fraction_of(self, start: Timestamp, end: Timestamp) -> f64 {
        debug_assert!(end > start, "degenerate interval [{start:?}, {end:?}]");
        (self.0 as f64 - start.0 as f64) / (end.0 as f64 - start.0 as f64)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<u64> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0.checked_sub(rhs.0).expect("timestamp subtraction underflow")
    }
}

/// A closed time interval `[start, end]` with `start <= end`; a motion
/// path is always paired with the interval during which it was crossed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TimeInterval {
    /// Inclusive start.
    pub start: Timestamp,
    /// Inclusive end.
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates `[start, end]`.
    ///
    /// # Panics
    /// Panics when `start > end`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "interval out of order: [{start:?}, {end:?}]");
        TimeInterval { start, end }
    }

    /// Number of granules covered (zero for instantaneous intervals).
    #[inline]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// True when `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// The timestamp at fractional position `lambda` (rounded to the
    /// nearest granule), mirroring `t(lambda) = ta + lambda (tb - ta)`.
    #[inline]
    pub fn at_fraction(&self, lambda: f64) -> Timestamp {
        debug_assert!((0.0..=1.0).contains(&lambda));
        Timestamp(self.start.0 + (lambda * self.duration() as f64).round() as u64)
    }
}

/// The sliding time window of size `W`: only crossings whose exit
/// timestamp is within the last `W` granules count toward hotness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlidingWindow {
    /// Window length `W` in granules.
    pub len: u64,
}

impl SlidingWindow {
    /// Creates a window of `len` granules; `len` must be positive.
    #[inline]
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "window length must be positive");
        SlidingWindow { len }
    }

    /// Expiry time of a crossing that exited at `te`: the tuple
    /// `<te + W, id>` is enqueued on the expiry wheel at this timestamp
    /// (Section 5.2).
    #[inline]
    pub fn expiry_of(&self, te: Timestamp) -> Timestamp {
        te.after(self.len)
    }

    /// True when a crossing with exit time `te` still counts at `now`.
    ///
    /// A crossing expires exactly when `now` reaches `te + W`, i.e. the
    /// half-open validity interval is `[te, te + W)`.
    #[inline]
    pub fn is_live(&self, te: Timestamp, now: Timestamp) -> bool {
        now < self.expiry_of(te)
    }
}

/// The epoch clock: objects listen for coordinator messages only every
/// `Lambda` granules (Section 3.2). Epoch boundaries are the timestamps
/// divisible by `Lambda`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochClock {
    /// Epoch length `Lambda` in granules.
    pub lambda: u64,
}

impl EpochClock {
    /// Creates an epoch clock with period `lambda > 0`.
    #[inline]
    pub fn new(lambda: u64) -> Self {
        assert!(lambda > 0, "epoch length must be positive");
        EpochClock { lambda }
    }

    /// True when `t` is an epoch boundary (coordinator replies are
    /// delivered at these instants).
    #[inline]
    pub fn is_epoch(&self, t: Timestamp) -> bool {
        t.0.is_multiple_of(self.lambda)
    }

    /// The first epoch boundary strictly after `t`.
    #[inline]
    pub fn next_epoch_after(&self, t: Timestamp) -> Timestamp {
        Timestamp((t.0 / self.lambda + 1) * self.lambda)
    }

    /// Ordinal number of the epoch containing `t` (epoch `e` spans
    /// `[e * lambda, (e+1) * lambda)`).
    #[inline]
    pub fn epoch_index(&self, t: Timestamp) -> u64 {
        t.0 / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.after(5), Timestamp(15));
        assert_eq!(t.before(4), Timestamp(6));
        assert_eq!(t.before(100), Timestamp(0));
        assert_eq!(Timestamp(17).since(t), 7);
        assert_eq!(t.since(Timestamp(17)), 0);
        assert_eq!(t + 3, Timestamp(13));
        assert_eq!(Timestamp(13) - t, 3);
        let mut u = t;
        u += 2;
        assert_eq!(u, Timestamp(12));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn timestamp_subtraction_underflow_panics() {
        let _ = Timestamp(3) - Timestamp(5);
    }

    #[test]
    fn fraction_within_interval() {
        let s = Timestamp(10);
        let e = Timestamp(20);
        assert_eq!(Timestamp(10).fraction_of(s, e), 0.0);
        assert_eq!(Timestamp(15).fraction_of(s, e), 0.5);
        assert_eq!(Timestamp(20).fraction_of(s, e), 1.0);
        // Extrapolation beyond the interval is legal (SSA probing).
        assert_eq!(Timestamp(25).fraction_of(s, e), 1.5);
    }

    #[test]
    fn interval_basics() {
        let i = TimeInterval::new(Timestamp(5), Timestamp(15));
        assert_eq!(i.duration(), 10);
        assert!(i.contains(Timestamp(5)));
        assert!(i.contains(Timestamp(15)));
        assert!(!i.contains(Timestamp(16)));
        assert_eq!(i.at_fraction(0.5), Timestamp(10));
        assert_eq!(i.at_fraction(0.0), Timestamp(5));
        assert_eq!(i.at_fraction(1.0), Timestamp(15));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn interval_rejects_reversed() {
        let _ = TimeInterval::new(Timestamp(3), Timestamp(1));
    }

    #[test]
    fn window_expiry_semantics() {
        let w = SlidingWindow::new(100);
        let te = Timestamp(40);
        assert_eq!(w.expiry_of(te), Timestamp(140));
        assert!(w.is_live(te, Timestamp(40)));
        assert!(w.is_live(te, Timestamp(139)));
        // "The counter will have to be decreased at time te + W".
        assert!(!w.is_live(te, Timestamp(140)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn window_rejects_zero_length() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn epoch_boundaries() {
        let c = EpochClock::new(10);
        assert!(c.is_epoch(Timestamp(0)));
        assert!(c.is_epoch(Timestamp(30)));
        assert!(!c.is_epoch(Timestamp(31)));
        assert_eq!(c.next_epoch_after(Timestamp(0)), Timestamp(10));
        assert_eq!(c.next_epoch_after(Timestamp(9)), Timestamp(10));
        assert_eq!(c.next_epoch_after(Timestamp(10)), Timestamp(20));
        assert_eq!(c.epoch_index(Timestamp(9)), 0);
        assert_eq!(c.epoch_index(Timestamp(10)), 1);
    }
}
