//! Epoch-stamped, versioned checkpoints of the full coordinator state.
//!
//! # Format
//!
//! A checkpoint is a flat byte image:
//!
//! ```text
//! [CheckpointHeader]            56 bytes: magic, version, epoch,
//!                               shard count, flags, section count,
//!                               section-table CRC
//! [SectionDesc x section_count] 32 bytes each: kind, shard, record
//!                               count, byte length, payload CRC
//! [payload 0][payload 1]...     raw record arrays, in table order
//! ```
//!
//! Every payload is the backing array of a `repr(C)` padding-free
//! record type ([`MotionPath`], [`HeatEntry`], [`ExpiryEvent`],
//! [`DeadEntry`], [`ClientState`], or one of the fixed header-like
//! records below), so writing a checkpoint is one bounded memcpy per
//! section — there is no per-record walk, no serde. Multi-byte fields
//! are native-endian; the magic doubles as an endianness sentinel (a
//! byte-swapped reader sees a wrong magic, not silent garbage).
//!
//! # Versioning policy
//!
//! [`FORMAT_VERSION`] increments on any layout change (header fields,
//! record layouts, section kinds, CRC polynomial). Readers accept
//! exactly their own version — checkpoints are warm-start state, not
//! archival data, so there is no cross-version migration path; a
//! version mismatch is the typed [`CheckpointError::BadVersion`].
//!
//! # Integrity
//!
//! A CRC in the header covers the header itself plus the section
//! table, and every payload carries a CRC in its descriptor (CRC-32,
//! IEEE polynomial).
//! [`Checkpoint::from_bytes`] verifies all of them before any state is
//! rebuilt; corruption surfaces as a typed [`CheckpointError`], never a
//! panic or silently wrong state. Structural validation (duplicate ids,
//! event-order violations, counter imbalance) happens when the
//! coordinator adopts the sections and also reports through
//! [`CheckpointError`].

use crate::config::{Config, Tolerance};
use crate::hotness::{DeadEntry, ExpiryEvent, HeatEntry};
use crate::motion_path::MotionPath;
use crate::raytrace::ClientState;
use crate::session::SessionRecord;
use std::fmt;
use std::fs;
use std::io;
use std::mem::size_of;
use std::path::Path;

/// Magic sentinel leading every checkpoint (`b"HOTPCKPT"`, native
/// byte order — a byte-swapped or foreign file fails the magic check).
pub const MAGIC: u64 = u64::from_le_bytes(*b"HOTPCKPT");

/// Current checkpoint format version. Readers accept exactly this.
///
/// History: v1 serialized the expiry-event section in binary-heap
/// array order; v2 serializes it in canonical `(expiry, id)` order —
/// the contract the timer-wheel-backed [`crate::hotness::Hotness`]
/// writes and validates on restore; v3 adds the client-session layer:
/// a [`SectionKind::Session`] section of [`SessionRecord`]s, admission
/// knobs in [`ConfigRecord`] (72 → 112 bytes), and admission/session
/// counters in [`StatsRecord`] (96 → 168 bytes). v2 images are
/// rejected with the typed [`CheckpointError::BadVersion`].
pub const FORMAT_VERSION: u32 = 3;

// ---------------------------------------------------------------------
// Pod casting
// ---------------------------------------------------------------------

/// Marker for the plain-old-data record types checkpoint sections are
/// made of.
///
/// # Safety
///
/// Implementors must be `repr(C)` or `repr(transparent)` with **no
/// padding bytes**, and every field must tolerate any bit pattern
/// (integers and floats only — no references, no niches). Semantic
/// invariants (rect corner order, event sort order) are *not* part of the
/// contract; they are checked by the adopting structure after CRC
/// validation.
pub unsafe trait Pod: Copy + 'static {}

// Record types with compile-time size pins: a layout change that
// introduces padding (or resizes a record) fails the build, not the
// restore path.
unsafe impl Pod for MotionPath {}
unsafe impl Pod for HeatEntry {}
unsafe impl Pod for ExpiryEvent {}
unsafe impl Pod for DeadEntry {}
unsafe impl Pod for ClientState {}
unsafe impl Pod for SessionRecord {}
unsafe impl Pod for SectionDesc {}
unsafe impl Pod for CheckpointHeader {}
unsafe impl Pod for ConfigRecord {}
unsafe impl Pod for StatsRecord {}
unsafe impl Pod for ShardMetaRecord {}

const _: () = {
    assert!(size_of::<MotionPath>() == 40);
    assert!(size_of::<HeatEntry>() == 24);
    assert!(size_of::<ExpiryEvent>() == 16);
    assert!(size_of::<DeadEntry>() == 16);
    assert!(size_of::<ClientState>() == 72);
    assert!(size_of::<SessionRecord>() == 32);
    assert!(size_of::<SectionDesc>() == 32);
    assert!(size_of::<CheckpointHeader>() == 56);
    assert!(size_of::<ConfigRecord>() == 112);
    assert!(size_of::<StatsRecord>() == 168);
    assert!(size_of::<ShardMetaRecord>() == 16);
};

/// The raw bytes of a record slice (the write-side memcpy source).
fn bytes_of<T: Pod>(records: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, any bit pattern valid as bytes);
    // the slice is contiguous and the length is exact.
    unsafe { std::slice::from_raw_parts(records.as_ptr().cast::<u8>(), size_of_val(records)) }
}

/// Copies a byte payload into a fresh, properly aligned record vector.
fn records_from_bytes<T: Pod>(bytes: &[u8]) -> Result<Vec<T>, CheckpointError> {
    let stride = size_of::<T>();
    if stride == 0 || !bytes.len().is_multiple_of(stride) {
        return Err(CheckpointError::Malformed(format!(
            "payload of {} bytes is not a whole number of {stride}-byte records",
            bytes.len()
        )));
    }
    let n = bytes.len() / stride;
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: the destination has capacity for n records; T is Pod so
    // arbitrary (CRC-validated) bytes form valid values; the copy is
    // exact and non-overlapping (fresh allocation).
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE)
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The combined CRC over the header (its `table_crc` field zeroed) and
/// the section-table bytes: every header scalar and every descriptor is
/// integrity-checked.
fn table_crc(header: &CheckpointHeader, descs: &[SectionDesc]) -> u32 {
    let mut zeroed = *header;
    zeroed.table_crc = 0;
    let mut buf = Vec::with_capacity(size_of::<CheckpointHeader>() + std::mem::size_of_val(descs));
    buf.extend_from_slice(bytes_of(std::slice::from_ref(&zeroed)));
    buf.extend_from_slice(bytes_of(descs));
    crc32(&buf)
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed failure of checkpoint encoding, decoding, or adoption. Every
/// corruption mode is a variant — loading a damaged checkpoint never
/// panics and never yields silently wrong state.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The byte image ends before the structure it promises.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The leading magic is not [`MAGIC`] (not a checkpoint, or one
    /// written on a foreign-endian machine).
    BadMagic {
        /// The value found in place of the magic.
        found: u64,
    },
    /// The format version is not [`FORMAT_VERSION`].
    BadVersion {
        /// The version recorded in the header.
        found: u32,
    },
    /// A CRC did not match: the named part of the image is corrupt.
    CrcMismatch {
        /// Which part failed (`"section table"` or a section kind).
        what: &'static str,
        /// Owning shard for per-shard sections (0 for globals).
        shard: u32,
    },
    /// The image is structurally inconsistent (bad section layout,
    /// duplicate ids, event-order violation, counter imbalance, ...).
    Malformed(String),
    /// The checkpoint's embedded configuration conflicts with what the
    /// restoring coordinator was asked to run.
    ConfigMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Truncated { needed, got } => {
                write!(f, "checkpoint truncated: need {needed} bytes, have {got}")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint: magic {found:#018x} != {MAGIC:#018x}")
            }
            CheckpointError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint format version {found} (expected {FORMAT_VERSION})"
                )
            }
            CheckpointError::CrcMismatch { what, shard } => {
                write!(f, "checkpoint corrupt: CRC mismatch in {what} (shard {shard})")
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ConfigMismatch(msg) => {
                write!(f, "checkpoint configuration mismatch: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------
// On-disk records
// ---------------------------------------------------------------------

/// The fixed 56-byte header leading every checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct CheckpointHeader {
    /// [`MAGIC`].
    pub magic: u64,
    /// [`FORMAT_VERSION`].
    pub version: u32,
    /// Coordinator shard count the sections are partitioned by.
    pub shard_count: u32,
    /// Epochs processed when the checkpoint was taken.
    pub epoch: u64,
    /// The coordinator clock (raw timestamp) at checkpoint time.
    pub clock: u64,
    /// The global path-id counter.
    pub next_path_id: u64,
    /// Number of [`SectionDesc`] entries following the header.
    pub section_count: u32,
    /// Bit 0: hints enabled; bit 1: `OverlapPolicy::Own`.
    pub flags: u32,
    /// CRC-32 over the header (this field zeroed) and the section
    /// table, so every header scalar is integrity-checked too.
    pub table_crc: u32,
    /// Reserved, written as zero.
    pub reserved: u32,
}

/// Flag bit: hot-path hints are enabled.
pub const FLAG_HINTS: u32 = 1 << 0;
/// Flag bit: the overlap policy is `Own` (ablation baseline).
pub const FLAG_OVERLAP_OWN: u32 = 1 << 1;

/// What a section holds. The discriminants are the on-disk `kind`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u32)]
pub enum SectionKind {
    /// One [`ConfigRecord`] (global).
    Config = 0,
    /// One [`StatsRecord`] (global).
    Stats = 1,
    /// The pending [`ClientState`] batch (global; per-shard routing is
    /// recomputed on restore).
    Pending = 2,
    /// A shard's [`MotionPath`] slab.
    Paths = 3,
    /// A shard's [`HeatEntry`] slab.
    Heat = 4,
    /// A shard's pending [`ExpiryEvent`]s in canonical `(expiry, id)`
    /// order — a pure function of the event multiset, so the section is
    /// independent of the timer wheel's internal bucket layout.
    Events = 5,
    /// A shard's [`DeadEntry`] tombstones.
    Dead = 6,
    /// One [`ShardMetaRecord`] per shard.
    ShardMeta = 7,
    /// The [`SessionRecord`]s of the client-session table, sorted by
    /// object id (global; absent when sessions are disabled).
    Session = 8,
}

impl SectionKind {
    fn from_raw(raw: u32) -> Option<SectionKind> {
        Some(match raw {
            0 => SectionKind::Config,
            1 => SectionKind::Stats,
            2 => SectionKind::Pending,
            3 => SectionKind::Paths,
            4 => SectionKind::Heat,
            5 => SectionKind::Events,
            6 => SectionKind::Dead,
            7 => SectionKind::ShardMeta,
            8 => SectionKind::Session,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            SectionKind::Config => "config section",
            SectionKind::Stats => "stats section",
            SectionKind::Pending => "pending section",
            SectionKind::Paths => "paths section",
            SectionKind::Heat => "heat section",
            SectionKind::Events => "events section",
            SectionKind::Dead => "dead section",
            SectionKind::ShardMeta => "shard-meta section",
            SectionKind::Session => "session section",
        }
    }
}

/// One section-table entry (32 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct SectionDesc {
    /// [`SectionKind`] discriminant.
    pub kind: u32,
    /// Owning shard for per-shard kinds; 0 for globals.
    pub shard: u32,
    /// Record count in the payload.
    pub count: u64,
    /// Payload byte length (`count * record size`).
    pub bytes: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    /// Reserved, written as zero.
    pub reserved: u32,
}

/// The embedded [`Config`] echo (one 112-byte record): a checkpoint can
/// only restore into a coordinator running the identical configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct ConfigRecord {
    /// 0 = crisp tolerance, 1 = uncertain.
    pub tolerance_kind: u64,
    /// Tolerance radius `eps`.
    pub eps: f64,
    /// Failure probability `delta` (0 when crisp).
    pub delta: f64,
    /// Sliding window `W`.
    pub window: u64,
    /// Epoch length `Lambda`.
    pub lambda: u64,
    /// Top-`k` size.
    pub k: u64,
    /// Grid cell side.
    pub grid_cell: f64,
    /// Vertex quantization grain.
    pub vertex_grain: f64,
    /// Shard count.
    pub shards: u64,
    /// Session heartbeat lease (0 = sessions off).
    pub lease: u64,
    /// Session ejection grace.
    pub grace: u64,
    /// Admission queue cap (0 = unbounded).
    pub queue_cap: u64,
    /// [`crate::config::AdmissionPolicy`] raw encoding.
    pub policy: u64,
    /// Degraded-epoch threshold (0 = never degrade).
    pub degrade_threshold: u64,
}

impl ConfigRecord {
    /// Encodes a [`Config`].
    pub fn from_config(c: &Config) -> Self {
        ConfigRecord {
            tolerance_kind: match c.tolerance {
                Tolerance::Crisp { .. } => 0,
                Tolerance::Uncertain { .. } => 1,
            },
            eps: c.tolerance.eps(),
            delta: c.tolerance.delta().unwrap_or(0.0),
            window: c.window.len,
            lambda: c.epochs.lambda,
            k: c.k as u64,
            grid_cell: c.grid_cell,
            vertex_grain: c.vertex_grain,
            shards: c.shards as u64,
            lease: c.admission.lease,
            grace: c.admission.grace,
            queue_cap: c.admission.queue_cap as u64,
            policy: c.admission.policy.as_raw(),
            degrade_threshold: c.admission.degrade_threshold as u64,
        }
    }

    /// Checks the record against a live configuration field by field.
    pub fn matches(&self, c: &Config) -> Result<(), CheckpointError> {
        let other = ConfigRecord::from_config(c);
        if self == &other {
            Ok(())
        } else {
            Err(CheckpointError::ConfigMismatch(format!(
                "checkpoint was taken under {self:?}, coordinator runs {other:?}"
            )))
        }
    }
}

/// Global communication/processing/admission counters (one 168-byte
/// record). Durations are nanoseconds; they are wall-clock diagnostics
/// and are never part of parity comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
#[allow(missing_docs)]
pub struct StatsRecord {
    pub uplink_msgs: u64,
    pub uplink_bytes: u64,
    pub downlink_msgs: u64,
    pub downlink_bytes: u64,
    pub epochs: u64,
    pub states_processed: u64,
    pub strategy_ns: u64,
    pub expiry_ns: u64,
    pub publish_ns: u64,
    pub case1: u64,
    pub case2: u64,
    pub case3: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub shed: u64,
    pub adm_ejected: u64,
    pub degraded_epochs: u64,
    pub sess_connects: u64,
    pub sess_drops: u64,
    pub sess_reconnects: u64,
    pub sess_ejections: u64,
}

/// Per-shard scalars (one 16-byte record per shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct ShardMetaRecord {
    /// The shard index's internal id counter (zero under the
    /// coordinator, which allocates from the global counter).
    pub index_next_id: u64,
    /// Total crossings the shard's hotness table ever recorded.
    pub recorded: u64,
}

// ---------------------------------------------------------------------
// Builder (write side)
// ---------------------------------------------------------------------

/// Assembles a checkpoint image: header fields up front, then one
/// bounded memcpy per [`CheckpointBuilder::section`] call.
pub struct CheckpointBuilder {
    header: CheckpointHeader,
    descs: Vec<SectionDesc>,
    payload: Vec<u8>,
}

impl CheckpointBuilder {
    /// Starts an image for the given header fields.
    pub fn new(shard_count: u32, epoch: u64, clock: u64, next_path_id: u64, flags: u32) -> Self {
        CheckpointBuilder {
            header: CheckpointHeader {
                magic: MAGIC,
                version: FORMAT_VERSION,
                shard_count,
                epoch,
                clock,
                next_path_id,
                section_count: 0,
                flags,
                table_crc: 0,
                reserved: 0,
            },
            descs: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Appends a section: one `extend_from_slice` of the record bytes
    /// (the bounded memcpy) plus a descriptor with its CRC.
    pub fn section<T: Pod>(&mut self, kind: SectionKind, shard: u32, records: &[T]) -> &mut Self {
        let bytes = bytes_of(records);
        self.descs.push(SectionDesc {
            kind: kind as u32,
            shard,
            count: records.len() as u64,
            bytes: bytes.len() as u64,
            crc: crc32(bytes),
            reserved: 0,
        });
        self.payload.extend_from_slice(bytes);
        self
    }

    /// Seals the image: stamps section count and table CRC, concatenates
    /// header, table, and payloads.
    pub fn finish(mut self) -> Checkpoint {
        self.header.section_count = self.descs.len() as u32;
        self.header.table_crc = table_crc(&self.header, &self.descs);
        let table = bytes_of(&self.descs);
        let mut bytes =
            Vec::with_capacity(size_of::<CheckpointHeader>() + table.len() + self.payload.len());
        bytes.extend_from_slice(bytes_of(std::slice::from_ref(&self.header)));
        bytes.extend_from_slice(table);
        bytes.extend_from_slice(&self.payload);
        Checkpoint { header: self.header, descs: self.descs, bytes }
    }
}

// ---------------------------------------------------------------------
// Checkpoint (read side)
// ---------------------------------------------------------------------

/// A validated checkpoint image: header and section table parsed, every
/// CRC verified. Section payloads decode on demand.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    header: CheckpointHeader,
    descs: Vec<SectionDesc>,
    bytes: Vec<u8>,
}

impl Checkpoint {
    /// Parses and fully validates a byte image: magic, version, table
    /// CRC, section bounds, and every payload CRC.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CheckpointError> {
        let header_len = size_of::<CheckpointHeader>();
        if bytes.len() < header_len {
            return Err(CheckpointError::Truncated { needed: header_len, got: bytes.len() });
        }
        let header = records_from_bytes::<CheckpointHeader>(&bytes[..header_len])?[0];
        if header.magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: header.magic });
        }
        if header.version != FORMAT_VERSION {
            return Err(CheckpointError::BadVersion { found: header.version });
        }
        let table_len = header.section_count as usize * size_of::<SectionDesc>();
        let table_end = header_len + table_len;
        if bytes.len() < table_end {
            return Err(CheckpointError::Truncated { needed: table_end, got: bytes.len() });
        }
        let table = &bytes[header_len..table_end];
        let descs = records_from_bytes::<SectionDesc>(table)?;
        if table_crc(&header, &descs) != header.table_crc {
            return Err(CheckpointError::CrcMismatch { what: "section table", shard: 0 });
        }
        let mut offset = table_end;
        for d in &descs {
            let kind = SectionKind::from_raw(d.kind).ok_or_else(|| {
                CheckpointError::Malformed(format!("unknown section kind {}", d.kind))
            })?;
            let end = offset
                .checked_add(d.bytes as usize)
                .ok_or_else(|| CheckpointError::Malformed("section length overflow".into()))?;
            if bytes.len() < end {
                return Err(CheckpointError::Truncated { needed: end, got: bytes.len() });
            }
            if crc32(&bytes[offset..end]) != d.crc {
                return Err(CheckpointError::CrcMismatch { what: kind.name(), shard: d.shard });
            }
            offset = end;
        }
        if offset != bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the last section",
                bytes.len() - offset
            )));
        }
        Ok(Checkpoint { header, descs, bytes })
    }

    /// The parsed header.
    pub fn header(&self) -> &CheckpointHeader {
        &self.header
    }

    /// Epochs processed when this checkpoint was taken.
    pub fn epoch(&self) -> u64 {
        self.header.epoch
    }

    /// The full validated byte image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total image size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes the payload of the section `(kind, shard)`.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] when the section is absent or its
    /// byte length is not a whole number of records.
    pub fn section<T: Pod>(
        &self,
        kind: SectionKind,
        shard: u32,
    ) -> Result<Vec<T>, CheckpointError> {
        let mut offset =
            size_of::<CheckpointHeader>() + self.descs.len() * size_of::<SectionDesc>();
        for d in &self.descs {
            let end = offset + d.bytes as usize;
            if d.kind == kind as u32 && d.shard == shard {
                return records_from_bytes(&self.bytes[offset..end]);
            }
            offset = end;
        }
        Err(CheckpointError::Malformed(format!("missing {} for shard {shard}", kind.name())))
    }

    /// Writes the image to `path` atomically (temp file + rename), so a
    /// crash mid-write never leaves a torn checkpoint under the final
    /// name.
    pub fn write_to_path(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        fs::write(&tmp, &self.bytes)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`.
    pub fn read_from_path(path: &Path) -> Result<Self, CheckpointError> {
        Checkpoint::from_bytes(fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion_path::PathId;
    use crate::time::Timestamp;

    fn sample() -> Checkpoint {
        let mut b = CheckpointBuilder::new(2, 7, 70, 11, FLAG_HINTS);
        b.section(SectionKind::Config, 0, &[ConfigRecord::from_config(&Config::paper_defaults())]);
        b.section(SectionKind::Stats, 0, &[StatsRecord::default()]);
        b.section(SectionKind::Events, 1, &[ExpiryEvent { expiry: Timestamp(100), id: PathId(3) }]);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_header_and_sections() {
        let ck = sample();
        let back = Checkpoint::from_bytes(ck.as_bytes().to_vec()).unwrap();
        assert_eq!(back.header(), ck.header());
        assert_eq!(back.epoch(), 7);
        assert_eq!(back.header().flags, FLAG_HINTS);
        let events: Vec<ExpiryEvent> = back.section(SectionKind::Events, 1).unwrap();
        assert_eq!(events, vec![ExpiryEvent { expiry: Timestamp(100), id: PathId(3) }]);
        let cfg: Vec<ConfigRecord> = back.section(SectionKind::Config, 0).unwrap();
        cfg[0].matches(&Config::paper_defaults()).unwrap();
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let ck = sample();
        let full = ck.as_bytes();
        for cut in 0..full.len() {
            let err = Checkpoint::from_bytes(full[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::CrcMismatch { .. }
                        | CheckpointError::Malformed(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let ck = sample();
        let mut bytes = ck.as_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(bytes).unwrap_err(),
            CheckpointError::BadMagic { .. }
        ));

        let mut bytes = ck.as_bytes().to_vec();
        bytes[8] = 99; // version field
        assert!(matches!(
            Checkpoint::from_bytes(bytes).unwrap_err(),
            CheckpointError::BadVersion { found: 99 }
        ));
    }

    #[test]
    fn v2_images_are_rejected_by_the_version_check_itself() {
        // Patch the version field back to 2 AND recompute the table
        // CRC, so the only thing wrong with the image is its version:
        // the rejection must come from the typed version check, not
        // ride along on a CRC mismatch.
        let ck = sample();
        let mut bytes = ck.as_bytes().to_vec();
        let mut header =
            records_from_bytes::<CheckpointHeader>(&bytes[..size_of::<CheckpointHeader>()])
                .unwrap()[0];
        header.version = 2;
        header.table_crc = table_crc(&header, &ck.descs);
        bytes[..size_of::<CheckpointHeader>()]
            .copy_from_slice(bytes_of(std::slice::from_ref(&header)));
        assert!(matches!(
            Checkpoint::from_bytes(bytes).unwrap_err(),
            CheckpointError::BadVersion { found: 2 }
        ));
    }

    #[test]
    fn session_section_roundtrips() {
        let recs = vec![SessionRecord { object: 4, state: 0, deadline: 120, last_heartbeat: 110 }];
        let mut b = CheckpointBuilder::new(1, 1, 10, 1, 0);
        b.section(SectionKind::Session, 0, &recs);
        let ck = b.finish();
        let back = Checkpoint::from_bytes(ck.as_bytes().to_vec()).unwrap();
        let got: Vec<SessionRecord> = back.section(SectionKind::Session, 0).unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        // Flip each byte of the image in turn: the validator must reject
        // every single-byte corruption with a typed error (magic,
        // version, a CRC mismatch, or a malformed layout) — never accept
        // it silently, never panic.
        let ck = sample();
        let full = ck.as_bytes();
        for i in 0..full.len() {
            let mut bytes = full.to_vec();
            bytes[i] ^= 0x01;
            assert!(Checkpoint::from_bytes(bytes).is_err(), "flipped byte {i} was accepted");
        }
    }

    #[test]
    fn config_mismatch_is_typed() {
        let rec = ConfigRecord::from_config(&Config::paper_defaults());
        let other = Config::paper_defaults().with_k(99);
        assert!(matches!(rec.matches(&other), Err(CheckpointError::ConfigMismatch(_))));
    }

    #[test]
    fn missing_section_is_malformed() {
        let ck = sample();
        assert!(matches!(
            ck.section::<DeadEntry>(SectionKind::Dead, 0),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_validated() {
        let dir = std::env::temp_dir().join("hotpath-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ckpt");
        let ck = sample();
        ck.write_to_path(&path).unwrap();
        let back = Checkpoint::read_from_path(&path).unwrap();
        assert_eq!(back.as_bytes(), ck.as_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}
