//! # hotpath-core
//!
//! A from-scratch implementation of **"On-Line Discovery of Hot Motion
//! Paths"** (Sacharidis et al., EDBT 2008).
//!
//! Numerous moving objects report noisy positions to a coordinator, which
//! maintains the *hot motion paths* — directed segments frequently crossed
//! (within a max-distance tolerance `eps`, or a probabilistic `(eps,
//! delta)` tolerance) during a sliding window of the last `W` time units.
//!
//! The crate provides the paper's full stack:
//!
//! * [`raytrace`] — the client-side **RayTrace** filter (Algorithm 1): an
//!   `O(1)`-space, one-pass greedy compressor that maintains a Spatial
//!   Safe Area and only contacts the coordinator when a measurement
//!   escapes it.
//! * [`uncertainty`] — Gaussian measurement handling (Section 4.1):
//!   tolerance-interval solving from the normal CDF, with a precomputed
//!   lookup-table fast path.
//! * [`index`] — the grid-based **MotionPath** endpoint index
//!   (Section 5.1).
//! * [`hotness`] — sliding-window hotness with the hash-table/event-queue
//!   pair of Section 5.2.
//! * [`strategy`] — the **SinglePath** discovery strategy (Algorithm 2)
//!   with FSA-overlap candidate generation.
//! * [`coordinator`] — the epoch-batched coordinator facade tying index,
//!   hotness, and strategy together, answering top-`k` queries and the
//!   score metric of Section 3.1.
//! * [`engine`] — the execution layer over the coordinator: the epoch
//!   stages (drain-ingest → Phase A → Phase B → publish) behind an
//!   `Engine` trait, with a synchronous backend and a pipelined backend
//!   that double-buffers ingest against a worker thread; reads go
//!   through the epoch-stamped `HotSnapshot`.
//!
//! ## Quick example
//!
//! ```
//! use hotpath_core::prelude::*;
//!
//! let config = Config::paper_defaults().with_epoch(5).with_window(50);
//! let mut coordinator = Coordinator::new(config);
//! let mut client = RayTraceFilter::new(
//!     ObjectId(0),
//!     TimePoint::new(Point::new(0.0, 0.0), Timestamp(0)),
//!     config.tolerance.eps(),
//! );
//!
//! // Feed measurements; ship any escaping state to the coordinator.
//! for t in 1..=30u64 {
//!     let p = Point::new(t as f64 * 12.0, 0.0); // fast mover: violates often
//!     if let Some(state) = client.observe(TimePoint::new(p, Timestamp(t))) {
//!         coordinator.submit(state);
//!     }
//!     if config.epochs.is_epoch(Timestamp(t)) {
//!         for resp in coordinator.process_epoch(Timestamp(t)) {
//!             if resp.object == ObjectId(0) {
//!                 client.receive_endpoint(resp.endpoint);
//!             }
//!         }
//!     }
//! }
//! let hottest = coordinator.top_k();
//! println!("{} hot paths", hottest.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod config;
pub mod coordinator;
pub mod engine;
pub mod fxhash;
pub mod geometry;
pub mod hotness;
pub mod index;
pub mod motion_path;
pub mod raytrace;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod strategy;
pub mod time;
pub mod uncertainty;
pub mod wheel;

/// Identifier of a moving object (client).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(transparent)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Convenient glob-import of the public API.
pub mod prelude {
    pub use crate::checkpoint::{Checkpoint, CheckpointError};
    pub use crate::config::{
        Admission, AdmissionPolicy, Config, ConfigBuilder, ConfigError, ParseError, Tolerance,
    };
    pub use crate::coordinator::{Coordinator, EndpointResponse, HotSnapshot};
    pub use crate::engine::{Engine, EngineKind, PipelinedEngine, SyncEngine};
    pub use crate::geometry::{Point, Rect, Segment, TimePoint, Trajectory};
    pub use crate::hotness::Hotness;
    pub use crate::motion_path::{MotionPath, PathId};
    pub use crate::raytrace::{ClientState, RayTraceFilter};
    pub use crate::session::{SessionEvent, SessionState, SessionTable, SessionTransition};
    pub use crate::snapshot::{SnapshotCell, SnapshotGuard, SnapshotHandle};
    pub use crate::stats::AdmissionStats;
    pub use crate::time::{EpochClock, SlidingWindow, TimeInterval, Timestamp};
    pub use crate::uncertainty::{GaussianPoint, ToleranceTable};
    pub use crate::ObjectId;
}
