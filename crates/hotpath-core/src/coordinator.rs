//! The coordinator: epoch-batched processing of client states, index and
//! hotness maintenance, and top-`k` / score queries (Sections 3.1, 5).

use crate::config::Config;
use crate::geometry::{Point, TimePoint};
use crate::hotness::Hotness;
use crate::index::MotionPathIndex;
use crate::motion_path::{MotionPath, PathId};
use crate::raytrace::hinted::PathHint;
use crate::raytrace::ClientState;
use crate::stats::{CommStats, ProcessingStats};
use crate::strategy::{process_batch_with, OverlapPolicy, Selection};
use crate::time::Timestamp;
use crate::ObjectId;
use std::time::Instant;

/// The endpoint message `<e, te>` returned to a reporting object at the
/// next epoch, optionally with a hot-path hint (Section 7 extension).
#[derive(Clone, Copy, Debug)]
pub struct EndpointResponse {
    /// Destination object.
    pub object: ObjectId,
    /// The endpoint timepoint seeding the object's next SSA.
    pub endpoint: TimePoint,
    /// Optional feedback: the hottest path leaving the endpoint.
    pub hint: Option<PathHint>,
}

impl EndpointResponse {
    /// Wire size: one point, one timestamp, one object id...
    pub const WIRE_BYTES: usize = 16 + 8 + 8;
    /// ...plus a segment when a hint rides along.
    pub const HINT_EXTRA_BYTES: usize = 32;

    /// Payload bytes of this response.
    pub fn wire_bytes(&self) -> usize {
        Self::WIRE_BYTES + if self.hint.is_some() { Self::HINT_EXTRA_BYTES } else { 0 }
    }
}

/// A hot path with its current hotness and score.
#[derive(Clone, Copy, Debug)]
pub struct HotPath {
    /// The path.
    pub path: MotionPath,
    /// Crossings within the window.
    pub hotness: u32,
    /// `hotness x length` (Section 3.1 score).
    pub score: f64,
}

/// The central coordinator.
#[derive(Debug)]
pub struct Coordinator {
    config: Config,
    index: MotionPathIndex,
    hotness: Hotness,
    pending: Vec<ClientState>,
    comm: CommStats,
    processing: ProcessingStats,
    hints_enabled: bool,
    overlap_policy: OverlapPolicy,
}

impl Coordinator {
    /// Creates a coordinator for the given configuration.
    pub fn new(config: Config) -> Self {
        Coordinator {
            config,
            index: MotionPathIndex::new(config.grid_cell, config.vertex_grain),
            hotness: Hotness::new(config.window),
            pending: Vec::new(),
            comm: CommStats::default(),
            processing: ProcessingStats::default(),
            hints_enabled: false,
            overlap_policy: OverlapPolicy::Full,
        }
    }

    /// Enables hot-path hints in endpoint responses (the Section 7
    /// feedback extension).
    pub fn with_hints(mut self) -> Self {
        self.hints_enabled = true;
        self
    }

    /// Overrides the Cases-2/3 overlap policy (ablation hook).
    pub fn with_overlap_policy(mut self, policy: OverlapPolicy) -> Self {
        self.overlap_policy = policy;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        self.config_ref()
    }

    fn config_ref(&self) -> &Config {
        &self.config
    }

    /// Accepts a state message (buffered until the next epoch).
    pub fn submit(&mut self, state: ClientState) {
        self.comm.record_uplink(ClientState::WIRE_BYTES);
        self.pending.push(state);
    }

    /// Number of states awaiting the next epoch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Advances the hotness clock to `now`, deleting expired paths from
    /// the index (call once per timestamp; cheap when nothing expires).
    pub fn advance_time(&mut self, now: Timestamp) {
        let start = Instant::now();
        for dead in self.hotness.advance(now) {
            self.index.remove(dead);
        }
        self.processing.expiry_time += start.elapsed();
    }

    /// Runs SinglePath over the pending batch (call at epoch boundaries)
    /// and returns the endpoint responses for all reporting objects.
    pub fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        self.advance_time(now);
        let states = std::mem::take(&mut self.pending);
        let start = Instant::now();
        let overlap_cell = (2.0 * self.config.tolerance.eps()).max(1e-6);
        let (selections, tally) = process_batch_with(
            &states,
            &mut self.index,
            &mut self.hotness,
            overlap_cell,
            self.overlap_policy,
        );
        self.processing.strategy_time += start.elapsed();
        self.processing.epochs += 1;
        self.processing.states_processed += states.len() as u64;
        self.processing.case1 += tally.case1;
        self.processing.case2 += tally.case2;
        self.processing.case3 += tally.case3;

        selections.iter().map(|sel| self.respond(sel)).collect()
    }

    /// Builds (and accounts) the endpoint response for one selection.
    fn respond(&mut self, sel: &Selection) -> EndpointResponse {
        let hint = if self.hints_enabled {
            self.hottest_from(&sel.endpoint).map(|p| PathHint { seg: p.seg })
        } else {
            None
        };
        let resp = EndpointResponse {
            object: sel.object,
            endpoint: TimePoint::new(sel.endpoint, sel.te),
            hint,
        };
        self.comm.record_downlink(resp.wire_bytes());
        resp
    }

    /// The hottest path leaving the vertex at `p`, if any.
    pub fn hottest_from(&self, p: &Point) -> Option<MotionPath> {
        self.index
            .paths_starting_at(p)
            .iter()
            .max_by_key(|&&id| (self.hotness.get(id), std::cmp::Reverse(id)))
            .and_then(|&id| self.index.get(id))
            .copied()
    }

    /// Number of motion paths currently stored (the paper's *index size*
    /// metric, Figures 7a / 8a).
    pub fn index_size(&self) -> usize {
        self.index.len()
    }

    /// All stored paths with positive hotness, unordered.
    pub fn hot_paths(&self) -> Vec<HotPath> {
        self.hotness
            .iter()
            .filter_map(|(id, h)| {
                self.index.get(id).map(|p| HotPath {
                    path: *p,
                    hotness: h,
                    score: h as f64 * p.length(),
                })
            })
            .collect()
    }

    /// The top-`k` hottest motion paths (config `k`), hottest first;
    /// ties break toward longer paths, then lower ids (deterministic).
    pub fn top_k(&self) -> Vec<HotPath> {
        self.top_n(self.config.k)
    }

    /// The top-`n` hottest motion paths for an explicit `n`.
    pub fn top_n(&self, n: usize) -> Vec<HotPath> {
        let mut all = self.hot_paths();
        all.sort_by(|a, b| {
            b.hotness
                .cmp(&a.hotness)
                .then_with(|| b.path.length().total_cmp(&a.path.length()))
                .then_with(|| a.path.id.cmp(&b.path.id))
        });
        all.truncate(n);
        all
    }

    /// The score of the top-`k` set: the average of `hotness x length`
    /// over its members (Section 3.1). Zero when no paths are hot.
    pub fn top_k_score(&self) -> f64 {
        let top = self.top_k();
        if top.is_empty() {
            return 0.0;
        }
        top.iter().map(|h| h.score).sum::<f64>() / top.len() as f64
    }

    /// Communication counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm
    }

    /// Processing counters.
    pub fn processing_stats(&self) -> &ProcessingStats {
        &self.processing
    }

    /// Read access to the index (diagnostics / reporting).
    pub fn index(&self) -> &MotionPathIndex {
        &self.index
    }

    /// Read access to the hotness table.
    pub fn hotness(&self) -> &Hotness {
        &self.hotness
    }

    /// Current hotness of a specific path.
    pub fn hotness_of(&self, id: PathId) -> u32 {
        self.hotness.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn cfg() -> Config {
        Config::paper_defaults().with_epoch(10).with_window(100)
    }

    fn state(obj: u64, start: (f64, f64), end: (f64, f64), ts: u64, te: u64) -> ClientState {
        let e = Point::new(end.0, end.1);
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(ts),
            fsa: Rect::new(e - Point::new(2.0, 2.0), e + Point::new(2.0, 2.0)),
            te: Timestamp(te),
        }
    }

    #[test]
    fn epoch_processing_creates_and_responds() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 8));
        c.submit(state(2, (0.0, 100.0), (50.0, 100.0), 0, 9));
        assert_eq!(c.pending_len(), 2);
        let responses = c.process_epoch(Timestamp(10));
        assert_eq!(responses.len(), 2);
        assert_eq!(c.pending_len(), 0);
        assert_eq!(c.index_size(), 2);
        // Responses carry each object's te and an endpoint inside its FSA.
        let r1 = responses.iter().find(|r| r.object == ObjectId(1)).unwrap();
        assert_eq!(r1.endpoint.t, Timestamp(8));
        assert!((r1.endpoint.p.x - 50.0).abs() <= 2.0);
        assert!(r1.hint.is_none());
    }

    #[test]
    fn repeated_crossings_heat_up_and_expire() {
        let mut c = Coordinator::new(cfg());
        // Same corridor crossed by many objects across two epochs.
        for obj in 0..5u64 {
            c.submit(state(obj, (0.0, 0.0), (50.0, 0.0), 0, 9));
        }
        let _ = c.process_epoch(Timestamp(10));
        assert_eq!(c.index_size(), 1, "identical states must share one path");
        let top = c.top_k();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].hotness, 5);
        // Score = hotness x length = 5 * 50.
        assert!((c.top_k_score() - 250.0).abs() < 1.0);

        // After W the crossings expire and the path is deleted.
        c.advance_time(Timestamp(9 + 100));
        assert_eq!(c.index_size(), 0);
        assert!(c.top_k().is_empty());
        assert_eq!(c.top_k_score(), 0.0);
    }

    #[test]
    fn top_k_orders_by_hotness_then_length() {
        let mut c = Coordinator::new(cfg().with_k(2));
        // Path A: 3 crossings; path B: 1 crossing but longer; path C: 1.
        for obj in 0..3u64 {
            c.submit(state(obj, (0.0, 0.0), (50.0, 0.0), 0, 9));
        }
        c.submit(state(10, (0.0, 200.0), (150.0, 200.0), 0, 9));
        c.submit(state(11, (0.0, 400.0), (20.0, 400.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        let top = c.top_n(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].hotness, 3);
        assert!(top[1].path.length() > top[2].path.length());
        // top_k respects config k = 2.
        assert_eq!(c.top_k().len(), 2);
    }

    #[test]
    fn comm_accounting_tracks_both_directions() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        let comm = c.comm_stats();
        assert_eq!(comm.uplink_msgs, 1);
        assert_eq!(comm.uplink_bytes, ClientState::WIRE_BYTES as u64);
        assert_eq!(comm.downlink_msgs, 1);
        assert_eq!(comm.downlink_bytes, EndpointResponse::WIRE_BYTES as u64);
    }

    #[test]
    fn hints_report_hottest_outgoing_path() {
        let mut c = Coordinator::new(cfg()).with_hints();
        // Build a hot corridor out of the vertex (50, 0): two chained
        // reports.
        for obj in 0..4u64 {
            c.submit(state(obj, (50.0, 0.0), (100.0, 0.0), 0, 5));
        }
        let _ = c.process_epoch(Timestamp(10));
        // Now an object lands on vertex (50, 0): its response should
        // hint at the hot outgoing path.
        c.submit(state(9, (0.0, 0.0), (50.0, 0.0), 10, 15));
        let responses = c.process_epoch(Timestamp(20));
        let r = &responses[0];
        let hint = r.hint.expect("hint expected");
        assert_eq!(hint.seg.a, Point::new(50.0, 0.0));
        assert_eq!(hint.seg.b, Point::new(100.0, 0.0));
        assert_eq!(
            r.wire_bytes(),
            EndpointResponse::WIRE_BYTES + EndpointResponse::HINT_EXTRA_BYTES
        );
    }

    #[test]
    fn processing_stats_accumulate() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        c.submit(state(1, (50.0, 0.0), (100.0, 0.0), 9, 19));
        let _ = c.process_epoch(Timestamp(20));
        let p = c.processing_stats();
        assert_eq!(p.epochs, 2);
        assert_eq!(p.states_processed, 2);
        assert_eq!(p.case1 + p.case2 + p.case3, 2);
    }
}
