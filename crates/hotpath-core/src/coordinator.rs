//! The coordinator: epoch-batched processing of client states, index and
//! hotness maintenance, and top-`k` / score queries (Sections 3.1, 5).
//!
//! # Sharding
//!
//! The coordinator partitions its MotionPath index and hotness table
//! into [`Config::shards`] shards keyed by the grid cell of a path's
//! *start vertex*. Phase A of SinglePath (Case 1 — the steady-state hot
//! loop) is exactly shard-local under that key: a state's candidate
//! paths all start at its own vertex, so candidate sets, cross-object
//! boosts, and intra-batch crossing visibility never span shards. Each
//! epoch therefore runs Phase A on one scoped thread per shard
//! (`std::thread::scope`, no extra dependencies), while Phase B (Cases
//! 2-3, the rare deferred states whose FSA-overlap analysis is
//! inherently global) runs sequentially in the front against a merged
//! view of all shards. Path ids are drawn from one front-side counter,
//! so results — selections, responses, ids, statistics — are identical
//! at every shard count, and `shards = 1` is the sequential coordinator.
//!
//! # Hot-loop allocation discipline
//!
//! Steady-state epochs do near-zero heap allocation. Every buffer the
//! per-epoch path touches is pooled and reused: states are pre-routed to
//! their owning shard at `submit`/`submit_batch` time (no repartitioning
//! pass inside `process_epoch`); each shard owns a
//! [`crate::strategy::ScratchArena`] holding Phase A's CSR candidate
//! storage, occurrence map, and recycled selection buffers; the front
//! keeps the merge vectors and the Phase-B vertex-group accumulator
//! across epochs; the `FsaSet` reuses its stamped `seen` bitmap and
//! sweep buffers across queries; and the batch vector itself is
//! recycled once responses are built. Top-k queries never sort the hot
//! set — each shard's [`Hotness`] maintains an incremental rank
//! structure, and `top_n` merges `k` entries per shard in O(k·shards).
//! When touching this path, keep new per-epoch buffers in one of those
//! pools (shard arena, front scratch, or `FsaSet` scratch), not in
//! fresh `Vec`s.

use crate::checkpoint::{
    Checkpoint, CheckpointBuilder, CheckpointError, ConfigRecord, SectionKind, ShardMetaRecord,
    StatsRecord, FLAG_HINTS, FLAG_OVERLAP_OWN,
};
use crate::config::{AdmissionPolicy, Config};
use crate::geometry::{Point, Rect, TimePoint};
use crate::hotness::{DeadEntry, ExpiryEvent, HeatEntry, Hotness};
use crate::index::{MotionPathIndex, VertexGroups};
use crate::motion_path::{MotionPath, PathId};
use crate::raytrace::hinted::PathHint;
use crate::raytrace::ClientState;
use crate::session::{SessionCounters, SessionEvent, SessionRecord, SessionTable};
use crate::stats::{AdmissionStats, CommStats, ProcessingStats};
use crate::strategy::{
    phase_a, phase_b, phase_b_apply, phase_b_eval, process_batch_pooled, CaseTally, FsaCache,
    FsaSet, OverlapPolicy, PathReader, PathStore, PhaseAOutput, PhaseBLoad, ScratchArena,
    Selection, WorkerPool,
};
use crate::time::Timestamp;
use crate::ObjectId;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The endpoint message `<e, te>` returned to a reporting object at the
/// next epoch, optionally with a hot-path hint (Section 7 extension).
#[derive(Clone, Copy, Debug)]
pub struct EndpointResponse {
    /// Destination object.
    pub object: ObjectId,
    /// The endpoint timepoint seeding the object's next SSA.
    pub endpoint: TimePoint,
    /// Optional feedback: the hottest path leaving the endpoint.
    pub hint: Option<PathHint>,
}

impl EndpointResponse {
    /// Wire size: one point, one timestamp, one object id...
    pub const WIRE_BYTES: usize = 16 + 8 + 8;
    /// ...plus a segment when a hint rides along.
    pub const HINT_EXTRA_BYTES: usize = 32;

    /// Payload bytes of this response.
    pub fn wire_bytes(&self) -> usize {
        Self::WIRE_BYTES + if self.hint.is_some() { Self::HINT_EXTRA_BYTES } else { 0 }
    }
}

/// A hot path with its current hotness and score.
#[derive(Clone, Copy, Debug)]
pub struct HotPath {
    /// The path.
    pub path: MotionPath,
    /// Crossings within the window.
    pub hotness: u32,
    /// `hotness x length` (Section 3.1 score).
    pub score: f64,
}

/// An epoch-stamped, immutable view of everything the read side needs:
/// the top-k, hot-set size, index size, and the communication/processing
/// counters as of the publish. The coordinator publishes one at the end
/// of every [`Coordinator::process_epoch`] (the *publish* stage) and
/// caches it, so repeated reads between epochs share one allocation —
/// and the engine layer can hand snapshots across threads without
/// touching live coordinator state.
#[derive(Clone, Debug)]
pub struct HotSnapshot {
    /// Epochs processed when this snapshot was published (0 before the
    /// first epoch).
    pub epoch: u64,
    /// The clock value at publish time (the epoch's boundary timestamp).
    pub timestamp: Timestamp,
    /// The top-`k` hottest paths (config `k`), hottest first.
    pub top_k: Arc<[HotPath]>,
    /// The top-k set score (Section 3.1): mean `hotness x length` over
    /// the members, `0` when nothing is hot.
    pub top_k_score: f64,
    /// Paths with positive hotness.
    pub hot_count: usize,
    /// Motion paths stored in the index.
    pub index_size: usize,
    /// Communication counters as of the publish.
    pub comm: CommStats,
    /// Processing counters as of the publish.
    pub processing: ProcessingStats,
    /// Admission counters as of the publish (all zeros while the
    /// ingest bound and sessions are off).
    pub admission: AdmissionStats,
    /// Session transitions that happened during the published epoch, in
    /// deterministic order (empty while sessions are off).
    pub session_events: Arc<[SessionEvent]>,
    /// Sessions currently Healthy.
    pub sessions_healthy: usize,
    /// Sessions currently Dropped (lease expired, inside grace).
    pub sessions_dropped: usize,
    /// Phase-B load telemetry for the published epoch: worker count,
    /// deferred/region/chunk counts, chunks stolen, per-worker busy
    /// time, and the worst/mean imbalance ratio. Observational only —
    /// timings and steal counts vary by machine; results never do.
    pub phase_b: PhaseBLoad,
}

impl HotSnapshot {
    /// The pre-first-epoch snapshot: empty, stamped zero.
    pub fn empty() -> Self {
        HotSnapshot {
            epoch: 0,
            timestamp: Timestamp(0),
            top_k: Arc::from(Vec::new()),
            top_k_score: 0.0,
            hot_count: 0,
            index_size: 0,
            comm: CommStats::default(),
            processing: ProcessingStats::default(),
            admission: AdmissionStats::default(),
            session_events: Arc::from(Vec::new()),
            sessions_healthy: 0,
            sessions_dropped: 0,
            phase_b: PhaseBLoad::default(),
        }
    }
}

/// Lazily rebuilt read-side caches, dropped on any mutation that can
/// change the hot set (`advance_time`, epoch processing). Interior
/// mutability keeps the read API `&self`; the coordinator is never
/// shared across threads (the sharded phases borrow individual shards).
#[derive(Debug, Default)]
struct ReadCache {
    snapshot: Option<Arc<HotSnapshot>>,
    hot: Option<Arc<[HotPath]>>,
}

/// One shard of coordinator state: the slice of the MotionPath index and
/// hotness table owning every path whose start vertex routes here, plus
/// the shard's reusable Phase-A scratch arena.
#[derive(Debug)]
struct Shard {
    index: MotionPathIndex,
    hotness: Hotness,
    scratch: ScratchArena,
}

/// Front-side buffers reused across sharded epochs: the Phase-A merge
/// vectors and the Phase-B vertex-group accumulator.
#[derive(Debug, Default)]
struct FrontScratch {
    tagged: Vec<(u32, Selection)>,
    deferred: Vec<u32>,
    groups: VertexGroups,
}

/// One epoch's sealed ingest: the drained state batch plus its
/// pre-routed per-shard position slices (empty at one shard). Produced
/// by the *drain-ingest* stage, consumed by the strategy stages, and
/// recycled afterwards.
#[derive(Debug)]
pub(crate) struct EpochBatch {
    pub(crate) states: Vec<ClientState>,
    pub(crate) parts: Vec<Vec<u32>>,
}

/// Deterministic point-to-shard routing: quantize to the vertex grain
/// (so float-noisy copies of one vertex agree), derive the grid cell in
/// integer space, and hash the cell key. Crate-visible so the pipelined
/// engine's front buffer can pre-route states with the exact same rule.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardRouter {
    grain: f64,
    units_per_cell: i64,
    shards: usize,
}

impl ShardRouter {
    pub(crate) fn new(config: &Config) -> Self {
        let units = (config.grid_cell / config.vertex_grain).round().max(1.0) as i64;
        ShardRouter { grain: config.vertex_grain, units_per_cell: units, shards: config.shards }
    }

    pub(crate) fn shard_of(&self, p: &Point) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let (qx, qy) = p.quantize(self.grain);
        let cx = qx.div_euclid(self.units_per_cell);
        let cy = qy.div_euclid(self.units_per_cell);
        let h = (cx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (cy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        ((h ^ (h >> 31)) % self.shards as u64) as usize
    }
}

/// The [`PathStore`] Phase B sees when the coordinator is sharded: range
/// queries merge every shard's answer into the view one index would
/// give; insertions route to the owning shard and draw ids from the
/// front's global counter.
struct ShardedStore<'a> {
    shards: &'a mut [Shard],
    router: ShardRouter,
    next_id: &'a mut u64,
}

impl PathStore for ShardedStore<'_> {
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups) {
        debug_assert!(self.shards.len() > 1, "single-shard epochs take the sequential path");
        // Merge by quantized vertex key: a vertex can terminate paths
        // stored in several shards (their starts live elsewhere). The
        // accumulator keeps the lexicographically smallest raw endpoint
        // per key — the same canonical choice the single-index query
        // makes, so the merged view is identical to sequential even
        // when float-noisy vertex copies span shards.
        out.clear();
        for shard in self.shards.iter() {
            shard.index.for_each_end_in(fsa, |entry| {
                out.push(shard.index.vertex_key(&entry.endpoint), entry.endpoint, entry.path);
            });
        }
        out.finish();
    }

    fn hotness_of(&self, id: PathId) -> u32 {
        // Ids are globally unique; only the owning shard contributes.
        self.shards.iter().map(|s| s.hotness.get(id)).sum()
    }

    fn vertex_key(&self, p: &Point) -> crate::index::VertexKey {
        // Every shard quantizes with the same grain.
        self.shards[0].index.vertex_key(p)
    }

    fn commit(&mut self, start: Point, end: Point, te: Timestamp) -> (PathId, bool, Point) {
        let shard = &mut self.shards[self.router.shard_of(&start)];
        let (id, created) = shard.index.insert_with(start, end, self.next_id);
        let path = *shard.index.get(id).expect("just inserted");
        shard.hotness.record_crossing(id, te, path.length());
        (id, created, path.end())
    }
}

/// The read-only merged view the parallel Phase-B eval workers share
/// when the coordinator is sharded — the same per-key merge as
/// [`ShardedStore::end_vertices_into`], minus the mutation surface, so
/// it can be `Sync` over plain `&[Shard]`.
struct ShardedReader<'a> {
    shards: &'a [Shard],
}

impl PathReader for ShardedReader<'_> {
    fn end_vertices_into(&self, fsa: &Rect, out: &mut VertexGroups) {
        out.clear();
        for shard in self.shards {
            shard.index.for_each_end_in(fsa, |entry| {
                out.push(shard.index.vertex_key(&entry.endpoint), entry.endpoint, entry.path);
            });
        }
        out.finish();
    }
}

/// Grid cell edge for the epoch FSA-overlap structure: about one FSA
/// diameter (`2 eps`), floored away from zero for degenerate
/// tolerances. Affects performance only, never results.
fn overlap_cell_of(config: &Config) -> f64 {
    (2.0 * config.tolerance.eps()).max(1e-6)
}

/// The central coordinator.
#[derive(Debug)]
pub struct Coordinator {
    config: Config,
    shards: Vec<Shard>,
    router: ShardRouter,
    pending: Vec<ClientState>,
    /// Batch positions pre-routed per shard as states arrive (sharded
    /// configs only; stays empty at `shards = 1`), so `process_epoch`
    /// starts Phase A without a repartitioning pass over the batch.
    pending_parts: Vec<Vec<u32>>,
    next_path_id: u64,
    comm: CommStats,
    processing: ProcessingStats,
    hints_enabled: bool,
    overlap_policy: OverlapPolicy,
    /// The epoch FSA-overlap structure, maintained incrementally from
    /// per-epoch add/move/remove deltas instead of rebuilt from scratch
    /// (see [`FsaCache`]). Deliberately not checkpointed: it is a pure
    /// function of the current batch, so a restored coordinator starts
    /// fresh and the first update repopulates it — parity-safe because
    /// overlap queries only observe the rect multiset.
    fsa_cache: FsaCache,
    front: FrontScratch,
    /// The latest timestamp the coordinator has been advanced to; stamps
    /// published snapshots.
    clock: Timestamp,
    /// Read-side caches (published snapshot, hot-set enumeration).
    cache: RefCell<ReadCache>,
    /// The client-session table; `None` while sessions are off
    /// (`Admission::lease == 0`, the default) so the paper pipeline pays
    /// nothing for the lifecycle layer.
    sessions: Option<SessionTable>,
    /// Admission-control counters (what drain-ingest did with overload).
    admission: AdmissionStats,
    /// The one resolved Phase-B worker budget both epoch paths
    /// (single-shard `stage_strategy` and `process_batch_sharded`)
    /// consult — no stage re-derives its own thread count.
    phase_b_pool: WorkerPool,
    /// Phase-B load telemetry from the last processed epoch, published
    /// in snapshots. Observational only: never checkpointed, and a
    /// restored coordinator starts from the default (all-zero) record.
    last_phase_b: PhaseBLoad,
    /// Session transitions drained at the last publish, shared into
    /// snapshots.
    last_session_events: Arc<[SessionEvent]>,
}

impl Coordinator {
    /// Creates a coordinator for the given configuration.
    pub fn new(config: Config) -> Self {
        assert!(config.shards > 0, "shard count must be positive");
        let fsa_cache = FsaCache::new(overlap_cell_of(&config));
        let shards: Vec<Shard> = (0..config.shards)
            .map(|_| Shard {
                index: MotionPathIndex::new(config.grid_cell, config.vertex_grain),
                hotness: Hotness::new(config.window),
                scratch: ScratchArena::new(),
            })
            .collect();
        let sessions = config.admission.sessions_enabled().then(|| {
            SessionTable::new(config.admission.lease, config.admission.grace, Timestamp(0))
        });
        Coordinator {
            router: ShardRouter::new(&config),
            pending_parts: if config.shards > 1 {
                vec![Vec::new(); config.shards]
            } else {
                Vec::new()
            },
            config,
            shards,
            pending: Vec::new(),
            next_path_id: 0,
            comm: CommStats::default(),
            processing: ProcessingStats::default(),
            hints_enabled: false,
            overlap_policy: OverlapPolicy::Full,
            fsa_cache,
            front: FrontScratch::default(),
            clock: Timestamp(0),
            cache: RefCell::new(ReadCache::default()),
            sessions,
            admission: AdmissionStats::default(),
            phase_b_pool: WorkerPool::new(config.phase_b_workers),
            last_phase_b: PhaseBLoad::default(),
            last_session_events: Arc::from(Vec::new()),
        }
    }

    /// Overrides the Phase-B worker pool, bypassing the hardware clamp
    /// [`WorkerPool::new`] applies to the configured `phase_b_workers`.
    /// For tests and benches that must drive the multi-worker eval path
    /// (chunk queues, stealing, deterministic merge) on machines with
    /// fewer cores than workers. Results are identical either way.
    pub fn with_phase_b_pool(mut self, pool: WorkerPool) -> Self {
        self.phase_b_pool = pool;
        self
    }

    /// In-place form of [`Coordinator::with_phase_b_pool`].
    pub fn set_phase_b_pool(&mut self, pool: WorkerPool) {
        self.phase_b_pool = pool;
    }

    /// Enables hot-path hints in endpoint responses (the Section 7
    /// feedback extension).
    pub fn with_hints(mut self) -> Self {
        self.hints_enabled = true;
        self
    }

    /// Overrides the Cases-2/3 overlap policy (ablation hook).
    pub fn with_overlap_policy(mut self, policy: OverlapPolicy) -> Self {
        self.overlap_policy = policy;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of shards the index and hotness table are split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Accepts a state message (buffered until the next epoch). Sharded
    /// coordinators route the state to its owning shard immediately.
    pub fn submit(&mut self, state: ClientState) {
        self.comm.record_uplink(ClientState::WIRE_BYTES);
        if self.shards.len() > 1 {
            let seq = self.pending.len() as u32;
            self.pending_parts[self.router.shard_of(&state.start)].push(seq);
        }
        self.pending.push(state);
    }

    /// Bulk epoch ingest: accepts a whole batch of state messages,
    /// pre-routing each to its owning shard at submit time — equivalent
    /// to calling [`Coordinator::submit`] per state (same accounting,
    /// same order). The batch buffer itself is recycled across epochs,
    /// so steady-state ingest reuses its retained capacity.
    ///
    /// ```
    /// use hotpath_core::prelude::*;
    ///
    /// let config = Config::paper_defaults().with_epoch(5).with_window(50);
    /// let mut coordinator = Coordinator::new(config);
    /// let crossing = |obj: u64| ClientState {
    ///     object: ObjectId(obj),
    ///     start: Point::new(0.0, 0.0),
    ///     ts: Timestamp(1),
    ///     fsa: Rect::new(Point::new(9.0, -1.0), Point::new(11.0, 1.0)),
    ///     te: Timestamp(4),
    /// };
    /// coordinator.submit_batch((0..3).map(crossing));
    /// assert_eq!(coordinator.pending_len(), 3);
    ///
    /// // The batch is processed at the next epoch boundary; three
    /// // objects crossing the same corridor make one hot path.
    /// let responses = coordinator.process_epoch(Timestamp(5));
    /// assert_eq!(responses.len(), 3);
    /// assert_eq!(coordinator.hot_count(), 1);
    /// ```
    pub fn submit_batch(&mut self, states: impl IntoIterator<Item = ClientState>) {
        for state in states {
            self.submit(state);
        }
    }

    /// Number of states awaiting the next epoch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Advances the hotness clock to `now`, deleting expired paths from
    /// the index, and expires session leases through the session wheel
    /// (call once per timestamp; cheap when nothing expires).
    pub fn advance_time(&mut self, now: Timestamp) {
        let start = Instant::now();
        for shard in &mut self.shards {
            for dead in shard.hotness.advance(now) {
                shard.index.remove(dead);
            }
        }
        if let Some(table) = &mut self.sessions {
            table.advance(now);
        }
        self.clock = self.clock.max(now);
        // Expiry can change the hot set: drop the read caches.
        *self.cache.get_mut() = ReadCache::default();
        self.processing.expiry_time += start.elapsed();
    }

    /// Installs a pre-routed epoch batch wholesale (the pipelined
    /// engine's sealed back buffer): `states` become the pending batch,
    /// `parts` the per-shard position slices, and the uplink counters —
    /// accounted at the engine's `submit` time — are merged in. Returns
    /// the previously retained (cleared) buffers so the caller can reuse
    /// their capacity as the next front buffer.
    ///
    /// Equivalent to a `submit` loop over `states`: the engine routes
    /// with the same [`ShardRouter`] and accounts the same wire bytes.
    pub(crate) fn install_routed_batch(
        &mut self,
        states: Vec<ClientState>,
        parts: Vec<Vec<u32>>,
        uplink_msgs: u64,
        uplink_bytes: u64,
    ) -> (Vec<ClientState>, Vec<Vec<u32>>) {
        debug_assert!(self.pending.is_empty(), "install over an undrained batch");
        self.comm.uplink_msgs += uplink_msgs;
        self.comm.uplink_bytes += uplink_bytes;
        let old_states = std::mem::replace(&mut self.pending, states);
        let old_parts = std::mem::replace(&mut self.pending_parts, parts);
        (old_states, old_parts)
    }

    /// Runs SinglePath over the pending batch (call at epoch boundaries)
    /// and returns the endpoint responses for all reporting objects.
    ///
    /// Internally this is the four named stages of the epoch pipeline —
    /// *drain-ingest* → *Phase A* → *Phase B* → *publish* — which the
    /// engine layer ([`crate::engine`]) also drives individually so the
    /// pipelined engine can hand responses back before the publish stage
    /// completes.
    pub fn process_epoch(&mut self, now: Timestamp) -> Vec<EndpointResponse> {
        let batch = self.stage_drain_ingest(now);
        let selections = self.stage_strategy(&batch);
        let responses = self.stage_respond(&selections);
        self.stage_recycle(batch);
        self.stage_publish();
        responses
    }

    /// Stage *drain-ingest*: advance the window clock (expiring dead
    /// paths and session leases), seal the pending batch — states plus
    /// their pre-routed per-shard position slices — and apply admission
    /// control (heartbeats, then the queue cap) to the sealed batch.
    pub(crate) fn stage_drain_ingest(&mut self, now: Timestamp) -> EpochBatch {
        self.advance_time(now);
        let mut states = std::mem::take(&mut self.pending);
        let mut parts = std::mem::take(&mut self.pending_parts);
        self.apply_admission(&mut states, &mut parts, now);
        EpochBatch { states, parts }
    }

    /// Admission control over one sealed epoch batch. Runs at the epoch
    /// boundary against the *global* batch (never per shard), so the
    /// admitted set — and everything downstream — is identical at every
    /// shard count and on every engine.
    ///
    /// Order matters and is part of the contract: every submitted state
    /// is a heartbeat first (liveness is information even when the cap
    /// turns the state away), then the cap policy trims the batch, then
    /// the per-shard routing is rebuilt for whatever survived.
    fn apply_admission(
        &mut self,
        states: &mut Vec<ClientState>,
        parts: &mut [Vec<u32>],
        now: Timestamp,
    ) {
        let admission = self.config.admission;
        if self.sessions.is_none() && admission.queue_cap == 0 {
            return; // layer off: zero work, zero counter drift
        }
        if let Some(table) = &mut self.sessions {
            for s in states.iter() {
                table.heartbeat(s.object, s.te);
            }
        }
        let cap = admission.queue_cap;
        let before = states.len();
        if cap > 0 && before > cap {
            match admission.policy {
                AdmissionPolicy::Reject => {
                    // Keep the first `cap` arrivals, refuse the rest.
                    states.truncate(cap);
                    self.admission.rejected += (before - cap) as u64;
                }
                AdmissionPolicy::ShedOldest => {
                    // Keep the newest `cap` arrivals, shed the front.
                    states.drain(..before - cap);
                    self.admission.shed += (before - cap) as u64;
                }
                AdmissionPolicy::EjectSlowest => {
                    // Repeatedly eject the slowest client with states in
                    // the batch — stalest last heartbeat, ties toward the
                    // smaller id — until the batch fits. Each round
                    // removes at least one state, so this terminates.
                    while states.len() > cap {
                        let victim = match &self.sessions {
                            Some(table) => {
                                let mut best: Option<(u64, u64)> = None;
                                for s in states.iter() {
                                    let hb = table.last_heartbeat(s.object).unwrap_or(0);
                                    let key = (hb, s.object.0);
                                    if best.is_none_or(|b| key < b) {
                                        best = Some(key);
                                    }
                                }
                                ObjectId(best.expect("batch is over cap, hence non-empty").1)
                            }
                            // Sessions off: the client of the oldest
                            // queued state is the slowest we can name.
                            None => states[0].object,
                        };
                        let kept = states.len();
                        states.retain(|s| s.object != victim);
                        self.admission.ejected += (kept - states.len()) as u64;
                        if let Some(table) = &mut self.sessions {
                            table.eject_now(victim, now);
                        }
                    }
                }
            }
            // The batch changed: rebuild the per-shard routing.
            if self.shards.len() > 1 {
                for p in parts.iter_mut() {
                    p.clear();
                }
                for (seq, s) in states.iter().enumerate() {
                    parts[self.router.shard_of(&s.start)].push(seq as u32);
                }
            }
        }
        self.admission.admitted += states.len() as u64;
    }

    /// Stages *Phase A* and *Phase B*: run SinglePath over the sealed
    /// batch (sequentially at one shard, scoped-threaded Phase A plus
    /// global Phase B otherwise) and account the processing statistics.
    pub(crate) fn stage_strategy(&mut self, batch: &EpochBatch) -> Vec<Selection> {
        let start = Instant::now();
        // Degraded-epoch mode: past the overload threshold, shed the
        // Phase B FSA-overlap refinement for this epoch (the `Own`
        // ablation policy — each state only considers its own FSA).
        // The trigger is the admitted global batch size, so degradation
        // fires identically at every shard count and on every engine.
        let degrade = self.config.admission.degrade_threshold;
        let policy = if degrade > 0 && batch.states.len() > degrade {
            self.admission.degraded_epochs += 1;
            OverlapPolicy::Own
        } else {
            self.overlap_policy
        };
        let (selections, tally, load) = if self.shards.len() == 1 {
            // Sequential fast path — the pre-sharding coordinator,
            // bit for bit (one index, its own id counter, no threads)
            // whenever the pool resolves to one worker.
            let fsas = Self::epoch_fsas(&mut self.fsa_cache, &batch.states, policy);
            let shard = &mut self.shards[0];
            process_batch_pooled(
                &batch.states,
                &mut shard.index,
                &mut shard.hotness,
                &mut shard.scratch,
                fsas,
                policy,
                self.phase_b_pool,
            )
        } else {
            // The per-shard slices were routed at submit time.
            self.process_batch_sharded(&batch.states, &batch.parts, policy)
        };
        self.last_phase_b = load;
        self.processing.strategy_time += start.elapsed();
        self.processing.epochs += 1;
        self.processing.states_processed += batch.states.len() as u64;
        self.processing.case1 += tally.case1;
        self.processing.case2 += tally.case2;
        self.processing.case3 += tally.case3;
        selections
    }

    /// Builds (and accounts) the endpoint responses for the epoch's
    /// selections, in batch order.
    pub(crate) fn stage_respond(&mut self, selections: &[Selection]) -> Vec<EndpointResponse> {
        selections.iter().map(|sel| self.respond(sel)).collect()
    }

    /// Returns the drained batch buffers to the pending slots so the
    /// next epoch's ingest reuses their capacity.
    pub(crate) fn stage_recycle(&mut self, batch: EpochBatch) {
        let EpochBatch { mut states, mut parts } = batch;
        states.clear();
        for p in &mut parts {
            p.clear();
        }
        self.pending = states;
        self.pending_parts = parts;
    }

    /// Stage *publish*: rebuild and cache the epoch-stamped
    /// [`HotSnapshot`] — the one read path for top-k, hot count, and the
    /// counters. Returns the published snapshot.
    pub(crate) fn stage_publish(&mut self) -> Arc<HotSnapshot> {
        let start = Instant::now();
        // Seal this epoch's session transitions into the snapshot view.
        if let Some(table) = &mut self.sessions {
            self.last_session_events = table.drain_events().into();
        }
        *self.cache.get_mut() = ReadCache::default();
        let snap = self.snapshot();
        self.processing.publish_time += start.elapsed();
        snap
    }

    /// The sharded epoch: parallel Phase A per shard over the pre-routed
    /// `parts`, then the global sequential Phase B over the merged
    /// store.
    /// The epoch's FSA-overlap structure: one incremental delta applied
    /// to the maintained cache under the `Full` policy; the cache's
    /// never-updated empty set under the `Own` ablation, which never
    /// queries it. An associated fn (not a method) so callers can keep
    /// borrowing the coordinator's other fields alongside the result.
    fn epoch_fsas<'a>(
        cache: &'a mut FsaCache,
        states: &[ClientState],
        policy: OverlapPolicy,
    ) -> &'a FsaSet {
        match policy {
            OverlapPolicy::Full => cache.update(states.iter().map(|s| (s.object.0, s.fsa))),
            OverlapPolicy::Own => cache.set(),
        }
    }

    fn process_batch_sharded(
        &mut self,
        states: &[ClientState],
        parts: &[Vec<u32>],
        policy: OverlapPolicy,
    ) -> (Vec<Selection>, CaseTally, PhaseBLoad) {
        let mut outputs: Vec<(usize, PhaseAOutput)> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.shards.len());
            let mut work: Vec<(usize, &mut Shard, &Vec<u32>)> = self
                .shards
                .iter_mut()
                .zip(parts)
                .enumerate()
                .filter(|(_, (_, seqs))| !seqs.is_empty())
                .map(|(i, (shard, seqs))| (i, shard, seqs))
                .collect();
            // Run one slice on the current thread: a populated epoch
            // then uses exactly `shards` threads, and a single-shard
            // epoch spawns none at all.
            let inline = work.pop();
            for (i, shard, seqs) in work {
                handles.push((
                    i,
                    scope.spawn(|| {
                        phase_a(
                            states,
                            seqs,
                            &mut shard.index,
                            &mut shard.hotness,
                            &mut shard.scratch,
                        )
                    }),
                ));
            }
            if let Some((i, shard, seqs)) = inline {
                outputs.push((
                    i,
                    phase_a(states, seqs, &mut shard.index, &mut shard.hotness, &mut shard.scratch),
                ));
            }
            for (i, h) in handles {
                outputs.push((i, h.join().expect("shard worker panicked")));
            }
        });

        // Merge: selections back into batch order, deferred positions
        // sorted so Phase B runs in the order the sequential pass would.
        // The merge vectors and each shard's Phase-A buffers are pooled.
        let mut tally = CaseTally::default();
        let mut tagged = std::mem::take(&mut self.front.tagged);
        let mut deferred = std::mem::take(&mut self.front.deferred);
        for (i, mut out) in outputs {
            tally.case1 += out.tally.case1;
            tally.case2 += out.tally.case2;
            tally.case3 += out.tally.case3;
            tagged.append(&mut out.selections);
            deferred.append(&mut out.deferred);
            self.shards[i].scratch.recycle(out);
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        deferred.sort_unstable();
        let mut selections: Vec<Selection> = tagged.drain(..).map(|(_, s)| s).collect();
        self.front.tagged = tagged;

        // Apply the epoch's FSA delta to the incrementally maintained
        // overlap structure — query-equivalent to a from-scratch build
        // of this batch, at O(changed) grid edits instead of a rebuild.
        let fsas = Self::epoch_fsas(&mut self.fsa_cache, states, policy);
        let workers = self.phase_b_pool.for_items(deferred.len());
        let load;
        if workers > 1 {
            // Parallel Phase B: the pure eval pass fans out over the
            // read-only merged shard view; the live pass (hotness sums
            // and authoritative commits) then applies in deferred order.
            let reader = ShardedReader { shards: &self.shards };
            let eval = phase_b_eval(states, &deferred, &reader, fsas, policy, workers);
            load = eval.load.clone();
            let mut store = ShardedStore {
                shards: &mut self.shards,
                router: self.router,
                next_id: &mut self.next_path_id,
            };
            phase_b_apply(
                states,
                &deferred,
                &eval,
                &mut store,
                fsas,
                policy,
                &mut tally,
                &mut selections,
            );
        } else {
            let t0 = Instant::now();
            let mut groups = std::mem::take(&mut self.front.groups);
            let mut store = ShardedStore {
                shards: &mut self.shards,
                router: self.router,
                next_id: &mut self.next_path_id,
            };
            phase_b(
                states,
                &deferred,
                &mut store,
                fsas,
                policy,
                &mut tally,
                &mut selections,
                &mut groups,
            );
            self.front.groups = groups;
            let mut l = PhaseBLoad::sequential(deferred.len());
            l.busy_ns = vec![t0.elapsed().as_nanos() as u64];
            load = l;
        }
        deferred.clear();
        self.front.deferred = deferred;
        (selections, tally, load)
    }

    /// Builds (and accounts) the endpoint response for one selection.
    fn respond(&mut self, sel: &Selection) -> EndpointResponse {
        let hint = if self.hints_enabled {
            self.hottest_from(&sel.endpoint).map(|p| PathHint { seg: p.seg })
        } else {
            None
        };
        let resp = EndpointResponse {
            object: sel.object,
            endpoint: TimePoint::new(sel.endpoint, sel.te),
            hint,
        };
        self.comm.record_downlink(resp.wire_bytes());
        resp
    }

    /// The hottest path leaving the vertex at `p`, if any.
    pub fn hottest_from(&self, p: &Point) -> Option<MotionPath> {
        // Paths starting at `p`'s vertex all live in its owning shard.
        let shard = &self.shards[self.router.shard_of(p)];
        shard
            .index
            .paths_starting_at(p)
            .iter()
            .max_by_key(|&&id| (shard.hotness.get(id), std::cmp::Reverse(id)))
            .and_then(|&id| shard.index.get(id))
            .copied()
    }

    /// Number of motion paths currently stored (the paper's *index size*
    /// metric, Figures 7a / 8a).
    pub fn index_size(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Looks up a stored path by id across all shards.
    pub fn path(&self, id: PathId) -> Option<&MotionPath> {
        self.shards.iter().find_map(|s| s.index.get(id))
    }

    /// All stored paths with positive hotness, unordered. The
    /// enumeration is cached: repeated reads between mutations share one
    /// allocation (the cache drops on `advance_time` / epoch
    /// processing). Callers that need to reorder copy out with
    /// `.to_vec()`.
    pub fn hot_paths(&self) -> Arc<[HotPath]> {
        if let Some(hot) = self.cache.borrow().hot.clone() {
            return hot;
        }
        let hot: Arc<[HotPath]> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard.hotness.iter().filter_map(|(id, h)| {
                    shard.index.get(id).map(|p| HotPath {
                        path: *p,
                        hotness: h,
                        score: h as f64 * p.length(),
                    })
                })
            })
            .collect::<Vec<_>>()
            .into();
        self.cache.borrow_mut().hot = Some(hot.clone());
        hot
    }

    /// The current [`HotSnapshot`]: the epoch-stamped immutable read
    /// view published at the end of the last `process_epoch`, rebuilt
    /// lazily if the window has advanced since. This is the one read
    /// path — `top_k`, `top_k_score`, and the engine layer all route
    /// through it.
    pub fn snapshot(&self) -> Arc<HotSnapshot> {
        if let Some(snap) = self.cache.borrow().snapshot.clone() {
            return snap;
        }
        let hot_count = self.hot_count();
        let top: Vec<HotPath> = if hot_count == 0 { Vec::new() } else { self.top_n(self.config.k) };
        let top_k_score = if top.is_empty() {
            0.0
        } else {
            top.iter().map(|h| h.score).sum::<f64>() / top.len() as f64
        };
        let snap = Arc::new(HotSnapshot {
            epoch: self.processing.epochs,
            timestamp: self.clock,
            top_k: top.into(),
            top_k_score,
            hot_count,
            index_size: self.index_size(),
            comm: self.comm,
            processing: self.processing,
            admission: self.admission,
            session_events: self.last_session_events.clone(),
            sessions_healthy: self.sessions.as_ref().map_or(0, |t| t.healthy_count()),
            sessions_dropped: self.sessions.as_ref().map_or(0, |t| t.dropped_count()),
            phase_b: self.last_phase_b.clone(),
        });
        self.cache.borrow_mut().snapshot = Some(snap.clone());
        snap
    }

    /// The top-`k` hottest motion paths (config `k`), hottest first;
    /// ties break toward longer paths, then lower ids (deterministic).
    /// Served from the cached [`HotSnapshot`] — no per-read allocation.
    pub fn top_k(&self) -> Arc<[HotPath]> {
        self.snapshot().top_k.clone()
    }

    /// The top-`n` hottest motion paths for an explicit `n`, merged
    /// across shards. O(n·shards) — each shard's incremental rank
    /// structure yields its own hottest `n` without sorting, and the
    /// global answer is a subset of their union; the hot-set size `P`
    /// never enters the cost.
    pub fn top_n(&self, n: usize) -> Vec<HotPath> {
        if n == 0 {
            return Vec::new();
        }
        let mut merged: Vec<HotPath> = Vec::with_capacity(n * self.shards.len().min(4));
        for shard in &self.shards {
            merged.extend(
                shard
                    .hotness
                    .top_iter()
                    .filter_map(|(id, h)| {
                        shard.index.get(id).map(|p| HotPath {
                            path: *p,
                            hotness: h,
                            score: h as f64 * p.length(),
                        })
                    })
                    .take(n),
            );
        }
        merged.sort_by(|a, b| {
            b.hotness
                .cmp(&a.hotness)
                .then_with(|| b.path.length().total_cmp(&a.path.length()))
                .then_with(|| a.path.id.cmp(&b.path.id))
        });
        merged.truncate(n);
        merged
    }

    /// The score of the top-`k` set: the average of `hotness x length`
    /// over its members (Section 3.1). Zero when no paths are hot.
    /// Served from the cached [`HotSnapshot`].
    pub fn top_k_score(&self) -> f64 {
        self.snapshot().top_k_score
    }

    /// Communication counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm
    }

    /// Admission-control counters (all zeros while the ingest bound and
    /// sessions are off).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission
    }

    /// The session table, when sessions are enabled
    /// (`Config::with_lease`).
    pub fn sessions(&self) -> Option<&SessionTable> {
        self.sessions.as_ref()
    }

    /// Processing counters.
    pub fn processing_stats(&self) -> &ProcessingStats {
        &self.processing
    }

    /// Current hotness of a specific path.
    pub fn hotness_of(&self, id: PathId) -> u32 {
        self.shards.iter().map(|s| s.hotness.get(id)).sum()
    }

    /// Number of paths with positive hotness, across all shards.
    pub fn hot_count(&self) -> usize {
        self.shards.iter().map(|s| s.hotness.len()).sum()
    }

    /// Live expiry events pending in the hotness tables (diagnostics).
    pub fn pending_expiry_events(&self) -> usize {
        self.shards.iter().map(|s| s.hotness.pending_events()).sum()
    }

    /// Internal-consistency audit: every shard's index must be
    /// self-consistent, every path must live in the shard its start
    /// vertex routes to, path ids must be globally unique, each shard's
    /// incremental hotness rank must agree with its counter table, and
    /// the merged incremental top-k must equal the sort-based oracle
    /// over the full hot set.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (i, shard) in self.shards.iter().enumerate() {
            shard.index.check_consistency().map_err(|e| format!("shard {i}: {e}"))?;
            shard.hotness.check_consistency().map_err(|e| format!("shard {i} hotness: {e}"))?;
            for p in shard.index.iter() {
                if self.router.shard_of(&p.start()) != i {
                    return Err(format!("path {} misrouted to shard {i}", p.id));
                }
                if !seen.insert(p.id) {
                    return Err(format!("duplicate path id {} across shards", p.id));
                }
            }
        }
        self.fsa_cache.check_consistency().map_err(|e| format!("fsa cache: {e}"))?;
        if let Some(table) = &self.sessions {
            table.check().map_err(|e| format!("session table: {e}"))?;
        }
        // The incremental rank path must reproduce the naive full sort
        // at every depth (the pre-incremental `top_n` implementation).
        let mut oracle = self.hot_paths().to_vec();
        oracle.sort_by(|a, b| {
            b.hotness
                .cmp(&a.hotness)
                .then_with(|| b.path.length().total_cmp(&a.path.length()))
                .then_with(|| a.path.id.cmp(&b.path.id))
        });
        let fast = self.top_n(oracle.len().max(1));
        if fast.len() != oracle.len() {
            return Err(format!("top_n returned {} of {} hot paths", fast.len(), oracle.len()));
        }
        for (f, o) in fast.iter().zip(&oracle) {
            if f.path.id != o.path.id || f.hotness != o.hotness || f.score != o.score {
                return Err(format!(
                    "incremental top-k diverged from full sort at {} (oracle {})",
                    f.path.id, o.path.id
                ));
            }
        }
        Ok(())
    }

    // ---- checkpoint / restore -----------------------------------------

    /// Serializes the full coordinator state — path slabs, heat slabs,
    /// expiry events, tombstones, the pending batch, counters, and the
    /// configuration echo — into a validated [`Checkpoint`] image. Each
    /// section is one bounded memcpy of a contiguous slab; nothing walks
    /// paths one by one.
    pub fn checkpoint(&self) -> Checkpoint {
        self.checkpoint_with_extra(&[], 0, 0)
    }

    /// [`Coordinator::checkpoint`] with an engine-side front buffer
    /// appended: `extra_pending` rides along after the installed batch
    /// (submit order preserved) and the front's uplink accounting is
    /// merged into the stats section — without mutating the coordinator.
    pub(crate) fn checkpoint_with_extra(
        &self,
        extra_pending: &[ClientState],
        extra_uplink_msgs: u64,
        extra_uplink_bytes: u64,
    ) -> Checkpoint {
        let mut flags = 0;
        if self.hints_enabled {
            flags |= FLAG_HINTS;
        }
        if self.overlap_policy == OverlapPolicy::Own {
            flags |= FLAG_OVERLAP_OWN;
        }
        let mut b = CheckpointBuilder::new(
            self.shards.len() as u32,
            self.processing.epochs,
            self.clock.raw(),
            self.next_path_id,
            flags,
        );
        b.section(SectionKind::Config, 0, &[ConfigRecord::from_config(&self.config)]);
        let sess_counters = self.sessions.as_ref().map(|t| t.counters()).unwrap_or_default();
        b.section(
            SectionKind::Stats,
            0,
            &[StatsRecord {
                uplink_msgs: self.comm.uplink_msgs + extra_uplink_msgs,
                uplink_bytes: self.comm.uplink_bytes + extra_uplink_bytes,
                downlink_msgs: self.comm.downlink_msgs,
                downlink_bytes: self.comm.downlink_bytes,
                epochs: self.processing.epochs,
                states_processed: self.processing.states_processed,
                strategy_ns: self.processing.strategy_time.as_nanos() as u64,
                expiry_ns: self.processing.expiry_time.as_nanos() as u64,
                publish_ns: self.processing.publish_time.as_nanos() as u64,
                case1: self.processing.case1,
                case2: self.processing.case2,
                case3: self.processing.case3,
                admitted: self.admission.admitted,
                rejected: self.admission.rejected,
                shed: self.admission.shed,
                adm_ejected: self.admission.ejected,
                degraded_epochs: self.admission.degraded_epochs,
                sess_connects: sess_counters.connects,
                sess_drops: sess_counters.drops,
                sess_reconnects: sess_counters.reconnects,
                sess_ejections: sess_counters.ejections,
            }],
        );
        if let Some(table) = &self.sessions {
            b.section(SectionKind::Session, 0, &table.records_vec());
        }
        if extra_pending.is_empty() {
            b.section(SectionKind::Pending, 0, &self.pending);
        } else {
            let mut all = Vec::with_capacity(self.pending.len() + extra_pending.len());
            all.extend_from_slice(&self.pending);
            all.extend_from_slice(extra_pending);
            b.section(SectionKind::Pending, 0, &all);
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let s = i as u32;
            b.section(SectionKind::Paths, s, shard.index.paths_slice());
            b.section(SectionKind::Heat, s, shard.hotness.heat_slice());
            b.section(SectionKind::Events, s, &shard.hotness.events_vec());
            b.section(SectionKind::Dead, s, &shard.hotness.dead_entries());
            b.section(
                SectionKind::ShardMeta,
                s,
                &[ShardMetaRecord {
                    index_next_id: shard.index.next_id(),
                    recorded: shard.hotness.total_recorded(),
                }],
            );
        }
        b.finish()
    }

    /// Rebuilds a coordinator from a validated checkpoint, continuing
    /// bit-for-bit where the checkpointed one left off. `config` must be
    /// the exact configuration the checkpoint was taken under (the
    /// embedded echo is compared field by field); the hints and
    /// overlap-policy switches are restored from the header flags.
    ///
    /// The slabs are adopted verbatim and the expiry events re-enter the
    /// timer wheel keyed by the header clock; derived structures (grid,
    /// adjacency, slot maps, rank sets, pending routing) are rebuilt,
    /// and the read cache starts invalidated — the first read after a
    /// restore can never serve pre-restore data.
    pub fn from_checkpoint(config: Config, ck: &Checkpoint) -> Result<Self, CheckpointError> {
        let one = |what: &str, len: usize| {
            if len == 1 {
                Ok(())
            } else {
                Err(CheckpointError::Malformed(format!("expected one {what} record, found {len}")))
            }
        };
        let header = *ck.header();
        let cfg_rec: Vec<ConfigRecord> = ck.section(SectionKind::Config, 0)?;
        one("config", cfg_rec.len())?;
        cfg_rec[0].matches(&config)?;
        if header.shard_count as usize != config.shards {
            return Err(CheckpointError::Malformed(format!(
                "header says {} shards, config {}",
                header.shard_count, config.shards
            )));
        }
        let stats: Vec<StatsRecord> = ck.section(SectionKind::Stats, 0)?;
        one("stats", stats.len())?;
        let stats = stats[0];
        let pending: Vec<ClientState> = ck.section(SectionKind::Pending, 0)?;

        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards as u32 {
            let paths: Vec<MotionPath> = ck.section(SectionKind::Paths, i)?;
            let heat: Vec<HeatEntry> = ck.section(SectionKind::Heat, i)?;
            let events: Vec<ExpiryEvent> = ck.section(SectionKind::Events, i)?;
            let dead: Vec<DeadEntry> = ck.section(SectionKind::Dead, i)?;
            let meta: Vec<ShardMetaRecord> = ck.section(SectionKind::ShardMeta, i)?;
            one("shard-meta", meta.len())?;
            let index = MotionPathIndex::from_checkpoint_parts(
                config.grid_cell,
                config.vertex_grain,
                paths,
                meta[0].index_next_id,
            )
            .map_err(|e| CheckpointError::Malformed(format!("shard {i} index: {e}")))?;
            let hotness = Hotness::from_checkpoint_parts(
                config.window,
                heat,
                events,
                dead,
                meta[0].recorded,
                Timestamp(header.clock),
            )
            .map_err(|e| CheckpointError::Malformed(format!("shard {i} hotness: {e}")))?;
            for (id, _) in hotness.iter() {
                if index.get(id).is_none() {
                    return Err(CheckpointError::Malformed(format!(
                        "shard {i}: hot path {id} missing from the path slab"
                    )));
                }
            }
            shards.push(Shard { index, hotness, scratch: ScratchArena::new() });
        }

        let router = ShardRouter::new(&config);
        let mut pending_parts =
            if config.shards > 1 { vec![Vec::new(); config.shards] } else { Vec::new() };
        if config.shards > 1 {
            for (seq, state) in pending.iter().enumerate() {
                pending_parts[router.shard_of(&state.start)].push(seq as u32);
            }
        }
        // Not part of the image: the cache repopulates from the first
        // post-restore batch, and overlap queries only see the rect
        // multiset, so parity is preserved.
        let fsa_cache = FsaCache::new(overlap_cell_of(&config));
        let sessions = if config.admission.sessions_enabled() {
            let recs: Vec<SessionRecord> = ck.section(SectionKind::Session, 0)?;
            Some(
                SessionTable::from_checkpoint_parts(
                    config.admission.lease,
                    config.admission.grace,
                    recs,
                    SessionCounters {
                        connects: stats.sess_connects,
                        drops: stats.sess_drops,
                        reconnects: stats.sess_reconnects,
                        ejections: stats.sess_ejections,
                    },
                    Timestamp(header.clock),
                )
                .map_err(|e| CheckpointError::Malformed(format!("session table: {e}")))?,
            )
        } else {
            None
        };
        Ok(Coordinator {
            config,
            shards,
            router,
            pending,
            pending_parts,
            next_path_id: header.next_path_id,
            comm: CommStats {
                uplink_msgs: stats.uplink_msgs,
                uplink_bytes: stats.uplink_bytes,
                downlink_msgs: stats.downlink_msgs,
                downlink_bytes: stats.downlink_bytes,
            },
            processing: ProcessingStats {
                epochs: stats.epochs,
                states_processed: stats.states_processed,
                strategy_time: Duration::from_nanos(stats.strategy_ns),
                expiry_time: Duration::from_nanos(stats.expiry_ns),
                publish_time: Duration::from_nanos(stats.publish_ns),
                case1: stats.case1,
                case2: stats.case2,
                case3: stats.case3,
            },
            hints_enabled: header.flags & FLAG_HINTS != 0,
            overlap_policy: if header.flags & FLAG_OVERLAP_OWN != 0 {
                OverlapPolicy::Own
            } else {
                OverlapPolicy::Full
            },
            fsa_cache,
            front: FrontScratch::default(),
            clock: Timestamp(header.clock),
            cache: RefCell::new(ReadCache::default()),
            sessions,
            admission: AdmissionStats {
                admitted: stats.admitted,
                rejected: stats.rejected,
                shed: stats.shed,
                ejected: stats.adm_ejected,
                degraded_epochs: stats.degraded_epochs,
            },
            // Rebuilt from the config, not the image: the worker budget
            // is a machine-local performance knob (results are
            // worker-invariant), so restoring on different hardware
            // re-clamps cleanly.
            phase_b_pool: WorkerPool::new(config.phase_b_workers),
            last_phase_b: PhaseBLoad::default(),
            last_session_events: Arc::from(Vec::new()),
        })
    }

    /// Moves the restored pending batch (and its routing) out, leaving
    /// the coordinator drained — the pipelined engine reclaims the batch
    /// into its front buffer so the normal seal/install cycle resumes.
    /// The slots left behind keep the shard-count shape, since the
    /// buffer-swap cycle hands them back to the engine later.
    pub(crate) fn take_pending(&mut self) -> (Vec<ClientState>, Vec<Vec<u32>>) {
        let empty_parts =
            if self.shards.len() > 1 { vec![Vec::new(); self.shards.len()] } else { Vec::new() };
        (std::mem::take(&mut self.pending), std::mem::replace(&mut self.pending_parts, empty_parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn cfg() -> Config {
        Config::paper_defaults().with_epoch(10).with_window(100)
    }

    fn state(obj: u64, start: (f64, f64), end: (f64, f64), ts: u64, te: u64) -> ClientState {
        let e = Point::new(end.0, end.1);
        ClientState {
            object: ObjectId(obj),
            start: Point::new(start.0, start.1),
            ts: Timestamp(ts),
            fsa: Rect::new(e - Point::new(2.0, 2.0), e + Point::new(2.0, 2.0)),
            te: Timestamp(te),
        }
    }

    #[test]
    fn epoch_processing_creates_and_responds() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 8));
        c.submit(state(2, (0.0, 100.0), (50.0, 100.0), 0, 9));
        assert_eq!(c.pending_len(), 2);
        let responses = c.process_epoch(Timestamp(10));
        assert_eq!(responses.len(), 2);
        assert_eq!(c.pending_len(), 0);
        assert_eq!(c.index_size(), 2);
        // Responses carry each object's te and an endpoint inside its FSA.
        let r1 = responses.iter().find(|r| r.object == ObjectId(1)).unwrap();
        assert_eq!(r1.endpoint.t, Timestamp(8));
        assert!((r1.endpoint.p.x - 50.0).abs() <= 2.0);
        assert!(r1.hint.is_none());
    }

    #[test]
    fn repeated_crossings_heat_up_and_expire() {
        let mut c = Coordinator::new(cfg());
        // Same corridor crossed by many objects across two epochs.
        for obj in 0..5u64 {
            c.submit(state(obj, (0.0, 0.0), (50.0, 0.0), 0, 9));
        }
        let _ = c.process_epoch(Timestamp(10));
        assert_eq!(c.index_size(), 1, "identical states must share one path");
        let top = c.top_k();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].hotness, 5);
        // Score = hotness x length = 5 * 50.
        assert!((c.top_k_score() - 250.0).abs() < 1.0);

        // After W the crossings expire and the path is deleted.
        c.advance_time(Timestamp(9 + 100));
        assert_eq!(c.index_size(), 0);
        assert!(c.top_k().is_empty());
        assert_eq!(c.top_k_score(), 0.0);
    }

    #[test]
    fn top_k_orders_by_hotness_then_length() {
        let mut c = Coordinator::new(cfg().with_k(2));
        // Path A: 3 crossings; path B: 1 crossing but longer; path C: 1.
        for obj in 0..3u64 {
            c.submit(state(obj, (0.0, 0.0), (50.0, 0.0), 0, 9));
        }
        c.submit(state(10, (0.0, 200.0), (150.0, 200.0), 0, 9));
        c.submit(state(11, (0.0, 400.0), (20.0, 400.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        let top = c.top_n(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].hotness, 3);
        assert!(top[1].path.length() > top[2].path.length());
        // top_k respects config k = 2.
        assert_eq!(c.top_k().len(), 2);
    }

    #[test]
    fn comm_accounting_tracks_both_directions() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        let comm = c.comm_stats();
        assert_eq!(comm.uplink_msgs, 1);
        assert_eq!(comm.uplink_bytes, ClientState::WIRE_BYTES as u64);
        assert_eq!(comm.downlink_msgs, 1);
        assert_eq!(comm.downlink_bytes, EndpointResponse::WIRE_BYTES as u64);
    }

    #[test]
    fn hints_report_hottest_outgoing_path() {
        let mut c = Coordinator::new(cfg()).with_hints();
        // Build a hot corridor out of the vertex (50, 0): two chained
        // reports.
        for obj in 0..4u64 {
            c.submit(state(obj, (50.0, 0.0), (100.0, 0.0), 0, 5));
        }
        let _ = c.process_epoch(Timestamp(10));
        // Now an object lands on vertex (50, 0): its response should
        // hint at the hot outgoing path.
        c.submit(state(9, (0.0, 0.0), (50.0, 0.0), 10, 15));
        let responses = c.process_epoch(Timestamp(20));
        let r = &responses[0];
        let hint = r.hint.expect("hint expected");
        assert_eq!(hint.seg.a, Point::new(50.0, 0.0));
        assert_eq!(hint.seg.b, Point::new(100.0, 0.0));
        assert_eq!(
            r.wire_bytes(),
            EndpointResponse::WIRE_BYTES + EndpointResponse::HINT_EXTRA_BYTES
        );
    }

    #[test]
    fn processing_stats_accumulate() {
        let mut c = Coordinator::new(cfg());
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        c.submit(state(1, (50.0, 0.0), (100.0, 0.0), 9, 19));
        let _ = c.process_epoch(Timestamp(20));
        let p = c.processing_stats();
        assert_eq!(p.epochs, 2);
        assert_eq!(p.states_processed, 2);
        assert_eq!(p.case1 + p.case2 + p.case3, 2);
    }

    /// Drives the same deterministic multi-epoch workload through
    /// coordinators at several shard counts and demands identical
    /// observable behavior — responses (order included), path ids,
    /// top-k, scores, stats.
    #[test]
    fn sharded_epochs_match_sequential_exactly() {
        type Responses = Vec<(u64, f64, f64, u64)>;
        type TopK = Vec<(u64, f64, f64, f64, u32)>;
        fn drive(shards: usize) -> (Responses, TopK, u64) {
            let mut c = Coordinator::new(cfg().with_k(5).with_shards(shards));
            let mut responses = Vec::new();
            // A deterministic pseudo-random workload spread over many
            // grid cells (so several shards are actually populated),
            // with recurring corridors so all three cases fire.
            let mut s = 42u64;
            let mut rand = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            for epoch in 1..=12u64 {
                let now = Timestamp(epoch * 10);
                let n = 40 + (rand() % 20) as usize;
                for i in 0..n {
                    let corridor = rand() % 12;
                    let sx = (corridor * 400) as f64;
                    let sy = ((rand() % 5) * 300) as f64;
                    let ex = sx + 60.0 + (rand() % 3) as f64 * 5.0;
                    let ey = sy + (rand() % 40) as f64;
                    c.submit(state(i as u64, (sx, sy), (ex, ey), now.raw() - 10, now.raw() - 1));
                }
                for r in c.process_epoch(now) {
                    responses.push((
                        r.object.0,
                        r.endpoint.p.x,
                        r.endpoint.p.y,
                        r.endpoint.t.raw(),
                    ));
                }
            }
            c.check_consistency().unwrap();
            let top: Vec<(u64, f64, f64, f64, u32)> = c
                .top_n(20)
                .iter()
                .map(|h| (h.path.id.0, h.path.start().x, h.path.end().x, h.score, h.hotness))
                .collect();
            (responses, top, c.processing_stats().case1)
        }

        let base = drive(1);
        for shards in [2, 3, 8] {
            let got = drive(shards);
            assert_eq!(base.0, got.0, "responses diverged at {shards} shards");
            assert_eq!(base.1, got.1, "top-k diverged at {shards} shards");
            assert_eq!(base.2, got.2, "case tallies diverged at {shards} shards");
        }
    }

    /// `submit_batch` must be observationally identical to a loop of
    /// `submit` calls — same responses, same comm accounting, same
    /// state — at 1 shard and many.
    #[test]
    fn submit_batch_matches_individual_submits() {
        for shards in [1usize, 3] {
            let mk_states = || {
                (0..30u64).map(|obj| {
                    let x = (obj % 6) as f64 * 500.0;
                    state(obj, (x, 0.0), (x + 50.0, (obj % 3) as f64 * 10.0), 0, 9)
                })
            };
            let mut a = Coordinator::new(cfg().with_shards(shards));
            for s in mk_states() {
                a.submit(s);
            }
            let mut b = Coordinator::new(cfg().with_shards(shards));
            b.submit_batch(mk_states());
            assert_eq!(a.pending_len(), b.pending_len());

            let ra: Vec<(u64, u64)> = a
                .process_epoch(Timestamp(10))
                .iter()
                .map(|r| (r.object.0, r.endpoint.t.raw()))
                .collect();
            let rb: Vec<(u64, u64)> = b
                .process_epoch(Timestamp(10))
                .iter()
                .map(|r| (r.object.0, r.endpoint.t.raw()))
                .collect();
            assert_eq!(ra, rb, "responses diverged at {shards} shards");
            assert_eq!(a.comm_stats().uplink_msgs, b.comm_stats().uplink_msgs);
            assert_eq!(a.index_size(), b.index_size());
            assert_eq!(a.top_k_score().to_bits(), b.top_k_score().to_bits());
            a.check_consistency().unwrap();
            b.check_consistency().unwrap();
        }
    }

    /// Steady-state epochs must not leak state through the recycled
    /// buffers: many epochs over the same coordinator keep producing
    /// consistent answers (and the oracle check inside
    /// `check_consistency` pins incremental top-k == full sort).
    #[test]
    fn recycled_epoch_buffers_stay_clean_over_many_epochs() {
        for shards in [1usize, 4] {
            let mut c = Coordinator::new(cfg().with_shards(shards));
            for epoch in 1..=20u64 {
                let now = Timestamp(epoch * 10);
                for obj in 0..25u64 {
                    let x = (obj % 5) as f64 * 600.0;
                    let y = ((obj + epoch) % 4) as f64 * 300.0;
                    c.submit_batch(std::iter::once(state(
                        obj,
                        (x, y),
                        (x + 40.0, y),
                        now.raw() - 10,
                        now.raw() - 1,
                    )));
                }
                let responses = c.process_epoch(now);
                assert_eq!(responses.len(), 25);
                assert_eq!(c.pending_len(), 0);
                c.check_consistency().unwrap();
            }
            assert!(c.hot_count() > 0);
        }
    }

    /// Checkpoint mid-run, rebuild from the bytes, and continue: every
    /// observable — responses, top-k bits, stats, consistency — must
    /// match the uninterrupted coordinator exactly, at 1 shard and many,
    /// including a checkpoint taken with a *pending* (undrained) batch.
    #[test]
    fn checkpoint_roundtrip_continues_bit_for_bit() {
        for shards in [1usize, 4] {
            let config = cfg().with_k(5).with_shards(shards);
            let mut live = Coordinator::new(config).with_hints();
            let mut s = 7u64;
            let mut rand = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            let mut feed = |c: &mut Coordinator, epoch: u64| {
                let now = Timestamp(epoch * 10);
                for i in 0..30u64 {
                    let x = ((rand() % 8) * 400) as f64;
                    let y = ((rand() % 4) * 300) as f64;
                    c.submit(state(i, (x, y), (x + 50.0, y), now.raw() - 10, now.raw() - 1));
                }
                now
            };
            for epoch in 1..=6u64 {
                let now = feed(&mut live, epoch);
                let _ = live.process_epoch(now);
            }
            // Leave a half-submitted batch pending before checkpointing.
            live.submit(state(99, (0.0, 0.0), (50.0, 0.0), 60, 65));
            let image = live.checkpoint();
            let mut restored =
                Coordinator::from_checkpoint(config, &image).expect("restore failed");
            assert_eq!(restored.pending_len(), live.pending_len());
            restored.check_consistency().unwrap();

            // Both must now evolve identically. Reuse one RNG stream so
            // both sides see the same future workload.
            let mut s2 = 1234u64;
            for epoch in 7..=12u64 {
                let mut batch = Vec::new();
                for i in 0..25u64 {
                    s2 = s2.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let r = s2 >> 33;
                    let x = ((r % 8) * 400) as f64;
                    let y = ((r % 4) * 300) as f64;
                    batch.push(state(i, (x, y), (x + 50.0, y), epoch * 10 - 10, epoch * 10 - 1));
                }
                let now = Timestamp(epoch * 10);
                live.submit_batch(batch.iter().copied());
                restored.submit_batch(batch.iter().copied());
                let ra: Vec<(u64, u64, u64)> = live
                    .process_epoch(now)
                    .iter()
                    .map(|r| (r.object.0, r.endpoint.p.x.to_bits(), r.endpoint.t.raw()))
                    .collect();
                let rb: Vec<(u64, u64, u64)> = restored
                    .process_epoch(now)
                    .iter()
                    .map(|r| (r.object.0, r.endpoint.p.x.to_bits(), r.endpoint.t.raw()))
                    .collect();
                assert_eq!(ra, rb, "responses diverged at {shards} shards, epoch {epoch}");
                assert_eq!(
                    live.top_k_score().to_bits(),
                    restored.top_k_score().to_bits(),
                    "scores diverged at {shards} shards, epoch {epoch}"
                );
            }
            assert_eq!(live.comm_stats(), restored.comm_stats());
            assert_eq!(live.index_size(), restored.index_size());
            live.check_consistency().unwrap();
            restored.check_consistency().unwrap();

            // Double restore from the same image is idempotent.
            let again = Coordinator::from_checkpoint(config, &image).unwrap();
            assert_eq!(again.checkpoint().as_bytes(), image.as_bytes());
        }
    }

    #[test]
    fn restore_rejects_wrong_config_and_foreign_bytes() {
        let config = cfg();
        let c = Coordinator::new(config);
        let image = c.checkpoint();
        assert!(matches!(
            Coordinator::from_checkpoint(config.with_k(3), &image),
            Err(crate::checkpoint::CheckpointError::ConfigMismatch(_))
        ));
        assert!(matches!(
            Coordinator::from_checkpoint(config.with_shards(2), &image),
            Err(crate::checkpoint::CheckpointError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn admission_policies_are_shard_invariant_and_account() {
        use crate::config::AdmissionPolicy::*;
        for policy in [Reject, ShedOldest, EjectSlowest] {
            let drive = |shards: usize| {
                let config =
                    cfg().with_shards(shards).with_lease(50, 20).with_admission_cap(10, policy);
                let mut c = Coordinator::new(config);
                // 3 clients x 5 states = 15 pending, 5 over the cap.
                for obj in 0..3u64 {
                    for i in 0..5u64 {
                        let x = (obj * 600) as f64;
                        c.submit(state(obj, (x, 0.0), (x + 50.0, i as f64 * 40.0), 0, 1 + i));
                    }
                }
                let responses: Vec<u64> =
                    c.process_epoch(Timestamp(10)).iter().map(|r| r.object.0).collect();
                c.check_consistency().unwrap();
                (responses, c.admission_stats(), c.index_size())
            };
            let base = drive(1);
            assert_eq!(base.1.admitted, 10, "{policy:?}");
            assert_eq!(base.1.turned_away(), 5, "{policy:?}");
            match policy {
                Reject => assert_eq!(base.1.rejected, 5),
                ShedOldest => assert_eq!(base.1.shed, 5),
                EjectSlowest => assert_eq!(base.1.ejected, 5),
            }
            for shards in [3usize, 4] {
                assert_eq!(drive(shards), base, "{policy:?} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn eject_slowest_removes_the_stalest_client_and_its_session() {
        let config = cfg().with_lease(50, 20).with_admission_cap(6, AdmissionPolicy::EjectSlowest);
        let mut c = Coordinator::new(config);
        // Client 7 heartbeats stalest (te 1); clients 8 and 9 are fresher.
        for (obj, te) in [(7u64, 1u64), (8, 5), (9, 9)] {
            for i in 0..3u64 {
                let x = (obj * 600) as f64;
                c.submit(state(obj, (x, 0.0), (x + 50.0, i as f64 * 40.0), 0, te));
            }
        }
        let survivors: Vec<u64> =
            c.process_epoch(Timestamp(10)).iter().map(|r| r.object.0).collect();
        assert!(!survivors.contains(&7), "stalest client must be ejected");
        assert_eq!(survivors.len(), 6);
        assert_eq!(c.admission_stats().ejected, 3);
        let table = c.sessions().unwrap();
        assert_eq!(table.counters().ejections, 1);
        assert!(table.state_of(ObjectId(7)).is_none());
        assert!(table.state_of(ObjectId(8)).is_some());
    }

    #[test]
    fn session_lifecycle_surfaces_in_snapshots() {
        use crate::session::SessionTransition;
        let mut c = Coordinator::new(cfg().with_lease(25, 10));
        c.submit(state(1, (0.0, 0.0), (50.0, 0.0), 0, 9));
        c.submit(state(2, (0.0, 300.0), (50.0, 300.0), 0, 9));
        let _ = c.process_epoch(Timestamp(10));
        let snap = c.snapshot();
        assert_eq!(snap.sessions_healthy, 2);
        assert_eq!(snap.session_events.len(), 2, "two Connected events");
        // Only client 1 keeps reporting; client 2 goes silent with its
        // lease ending at 9 + 25 = 34 and grace ending at 44.
        for epoch in 2..=5u64 {
            let now = epoch * 10;
            c.submit(state(1, (0.0, 0.0), (50.0, 0.0), now - 10, now - 1));
            let _ = c.process_epoch(Timestamp(now));
        }
        let snap = c.snapshot();
        assert_eq!(snap.sessions_healthy, 1);
        assert_eq!(snap.sessions_dropped, 0);
        let table = c.sessions().unwrap();
        assert_eq!(table.counters().drops, 1);
        assert_eq!(table.counters().ejections, 1);
        assert!(table.state_of(ObjectId(2)).is_none());
        // The epoch-4 snapshot carried the drop; by epoch 5 the eject.
        // (Events live one epoch each; the final snapshot holds none.)
        assert!(snap
            .session_events
            .iter()
            .all(|e| e.transition != SessionTransition::Dropped || e.object == ObjectId(1)));
        c.check_consistency().unwrap();
    }

    #[test]
    fn overload_degrades_phase_b_and_counts_epochs() {
        let drive = |shards: usize| {
            let mut c = Coordinator::new(cfg().with_shards(shards).with_degrade_threshold(5));
            for obj in 0..10u64 {
                let x = (obj % 5) as f64 * 600.0;
                c.submit(state(obj, (x, 0.0), (x + 50.0, 0.0), 0, 9));
            }
            let over = c.process_epoch(Timestamp(10)).len();
            // A under-threshold epoch runs the full policy again.
            c.submit(state(0, (0.0, 0.0), (50.0, 0.0), 10, 19));
            let _ = c.process_epoch(Timestamp(20));
            c.check_consistency().unwrap();
            (over, c.admission_stats().degraded_epochs, c.top_k_score().to_bits())
        };
        let base = drive(1);
        assert_eq!(base.0, 10, "degraded epochs still answer every state");
        assert_eq!(base.1, 1, "exactly the over-threshold epoch degraded");
        assert_eq!(drive(4), base, "degradation must be shard-invariant");
    }

    #[test]
    fn checkpoint_roundtrip_with_sessions_and_admission() {
        for shards in [1usize, 4] {
            let config = cfg()
                .with_k(5)
                .with_shards(shards)
                .with_lease(30, 10)
                .with_admission_cap(20, AdmissionPolicy::ShedOldest)
                .with_degrade_threshold(18);
            let mut live = Coordinator::new(config);
            let mut s = 99u64;
            let mut rand = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            let mut feed = |c: &mut Coordinator, epoch: u64, spread: u64| {
                let now = epoch * 10;
                for _ in 0..25u64 {
                    let obj = rand() % spread;
                    let x = ((rand() % 8) * 400) as f64;
                    let y = ((rand() % 4) * 300) as f64;
                    c.submit(state(obj, (x, y), (x + 50.0, y), now - 10, now - 1));
                }
                Timestamp(now)
            };
            // Epochs 1-3 hear from 12 clients, 4-6 from only 6, so the
            // silent half drops and ejects before the checkpoint.
            for epoch in 1..=6u64 {
                let spread = if epoch <= 3 { 12 } else { 6 };
                let now = feed(&mut live, epoch, spread);
                let _ = live.process_epoch(now);
            }
            let stats = live.admission_stats();
            assert!(stats.shed > 0, "cap must have fired");
            assert!(stats.degraded_epochs > 0, "overload must have degraded");
            assert!(live.sessions().unwrap().counters().drops > 0, "drops expected");

            let image = live.checkpoint();
            let mut restored =
                Coordinator::from_checkpoint(config, &image).expect("restore failed");
            restored.check_consistency().unwrap();
            assert_eq!(restored.admission_stats(), live.admission_stats());
            assert_eq!(
                restored.sessions().unwrap().counters(),
                live.sessions().unwrap().counters()
            );
            assert_eq!(
                restored.sessions().unwrap().records_vec(),
                live.sessions().unwrap().records_vec()
            );
            assert_eq!(
                restored.checkpoint().as_bytes(),
                image.as_bytes(),
                "checkpoint of restore must be byte-identical"
            );

            // Both must continue in lock-step, session layer included.
            let mut s2 = 4242u64;
            for epoch in 7..=12u64 {
                let mut batch = Vec::new();
                for _ in 0..25u64 {
                    s2 = s2.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let r = s2 >> 33;
                    let x = ((r % 8) * 400) as f64;
                    let y = ((r % 4) * 300) as f64;
                    batch.push(state(
                        r % 12,
                        (x, y),
                        (x + 50.0, y),
                        epoch * 10 - 10,
                        epoch * 10 - 1,
                    ));
                }
                let now = Timestamp(epoch * 10);
                live.submit_batch(batch.iter().copied());
                restored.submit_batch(batch.iter().copied());
                let ra: Vec<(u64, u64)> = live
                    .process_epoch(now)
                    .iter()
                    .map(|r| (r.object.0, r.endpoint.p.x.to_bits()))
                    .collect();
                let rb: Vec<(u64, u64)> = restored
                    .process_epoch(now)
                    .iter()
                    .map(|r| (r.object.0, r.endpoint.p.x.to_bits()))
                    .collect();
                assert_eq!(ra, rb, "responses diverged at {shards} shards, epoch {epoch}");
                assert_eq!(
                    live.snapshot().session_events,
                    restored.snapshot().session_events,
                    "session events diverged at {shards} shards, epoch {epoch}"
                );
                assert_eq!(live.admission_stats(), restored.admission_stats());
            }
            live.check_consistency().unwrap();
            restored.check_consistency().unwrap();
        }
    }

    #[test]
    fn sharded_state_is_consistent_and_aggregates_add_up() {
        let mut c = Coordinator::new(cfg().with_shards(4));
        for obj in 0..20u64 {
            let x = (obj % 5) as f64 * 600.0;
            c.submit(state(obj, (x, 0.0), (x + 50.0, 0.0), 0, 9));
        }
        let _ = c.process_epoch(Timestamp(10));
        assert_eq!(c.num_shards(), 4);
        c.check_consistency().unwrap();
        assert_eq!(c.index_size(), 5);
        assert_eq!(c.hot_count(), 5);
        assert!(c.pending_expiry_events() >= c.hot_count());
        // Every hot path is reachable through the aggregate lookup.
        for hp in c.hot_paths().iter() {
            assert!(c.path(hp.path.id).is_some());
            assert_eq!(c.hotness_of(hp.path.id), hp.hotness);
        }
    }
}
