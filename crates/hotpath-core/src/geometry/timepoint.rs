//! Timepoints and trajectories.
//!
//! A *timepoint* `<p, t>` is a point with a timestamp; a *trajectory* is
//! a timestamp-ordered set of timepoints with linear interpolation
//! between consecutive samples (constant-velocity assumption of
//! Section 3.1).

use super::point::Point;
use crate::time::{TimeInterval, Timestamp};

/// A point observation `<p, t>` in `xyt` space.
///
/// `repr(C)`: a [`Point`] then a [`Timestamp`], 24 bytes, no padding.
#[derive(Clone, Copy, PartialEq, Debug)]
#[repr(C)]
pub struct TimePoint {
    /// Observed position.
    pub p: Point,
    /// Observation timestamp.
    pub t: Timestamp,
}

impl TimePoint {
    /// Creates a timepoint.
    #[inline]
    pub fn new(p: Point, t: Timestamp) -> Self {
        TimePoint { p, t }
    }
}

/// A trajectory `T = {<p_i, t_i>}` with strictly increasing timestamps.
///
/// Supports `T(t)` lookups by linear interpolation, which is how the
/// paper defines an object's position between samples.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    points: Vec<TimePoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory { points: Vec::new() }
    }

    /// Creates an empty trajectory with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        Trajectory { points: Vec::with_capacity(cap) }
    }

    /// Builds a trajectory from samples, validating timestamp order.
    ///
    /// # Panics
    /// Panics when timestamps are not strictly increasing.
    pub fn from_points(points: Vec<TimePoint>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].t < w[1].t,
                "trajectory timestamps must strictly increase: {:?} then {:?}",
                w[0].t,
                w[1].t
            );
        }
        Trajectory { points }
    }

    /// Appends a sample; its timestamp must exceed the last one.
    pub fn push(&mut self, tp: TimePoint) {
        if let Some(last) = self.points.last() {
            assert!(last.t < tp.t, "out-of-order trajectory sample: {:?} after {:?}", tp.t, last.t);
        }
        self.points.push(tp);
    }

    /// Number of stored samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples, in timestamp order.
    #[inline]
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// The covered time span, or `None` when empty.
    pub fn span(&self) -> Option<TimeInterval> {
        match (self.points.first(), self.points.last()) {
            (Some(f), Some(l)) => Some(TimeInterval::new(f.t, l.t)),
            _ => None,
        }
    }

    /// `T(t)`: the interpolated position at `t`, or `None` outside the
    /// covered span. At a sample timestamp the sample itself is returned;
    /// between samples the position lies on the directed segment between
    /// them (constant velocity).
    pub fn position_at(&self, t: Timestamp) -> Option<Point> {
        if self.points.is_empty() {
            return None;
        }
        // Binary search for the first sample at or after t.
        let idx = self.points.partition_point(|tp| tp.t < t);
        if idx == self.points.len() {
            return None; // t after the last sample
        }
        let hi = &self.points[idx];
        if hi.t == t {
            return Some(hi.p);
        }
        if idx == 0 {
            return None; // t before the first sample
        }
        let lo = &self.points[idx - 1];
        let lambda = t.fraction_of(lo.t, hi.t);
        Some(lo.p.lerp(&hi.p, lambda))
    }

    /// True when the fixed point `pa` is *close* to this trajectory:
    /// there exists a time `tk` in the span with
    /// `dist_linf(T(tk), pa) <= eps` (Section 3.1 definition).
    ///
    /// Checked at every granule of the span; the span is discrete so this
    /// is exact under the paper's discrete-time model.
    pub fn passes_near(&self, pa: &Point, eps: f64) -> bool {
        let Some(span) = self.span() else { return false };
        let mut t = span.start;
        while t <= span.end {
            if let Some(p) = self.position_at(t) {
                if p.dist_linf(pa) <= eps {
                    return true;
                }
            }
            t += 1;
        }
        false
    }
}

impl FromIterator<TimePoint> for Trajectory {
    fn from_iter<I: IntoIterator<Item = TimePoint>>(iter: I) -> Self {
        Trajectory::from_points(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(x: f64, y: f64, t: u64) -> TimePoint {
        TimePoint::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn push_enforces_order() {
        let mut tr = Trajectory::new();
        tr.push(tp(0.0, 0.0, 0));
        tr.push(tp(1.0, 0.0, 2));
        assert_eq!(tr.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn push_rejects_equal_timestamp() {
        let mut tr = Trajectory::new();
        tr.push(tp(0.0, 0.0, 5));
        tr.push(tp(1.0, 0.0, 5));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn from_points_rejects_disorder() {
        let _ = Trajectory::from_points(vec![tp(0.0, 0.0, 3), tp(1.0, 1.0, 1)]);
    }

    #[test]
    fn interpolation_at_and_between_samples() {
        let tr = Trajectory::from_points(vec![tp(0.0, 0.0, 0), tp(10.0, 20.0, 10)]);
        assert_eq!(tr.position_at(Timestamp(0)), Some(Point::new(0.0, 0.0)));
        assert_eq!(tr.position_at(Timestamp(10)), Some(Point::new(10.0, 20.0)));
        assert_eq!(tr.position_at(Timestamp(5)), Some(Point::new(5.0, 10.0)));
        assert_eq!(tr.position_at(Timestamp(3)), Some(Point::new(3.0, 6.0)));
    }

    #[test]
    fn interpolation_outside_span_is_none() {
        let tr = Trajectory::from_points(vec![tp(0.0, 0.0, 5), tp(1.0, 1.0, 8)]);
        assert_eq!(tr.position_at(Timestamp(4)), None);
        assert_eq!(tr.position_at(Timestamp(9)), None);
        assert_eq!(Trajectory::new().position_at(Timestamp(0)), None);
    }

    #[test]
    fn interpolation_multi_segment() {
        let tr =
            Trajectory::from_points(vec![tp(0.0, 0.0, 0), tp(10.0, 0.0, 10), tp(10.0, 10.0, 20)]);
        assert_eq!(tr.position_at(Timestamp(15)), Some(Point::new(10.0, 5.0)));
    }

    #[test]
    fn interpolation_at_exact_span_boundaries() {
        let tr = Trajectory::from_points(vec![tp(1.0, 2.0, 5), tp(9.0, 2.0, 13)]);
        let span = tr.span().unwrap();
        // The closed boundaries themselves resolve to the samples...
        assert_eq!(tr.position_at(span.start), Some(Point::new(1.0, 2.0)));
        assert_eq!(tr.position_at(span.end), Some(Point::new(9.0, 2.0)));
        // ...while one granule outside either boundary is undefined.
        assert_eq!(tr.position_at(Timestamp(4)), None);
        assert_eq!(tr.position_at(Timestamp(14)), None);
    }

    #[test]
    fn single_sample_trajectory_boundaries() {
        let tr = Trajectory::from_points(vec![tp(3.0, 4.0, 7)]);
        let span = tr.span().unwrap();
        assert_eq!(span.start, span.end);
        assert_eq!(tr.position_at(Timestamp(7)), Some(Point::new(3.0, 4.0)));
        assert_eq!(tr.position_at(Timestamp(6)), None);
        assert_eq!(tr.position_at(Timestamp(8)), None);
        // passes_near degenerates to a point-proximity test.
        assert!(tr.passes_near(&Point::new(3.5, 4.0), 0.5));
        assert!(!tr.passes_near(&Point::new(3.6, 4.0), 0.5));
    }

    #[test]
    fn interpolation_at_interior_vertices_is_exact() {
        // At a shared vertex of two segments the sample itself must come
        // back, not an interpolation from either side.
        let tr =
            Trajectory::from_points(vec![tp(0.0, 0.0, 0), tp(10.0, 0.0, 10), tp(10.0, 10.0, 20)]);
        assert_eq!(tr.position_at(Timestamp(10)), Some(Point::new(10.0, 0.0)));
        // One granule on either side of the vertex interpolates within the
        // adjacent segment only.
        assert_eq!(tr.position_at(Timestamp(9)), Some(Point::new(9.0, 0.0)));
        assert_eq!(tr.position_at(Timestamp(11)), Some(Point::new(10.0, 1.0)));
    }

    #[test]
    fn span_and_empty() {
        let tr = Trajectory::from_points(vec![tp(0.0, 0.0, 2), tp(1.0, 1.0, 9)]);
        let span = tr.span().unwrap();
        assert_eq!(span.start, Timestamp(2));
        assert_eq!(span.end, Timestamp(9));
        assert!(Trajectory::new().span().is_none());
        assert!(Trajectory::new().is_empty());
    }

    #[test]
    fn passes_near_positive_and_negative() {
        // Object moves along y=0 from x=0 to x=100 over 100 granules.
        let tr = Trajectory::from_points(vec![tp(0.0, 0.0, 0), tp(100.0, 0.0, 100)]);
        assert!(tr.passes_near(&Point::new(50.0, 2.0), 2.0));
        assert!(!tr.passes_near(&Point::new(50.0, 2.1), 2.0));
        assert!(!tr.passes_near(&Point::new(50.0, 10.0), 2.0));
        // A point beyond the trajectory extent in x but within eps of the
        // endpoint is near.
        assert!(tr.passes_near(&Point::new(101.0, 0.0), 1.0));
    }

    #[test]
    fn collect_from_iterator() {
        let tr: Trajectory = (0..5).map(|i| tp(i as f64, 0.0, i)).collect();
        assert_eq!(tr.len(), 5);
    }
}
