//! Directed line segments.
//!
//! A motion path is a *directed* segment `pa -> pb` (Section 3.1); the
//! DP competitor additionally needs point-to-segment distances under the
//! tolerance metric to validate opening-window simplifications.

use super::point::Point;
use super::rect::Rect;

/// A directed line segment from `a` to `b` (possibly degenerate).
///
/// `repr(C)`: two consecutive [`Point`]s, 32 bytes, no padding.
#[derive(Clone, Copy, PartialEq, Debug)]
#[repr(C)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates the directed segment `a -> b`.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Euclidean length; motion-path *score* is hotness times this length
    /// (Section 3.1).
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist_l2(&self.b)
    }

    /// Point at parameter `lambda` in `[0, 1]`:
    /// `p(lambda) = a + lambda (b - a)`.
    #[inline]
    pub fn point_at(&self, lambda: f64) -> Point {
        self.a.lerp(&self.b, lambda)
    }

    /// The segment with reversed direction.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment { a: self.b, b: self.a }
    }

    /// Minimum bounding box.
    #[inline]
    pub fn mbb(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// True when the segment has zero length.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Minimum Euclidean distance from `p` to the segment.
    pub fn dist_l2_point(&self, p: &Point) -> f64 {
        self.closest_lambda_l2(p)
            .map(|l| self.point_at(l).dist_l2(p))
            .unwrap_or_else(|| self.a.dist_l2(p))
    }

    /// Minimum **max-distance** (L-infinity) from `p` to the segment:
    /// `min over lambda in [0,1] of max(|x(lambda) - px|, |y(lambda) - py|)`.
    ///
    /// Each axis gap is a V-shaped (convex, piecewise-linear) function of
    /// `lambda`; their maximum is convex and piecewise-linear, so the
    /// minimum is attained at `lambda in {0, 1}`, at an axis-gap zero, or
    /// where the two gap lines cross. We evaluate all O(1) candidates.
    pub fn dist_linf_point(&self, p: &Point) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let fx0 = self.a.x - p.x; // x-gap at lambda = 0 (signed)
        let fy0 = self.a.y - p.y; // y-gap at lambda = 0 (signed)

        let mut candidates = [0.0_f64, 1.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN];
        let mut n = 2;
        // Zero of the signed x gap: fx0 + lambda*dx = 0.
        if dx != 0.0 {
            candidates[n] = -fx0 / dx;
            n += 1;
        }
        if dy != 0.0 {
            candidates[n] = -fy0 / dy;
            n += 1;
        }
        // Crossings |fx| = |fy| happen where fx = fy or fx = -fy.
        let d_sum = dx + dy;
        if d_sum != 0.0 {
            candidates[n] = -(fx0 + fy0) / d_sum;
            n += 1;
        }
        let d_diff = dx - dy;
        if d_diff != 0.0 {
            candidates[n] = -(fx0 - fy0) / d_diff;
            n += 1;
        }

        let mut best = f64::INFINITY;
        for &l in &candidates[..n] {
            if !l.is_finite() {
                continue;
            }
            let l = l.clamp(0.0, 1.0);
            let gx = (fx0 + l * dx).abs();
            let gy = (fy0 + l * dy).abs();
            best = best.min(gx.max(gy));
        }
        best
    }

    /// Parameter of the Euclidean-closest point, clamped to `[0, 1]`, or
    /// `None` for degenerate segments.
    #[inline]
    pub fn closest_lambda_l2(&self, p: &Point) -> Option<f64> {
        let d = self.b - self.a;
        let len_sq = d.dot(&d);
        if len_sq == 0.0 {
            return None;
        }
        Some(((*p - self.a).dot(&d) / len_sq).clamp(0.0, 1.0))
    }

    /// True when every point of the segment is within L-infinity distance
    /// `eps` of the corresponding point (same `lambda`) of `other`.
    ///
    /// This is the *synchronized* proximity used by motion paths: an
    /// object moving along `other` stays within tolerance of `self` when
    /// both are traversed over the same interval at constant speed.
    /// Because the gap between the two parameterized lines is an affine
    /// function of `lambda`, it suffices to check the endpoints.
    #[inline]
    pub fn within_sync_linf(&self, other: &Segment, eps: f64) -> bool {
        self.a.dist_linf(&other.a) <= eps && self.b.dist_linf(&other.b) <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_interp() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.point_at(0.0), s.a);
        assert_eq!(s.point_at(1.0), s.b);
        assert_eq!(s.point_at(0.5), Point::new(1.5, 2.0));
    }

    #[test]
    fn mbb_covers_endpoints() {
        let s = seg(4.0, 1.0, 0.0, 3.0);
        let mbb = s.mbb();
        assert!(mbb.contains(&s.a));
        assert!(mbb.contains(&s.b));
        assert_eq!(mbb.lo(), Point::new(0.0, 1.0));
        assert_eq!(mbb.hi(), Point::new(4.0, 3.0));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = seg(1.0, 2.0, 3.0, 4.0);
        let r = s.reversed();
        assert_eq!(r.a, s.b);
        assert_eq!(r.b, s.a);
        assert_eq!(r.length(), s.length());
    }

    #[test]
    fn l2_point_distance_interior_and_endpoint() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Perpendicular drop in the interior.
        assert!((s.dist_l2_point(&Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        // Beyond the end: distance to endpoint.
        assert!((s.dist_l2_point(&Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        let d = seg(1.0, 1.0, 1.0, 1.0);
        assert!((d.dist_l2_point(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linf_point_distance_axis_aligned() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Directly above the interior: only the y gap matters.
        assert!((s.dist_linf_point(&Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        // Past the right end: x gap 2, y gap 3 at the closest endpoint,
        // but moving lambda back trades them; optimum still max(0,3)=3
        // reached at lambda=1 (x gap 2 < 3).
        assert!((s.dist_linf_point(&Point::new(12.0, 3.0)) - 3.0).abs() < 1e-12);
        // Far past the end, x gap dominates.
        assert!((s.dist_linf_point(&Point::new(20.0, 1.0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn linf_point_distance_diagonal() {
        let s = seg(0.0, 0.0, 10.0, 10.0);
        // Point on the segment.
        assert_eq!(s.dist_linf_point(&Point::new(5.0, 5.0)), 0.0);
        // Off-diagonal point (2, 8): gaps |lambda*10-2| and |lambda*10-8|
        // cross at lambda=0.5 with value 3.
        assert!((s.dist_linf_point(&Point::new(2.0, 8.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linf_matches_brute_force_scan() {
        let cases = [
            (seg(0.0, 0.0, 7.0, 3.0), Point::new(2.0, 5.0)),
            (seg(-3.0, 4.0, 6.0, -2.0), Point::new(0.0, 0.0)),
            (seg(1.0, 1.0, 1.0, 9.0), Point::new(4.0, 4.0)), // vertical
            (seg(5.0, 2.0, -5.0, 2.0), Point::new(0.0, -1.0)), // horizontal
            (seg(2.0, 2.0, 2.0, 2.0), Point::new(5.0, 3.0)), // degenerate
        ];
        for (s, p) in cases {
            let analytic = s.dist_linf_point(&p);
            let mut brute = f64::INFINITY;
            for i in 0..=10_000 {
                let l = i as f64 / 10_000.0;
                brute = brute.min(s.point_at(l).dist_linf(&p));
            }
            assert!(
                (analytic - brute).abs() < 1e-3,
                "mismatch for {s:?} {p:?}: analytic={analytic} brute={brute}"
            );
            // The analytic answer must never exceed the sampled one by
            // more than sampling error, and never be larger.
            assert!(analytic <= brute + 1e-9);
        }
    }

    #[test]
    fn zero_length_segment_distances() {
        let d = seg(2.0, 3.0, 2.0, 3.0);
        assert!(d.is_degenerate());
        assert_eq!(d.length(), 0.0);
        // Both metrics collapse to point distance.
        assert_eq!(d.dist_l2_point(&Point::new(2.0, 3.0)), 0.0);
        assert_eq!(d.dist_linf_point(&Point::new(2.0, 3.0)), 0.0);
        assert!((d.dist_l2_point(&Point::new(5.0, 7.0)) - 5.0).abs() < 1e-12);
        assert_eq!(d.dist_linf_point(&Point::new(5.0, 7.0)), 4.0);
        // No closest parameter exists on a degenerate segment, and every
        // interpolation parameter yields the single point.
        assert_eq!(d.closest_lambda_l2(&Point::new(0.0, 0.0)), None);
        assert_eq!(d.point_at(0.0), d.a);
        assert_eq!(d.point_at(0.7), d.a);
        assert_eq!(d.point_at(1.0), d.a);
        // MBB of a degenerate segment is the point rect.
        assert!(d.mbb().is_degenerate());
    }

    #[test]
    fn degenerate_axis_segments() {
        // Zero extent along x only (vertical segment).
        let v = seg(1.0, 0.0, 1.0, 10.0);
        assert_eq!(v.dist_linf_point(&Point::new(4.0, 5.0)), 3.0);
        // Beyond the top end both gaps matter: x gap 3, y gap 2 -> 3.
        assert_eq!(v.dist_linf_point(&Point::new(4.0, 12.0)), 3.0);
        // Zero extent along y only (horizontal segment).
        let h = seg(0.0, 2.0, 10.0, 2.0);
        assert_eq!(h.dist_linf_point(&Point::new(5.0, 6.0)), 4.0);
        assert_eq!(h.dist_linf_point(&Point::new(-3.0, 2.0)), 3.0);
    }

    #[test]
    fn sync_proximity_with_degenerate_segments() {
        let stay = seg(1.0, 1.0, 1.0, 1.0);
        let drift = seg(1.0, 1.0, 1.5, 1.0);
        assert!(stay.within_sync_linf(&drift, 0.5));
        assert!(!stay.within_sync_linf(&drift, 0.4));
        assert!(stay.within_sync_linf(&stay, 0.0));
    }

    #[test]
    fn synchronized_proximity_checks_endpoints_only() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.5, 0.5, 10.5, 0.5);
        assert!(a.within_sync_linf(&b, 0.5));
        assert!(!a.within_sync_linf(&b, 0.4));
        // Shifted end pushes the affine gap beyond eps at lambda=1 even
        // though the start is identical.
        let c = seg(0.0, 0.0, 10.0, 2.0);
        assert!(!a.within_sync_linf(&c, 1.0));
        assert!(a.within_sync_linf(&c, 2.0));
    }
}
