//! Points in the `xy` plane and the distance metrics of the paper.
//!
//! The paper (Section 3.1) works on the plane with a user-specified
//! tolerance `eps` under the **max-distance** (L-infinity) metric:
//! `d(p, q) = max(|px - qx|, |py - qy|)`. The framework applies to any
//! `Lp` metric, so the Euclidean distance is provided as well (it is used
//! for path *lengths* when computing the score metric of Section 3.1).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point `p = (x, y)` in the plane. Coordinates are in meters.
///
/// `repr(C)` pins the layout to two consecutive `f64`s (16 bytes, no
/// padding) so checkpoint sections holding points are plain memcpys.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    /// Easting coordinate, meters.
    pub x: f64,
    /// Northing coordinate, meters.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    ///
    /// Debug builds assert that both coordinates are finite; the index and
    /// filter structures rely on total ordering of coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        debug_assert!(x.is_finite() && y.is_finite(), "non-finite point ({x}, {y})");
        Point { x, y }
    }

    /// Max-distance (L-infinity) between two points: the metric used for
    /// the tolerance test throughout the paper.
    #[inline]
    pub fn dist_linf(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Euclidean (L2) distance; used for motion-path lengths in the score.
    #[inline]
    pub fn dist_l2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// General `Lp` distance for `p >= 1`. `p = 1` is Manhattan, `p = 2`
    /// Euclidean; `f64::INFINITY` yields the max-distance.
    pub fn dist_lp(&self, other: &Point, p: f64) -> f64 {
        assert!(p >= 1.0, "Lp distance requires p >= 1, got {p}");
        if p.is_infinite() {
            return self.dist_linf(other);
        }
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        (dx.powf(p) + dy.powf(p)).powf(1.0 / p)
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    #[inline]
    pub fn dist_l2_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point { x: self.x.min(other.x), y: self.y.min(other.y) }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point { x: self.x.max(other.x), y: self.y.max(other.y) }
    }

    /// Linear interpolation `self + lambda * (other - self)`.
    ///
    /// For `lambda` in `[0, 1]` this walks the directed segment
    /// `self -> other`, matching the paper's
    /// `p(lambda) = pa + lambda (pb - pa)` parameterization.
    #[inline]
    pub fn lerp(&self, other: &Point, lambda: f64) -> Point {
        Point { x: self.x + lambda * (other.x - self.x), y: self.y + lambda * (other.y - self.y) }
    }

    /// Dot product when viewing the points as vectors.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm when viewing the point as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Quantizes the point onto a `grain`-sized lattice. Used to derive
    /// exact-match keys for coordinator-created vertices so that hash
    /// lookups are immune to floating-point noise introduced by
    /// serialization round-trips.
    #[inline]
    pub fn quantize(&self, grain: f64) -> (i64, i64) {
        debug_assert!(grain > 0.0);
        ((self.x / grain).round() as i64, (self.y / grain).round() as i64)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point { x: self.x + rhs.x, y: self.y + rhs.y }
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point { x: self.x - rhs.x, y: self.y - rhs.y }
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point { x: self.x * rhs, y: self.y * rhs }
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point { x: self.x / rhs, y: self.y / rhs }
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point { x: -self.x, y: -self.y }
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_distance_is_max_of_axis_gaps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a.dist_linf(&b), 4.0);
        assert_eq!(b.dist_linf(&a), 4.0);
    }

    #[test]
    fn l2_distance_matches_pythagoras() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.dist_l2(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_l2_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn lp_distance_limits() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist_lp(&b, 1.0) - 7.0).abs() < 1e-12);
        assert!((a.dist_lp(&b, 2.0) - 5.0).abs() < 1e-12);
        assert_eq!(a.dist_lp(&b, f64::INFINITY), 4.0);
        // Large p approaches the max-distance from above.
        assert!((a.dist_lp(&b, 64.0) - 4.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_distance_rejects_p_below_one() {
        let _ = Point::ORIGIN.dist_lp(&Point::new(1.0, 1.0), 0.5);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(-2.5, 7.1);
        let b = Point::new(9.0, -0.5);
        assert_eq!(a.dist_linf(&b), b.dist_linf(&a));
        assert_eq!(a.dist_linf(&a), 0.0);
        assert_eq!(a.dist_l2(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -3.0));
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(5.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(5.0, 9.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(4.0, 1.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_and_norm() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(&Point::new(2.0, 0.5)), 8.0);
    }

    #[test]
    fn quantize_snaps_to_lattice() {
        let a = Point::new(10.04, -3.51);
        assert_eq!(a.quantize(0.1), (100, -35));
        // Nearby points with sub-grain noise map to the same key.
        let b = Point::new(10.0401, -3.5099);
        assert_eq!(a.quantize(0.1), b.quantize(0.1));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
